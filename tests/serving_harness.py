"""In-process harness driving a :class:`repro.serving.LayoutServer`.

Shared by the serving test modules: runs the server's asyncio loop on a
daemon thread, exposes a blocking HTTP client, and guarantees the drain
path runs on teardown so no loop thread or worker outlives its test.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any

from repro.serving import LayoutServer, ServeConfig

#: A small diamond DAG with one long edge (produces a dummy vertex).
DIAMOND = {"edges": [[0, 1], [0, 2], [1, 3], [2, 3], [0, 3]]}

#: Fast deterministic Ant Colony parameters for request payloads.
FAST_ACO = {"n_ants": 2, "n_tours": 2, "seed": 0}


def layer_payload(name: str, graph: dict | None = None, **extra: Any) -> dict:
    """A deterministic AntColony layering request named *name*."""
    payload = {
        "graph": graph if graph is not None else DIAMOND,
        "method": "AntColony",
        "aco": dict(FAST_ACO),
        "name": name,
    }
    payload.update(extra)
    return payload


class ServerHarness:
    """Run one server on a background thread; drain it on exit."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        base = config or ServeConfig()
        # Tests always need an ephemeral port and quiet startup; everything
        # else comes from the caller's config.
        self.server = LayoutServer(
            ServeConfig(
                **{
                    **base.__dict__,
                    "port": 0,
                    "announce": False,
                    "exit_on_drain_timeout": False,
                }
            )
        )
        self.exit_code: int | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            task = asyncio.ensure_future(self.server.run())
            while self.server.port is None and not task.done():
                await asyncio.sleep(0.005)
            self._ready.set()
            self.exit_code = await task

        asyncio.run(main())

    # ------------------------------------------------------------------ #

    def start(self, timeout: float = 60.0) -> "ServerHarness":
        self._thread.start()
        if not self._ready.wait(timeout) or self.server.port is None:
            raise RuntimeError("server failed to start")
        return self

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        timeout: float = 60.0,
    ) -> tuple[int, dict, dict[str, str]]:
        """One blocking request; returns (status, decoded body, headers)."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            raw = json.dumps(body).encode() if body is not None else None
            headers = {"content-type": "application/json"} if raw else {}
            conn.request(method, path, raw, headers)
            resp = conn.getresponse()
            data = resp.read().decode()
            decoded = json.loads(data) if data else {}
            return resp.status, decoded, dict(resp.getheaders())
        finally:
            conn.close()

    def layer(self, payload: dict, *, timeout: float = 60.0) -> tuple[int, dict]:
        status, body, _ = self.request("POST", "/layer", payload, timeout=timeout)
        return status, body

    def drain(self, timeout: float = 30.0) -> int | None:
        """Trigger the graceful drain and join the loop thread."""
        if self._thread.is_alive():
            loop = self.server._loop
            if loop is not None:
                try:
                    loop.call_soon_threadsafe(self.server.initiate_drain)
                except RuntimeError:
                    pass
            self._thread.join(timeout)
        return self.exit_code

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.drain()
