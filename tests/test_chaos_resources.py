"""Chaos matrix for the resource governor: oom, enospc, crash storms.

The robustness contract under test: every resource fault is either *priced*
(budgets split packs, oversize requests answer 413), *labelled* (an
over-budget cell dies as ``kind="oom"``, not an opaque crash), or
*degraded around* (full disks fence off the cache/journal disk layers,
crash storms collapse the pool to in-parent serial execution) — and every
rung of the degradation ladder produces bit-identical tables, because the
breakers only ever choose between implementations the equivalence tests
already pin together.
"""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

import pytest

from repro.aco.params import ACOParams
from repro.cli import main
from repro.datasets.corpus import att_like_corpus
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, default_method_specs
from repro.experiments.journal import RunJournal
from repro.experiments.runner import run_comparison
from repro.layering.metrics import LayeringMetrics
from repro.serving import ServeConfig
from repro.utils import chaos, resources
from repro.utils.exceptions import ValidationError

from serving_harness import ServerHarness, layer_payload

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="fault injection is POSIX-only"
)


def _load_resume_smoke():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "resume_smoke.py"
    spec = importlib.util.spec_from_file_location("resume_smoke_for_resources", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


deterministic_tables = _load_resume_smoke().deterministic_tables

FAST_ACO = ["--ants", "2", "--tours", "2", "--seed", "0"]
SMALL_COMPARE = [
    "compare",
    "--graphs-per-group",
    "1",
    "--vertex-counts",
    "10",
    "20",
    *FAST_ACO,
]


@pytest.fixture(autouse=True)
def _chaos_hygiene(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SHM_MANIFEST_DIR", str(tmp_path / "shm-manifests"))
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    monkeypatch.delenv(chaos.FAIL_CELLS_ENV, raising=False)
    chaos.reset_hangs()
    yield
    chaos.release_hangs()


def _tables(capsys, argv, expect: int = 0) -> str:
    assert main(argv) == expect
    return deterministic_tables(capsys.readouterr().out)


def _fast_specs():
    return default_method_specs(aco_params=ACOParams(n_ants=2, n_tours=2, seed=0))


# --------------------------------------------------------------------------- #
# oom: labelled, isolated, never retried in-parent
# --------------------------------------------------------------------------- #


class TestOomLabelling:
    def test_oom_cell_is_labelled_and_never_retried(self, monkeypatch):
        # A small allocation keeps the injection instant; the explicit
        # MemoryError is what the label machinery must catch.
        monkeypatch.setenv(
            chaos.CHAOS_ENV, "oom@8388608@*:AntColony:att-like-n10-*"
        )
        corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20))
        engine = ExperimentEngine(retries=2)
        comparison = run_comparison(corpus, _fast_specs(), engine=engine)
        assert len(comparison.failures) == 1
        failed = comparison.failures[0]
        assert failed.error is not None and failed.error.kind == "oom"
        # In-process oom carries the Python exception type; a worker killed
        # under an armed cap is normalised to "MemoryBudgetExceeded".
        assert failed.error.exc_type in ("MemoryError", "MemoryBudgetExceeded")
        # Retrying an oom in the parent (where no RLIMIT_AS cap is armed)
        # would risk the parent's own address space: attempts stays 1.
        assert failed.attempts == 1
        assert comparison.cells_total == 10

    @pytest.mark.parametrize(
        "executor_args",
        [
            pytest.param([], id="serial"),
            pytest.param(["--executor", "thread", "--jobs", "2"], id="thread"),
            pytest.param(["--executor", "batched", "--jobs", "2"], id="batched"),
        ],
    )
    def test_oom_isolated_across_executors(self, capsys, monkeypatch, executor_args):
        monkeypatch.setenv(
            chaos.CHAOS_ENV, "oom@8388608@*:AntColony:att-like-n10-*"
        )
        assert main([*SMALL_COMPARE, *executor_args]) == 0
        out = capsys.readouterr().out
        assert "1 of 10 cells failed" in out
        assert "1 oom" in out

    @pytest.mark.slow
    def test_worker_oom_under_armed_budget_is_labelled(self, capsys, monkeypatch):
        # 1 GiB of injected allocation against a 64M budget (+ fixed slack):
        # the worker's armed RLIMIT_AS cap fails the allocation itself, and
        # the pool must label the death "oom", not "crash".
        monkeypatch.setenv(
            chaos.CHAOS_ENV, "oom@2147483648@*:AntColony:att-like-n10-*"
        )
        assert (
            main(
                [
                    *SMALL_COMPARE,
                    "--executor",
                    "process",
                    "--jobs",
                    "2",
                    "--memory-budget",
                    "64M",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 of 10 cells failed" in out
        assert "1 oom" in out


# --------------------------------------------------------------------------- #
# enospc: disk layers degrade, runs survive
# --------------------------------------------------------------------------- #


class TestDiskFullDegradation:
    def test_cache_degrades_to_memory_only(self, capsys, monkeypatch, tmp_path):
        reference = _tables(capsys, SMALL_COMPARE)
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(chaos.CHAOS_ENV, "enospc@*:AntColony:*")
        assert main([*SMALL_COMPARE, "--cache-dir", str(cache_dir)]) == 0
        captured = capsys.readouterr()
        assert deterministic_tables(captured.out) == reference
        err = captured.err
        assert "memory-only result cache" in err
        assert err.count("repro: resource governor:") == 1  # logged once
        # The fenced-off disk layer wrote nothing for the failing cells.
        assert ResultCache(cache_dir).stats().entries < 10
        # With the disk healthy again, a fresh run re-populates and matches.
        monkeypatch.delenv(chaos.CHAOS_ENV)
        resources.governor().reset()
        healthy = _tables(capsys, [*SMALL_COMPARE, "--cache-dir", str(cache_dir)])
        assert healthy == reference
        assert ResultCache(cache_dir).stats().entries == 10

    def test_journal_degrades_to_best_effort(self, capsys, monkeypatch, tmp_path):
        reference = _tables(capsys, SMALL_COMPARE)
        run_dir = tmp_path / "run"
        monkeypatch.setenv(chaos.CHAOS_ENV, "enospc@*:AntColony:*")
        assert main([*SMALL_COMPARE, "--run-dir", str(run_dir)]) == 0
        captured = capsys.readouterr()
        assert deterministic_tables(captured.out) == reference
        err = captured.err
        assert "best-effort journal" in err
        assert "journal-disk" in err
        # The degradation caveat: a resume recomputes the unjournaled cells
        # — and still converges on the reference tables.
        monkeypatch.delenv(chaos.CHAOS_ENV)
        resources.governor().reset()
        resumed = _tables(
            capsys, [*SMALL_COMPARE, "--run-dir", str(run_dir), "--resume"]
        )
        assert resumed == reference

    def test_journal_enospc_is_swallowed_at_the_api_level(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.CHAOS_ENV, "enospc@*:AntColony:*")
        journal = RunJournal(tmp_path / "run")
        corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(10,))
        engine = ExperimentEngine(journal=journal)
        comparison = run_comparison(corpus, _fast_specs(), engine=engine)
        assert not comparison.failures  # a full journal never fails a cell
        assert "journal-disk" in resources.governor().degraded()


# --------------------------------------------------------------------------- #
# crash storms: the respawn breaker collapses the pool, the run finishes
# --------------------------------------------------------------------------- #


class TestCrashStorm:
    @pytest.mark.slow
    def test_storm_collapses_to_in_parent_serial_and_finishes(
        self, capsys, monkeypatch
    ):
        # Every AntColony attempt SIGKILLs its worker, forever: without the
        # breaker this is an unbounded respawn loop.  With it, the pool
        # stops replacing corpses after the threshold and runs the rest
        # in-parent (where kill9 degrades to a raise), so the run ends.
        monkeypatch.setenv(chaos.CHAOS_ENV, "kill9@*:*")
        assert (
            main([*SMALL_COMPARE, "--executor", "process", "--jobs", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "cells failed" in out
        governor = resources.governor()
        assert "respawn" in governor.degraded()
        assert any(
            "in-parent serial execution" in event["message"]
            for event in governor.events
        )


# --------------------------------------------------------------------------- #
# every rung of the ladder is bit-identical
# --------------------------------------------------------------------------- #


class TestDegradedRungBitIdentity:
    @pytest.fixture()
    def reference(self, capsys):
        return _tables(capsys, SMALL_COMPARE)

    def test_native_kernel_rung(self, capsys, reference):
        resources.governor().trip("native-kernel", "test")
        capsys.readouterr()
        assert _tables(capsys, SMALL_COMPARE) == reference

    def test_native_threads_rung(self, capsys, reference):
        resources.governor().trip("native-threads", "test")
        capsys.readouterr()
        assert _tables(capsys, SMALL_COMPARE) == reference

    def test_batched_rung_falls_back_to_per_cell_serial(self, capsys, reference):
        resources.governor().trip("batched", "test")
        capsys.readouterr()
        degraded = _tables(
            capsys, [*SMALL_COMPARE, "--executor", "batched", "--jobs", "2"]
        )
        assert degraded == reference

    @pytest.mark.slow
    def test_shm_publish_rung_falls_back_in_process(self, capsys, reference):
        resources.governor().trip("shm-publish", "test")
        capsys.readouterr()
        degraded = _tables(
            capsys,
            [*SMALL_COMPARE, "--executor", "colonies", "--jobs", "2"],
        )
        assert degraded == reference

    def test_cache_disk_rung_serves_memory_only(
        self, capsys, reference, tmp_path
    ):
        resources.governor().trip("cache-disk", "test")
        capsys.readouterr()
        cache_dir = tmp_path / "cache"
        degraded = _tables(capsys, [*SMALL_COMPARE, "--cache-dir", str(cache_dir)])
        assert degraded == reference
        assert ResultCache(cache_dir).stats().entries == 0  # disk fenced off


# --------------------------------------------------------------------------- #
# memory budgets: pack splitting is results-neutral
# --------------------------------------------------------------------------- #


class TestMemoryBudgetSplitting:
    def test_tiny_budget_splits_packs_without_changing_tables(self, capsys):
        argv = [*SMALL_COMPARE, "--executor", "batched", "--jobs", "2"]
        reference = _tables(capsys, argv)
        # 8K sits between one tiny graph's estimate (~2.6K) and the
        # two-graph pack's (~13K), so the planner must split the pack.
        assert main([*argv, "--memory-budget", "8K"]) == 0
        captured = capsys.readouterr()
        assert deterministic_tables(captured.out) == reference
        assert "splits planned packs" in captured.err

    def test_generous_budget_leaves_packs_alone(self, capsys):
        argv = [*SMALL_COMPARE, "--executor", "batched", "--memory-budget", "4G"]
        assert main(argv) == 0
        assert "splits planned packs" not in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# prune: quarantine accounting and the free-space watermark
# --------------------------------------------------------------------------- #


def _fill_cache(cache: ResultCache, n: int = 3) -> None:
    metrics = LayeringMetrics(
        n_vertices=2,
        n_edges=1,
        height=2,
        width_including_dummies=1,
        width_excluding_dummies=1,
        dummy_vertex_count=0,
        edge_density=1.0,
        objective=1.0,
        nd_width=1.0,
    )
    for i in range(n):
        cache.put(f"entry-{i:02d}", metrics, 0.1)


class TestPruneWatermarks:
    def test_quarantine_counts_toward_max_size(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _fill_cache(cache, 2)
        cache.quarantine_dir.mkdir(parents=True, exist_ok=True)
        rotten = cache.quarantine_dir / "rotten.json"
        rotten.write_bytes(b"x" * 4096)
        os.utime(rotten, (0, 0))  # oldest in the merged pool
        result = cache.prune(max_size_bytes=0)
        assert result.quarantine_removed == 1
        assert result.removed == 2 and result.kept == 0
        assert not rotten.exists()

    def test_quarantine_evicted_oldest_first_within_budget(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _fill_cache(cache, 2)
        cache.quarantine_dir.mkdir(parents=True, exist_ok=True)
        rotten = cache.quarantine_dir / "rotten.json"
        rotten.write_bytes(b"x" * 4096)
        os.utime(rotten, (0, 0))
        stats = cache.stats()
        # A budget that only the quarantine file breaks: the (oldest)
        # quarantined bytes go first, the live entries survive.
        result = cache.prune(max_size_bytes=stats.total_bytes)
        assert result.quarantine_removed == 1
        assert result.removed == 0 and result.kept == 2

    def test_free_below_watermark_evicts_when_disk_is_tight(self, tmp_path):
        import shutil

        cache = ResultCache(tmp_path / "cache")
        _fill_cache(cache, 3)
        free_now = shutil.disk_usage(cache.directory).free
        # Demanding more free space than exists forces an eviction plan
        # covering every entry; a watermark already met evicts nothing.
        result = cache.prune(free_below_bytes=free_now + (1 << 40))
        assert result.removed == 3 and result.kept == 0
        _fill_cache(cache, 3)
        untouched = cache.prune(free_below_bytes=1)
        assert untouched.removed == 0 and untouched.kept == 3

    def test_prune_requires_a_criterion(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValidationError, match="--free-below"):
            cache.prune()

    def test_cli_prune_free_below(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        _fill_cache(ResultCache(cache_dir), 2)
        assert main(
            ["cache", "prune", str(cache_dir), "--free-below", "1"]
        ) == 0
        assert "pruned 0 entries" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# serving: oversize admission and governor visibility
# --------------------------------------------------------------------------- #


class TestServingGovernance:
    def test_oversize_request_answers_413_with_the_estimate(self, tmp_path):
        config = ServeConfig(
            batch_window_s=0.01,
            prewarm=False,
            memory_budget=1,  # nothing fits: every estimate exceeds 1 byte
            cache_dir=str(tmp_path / "cache"),
        )
        with ServerHarness(config) as harness:
            status, body = harness.layer(layer_payload("oversize"))
            assert status == 413
            assert body["memory_budget_bytes"] == 1
            assert body["estimate"]["bytes"] > 1
            stats = harness.request("GET", "/stats")[1]
            assert stats["rejected_oversize"] == 1
            assert stats["resources"]["memory_budget_bytes"] == 1

    def test_stats_and_readyz_surface_degraded_rungs(self, tmp_path):
        config = ServeConfig(
            batch_window_s=0.01, prewarm=False, cache_dir=str(tmp_path / "cache")
        )
        with ServerHarness(config) as harness:
            resources.governor().trip("cache-disk", "test")
            stats = harness.request("GET", "/stats")[1]
            assert stats["resources"]["degraded"] == ["cache-disk"]
            assert (
                stats["resources"]["breakers"]["cache-disk"]["state"] == "open"
            )
            status, body, _ = harness.request("GET", "/readyz")
            assert status == 200 and body["degraded"] == ["cache-disk"]

    def test_within_budget_requests_still_serve(self, tmp_path):
        config = ServeConfig(
            batch_window_s=0.01,
            prewarm=False,
            memory_budget=64 * 1024 * 1024,
            cache_dir=str(tmp_path / "cache"),
        )
        with ServerHarness(config) as harness:
            status, body = harness.layer(layer_payload("fits"))
            assert status == 200 and body["name"] == "fits"
