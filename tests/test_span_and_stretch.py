"""Tests for layer spans and for the LPL stretching strategies."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.span import all_layer_spans, layer_span
from repro.layering.stretch import stretch_above_below, stretch_between
from repro.utils.exceptions import LayeringError, ValidationError


class TestLayerSpan:
    def test_source_and_sink_spans(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        # d (a sink) can go anywhere below its predecessors b, c (layer 2).
        assert layer_span(diamond, lay, "d", 5) == (1, 1)
        # a (a source) can go anywhere above b, c up to the layer count.
        assert layer_span(diamond, lay, "a", 5) == (3, 5)
        # b is squeezed between a (3) and d (1).
        assert layer_span(diamond, lay, "b", 5) == (2, 2)

    def test_isolated_vertex_full_span(self):
        g = DiGraph(vertices=["x"])
        assert layer_span(g, Layering({"x": 1}), "x", 7) == (1, 7)

    def test_empty_span_raises(self):
        g = DiGraph(edges=[("u", "v")])
        # Invalid neighbour assignment (u below v) leaves no feasible layer for v.
        with pytest.raises(LayeringError):
            layer_span(g, {"u": 1, "v": 2}, "v", 5)

    def test_all_layer_spans_consistency(self):
        g = att_like_dag(30, seed=2)
        lay = longest_path_layering(g)
        spans = all_layer_spans(g, lay, g.n_vertices)
        for v, (lo, hi) in spans.items():
            assert lo <= lay.layer_of(v) <= hi

    def test_accepts_layering_or_dict(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        assert layer_span(diamond, lay, "a", 5) == layer_span(diamond, lay.to_dict(), "a", 5)


class TestStretchBetween:
    def test_total_layers_and_validity(self):
        g = att_like_dag(30, seed=1)
        lpl = longest_path_layering(g)
        stretched, n_layers = stretch_between(lpl, g.n_vertices)
        assert n_layers == g.n_vertices
        assert stretched.is_valid(g)
        # The stretched layering compacts back to the original LPL layering.
        assert stretched.normalized() == lpl

    def test_no_op_when_target_equals_height(self):
        lay = Layering({"a": 2, "b": 1})
        stretched, n = stretch_between(lay, 2)
        assert stretched == lay
        assert n == 2

    def test_even_distribution(self):
        # Height 3 stretched to 7: 4 new layers over 2 gaps -> 2 each.
        lay = Layering({"a": 3, "b": 2, "c": 1})
        stretched, _ = stretch_between(lay, 7)
        assert stretched["c"] == 1
        assert stretched["b"] == 4
        assert stretched["a"] == 7

    def test_remainder_goes_to_lower_gaps(self):
        # Height 3 stretched to 6: 3 new layers over 2 gaps -> gap1 gets 2, gap2 gets 1.
        lay = Layering({"a": 3, "b": 2, "c": 1})
        stretched, _ = stretch_between(lay, 6)
        assert stretched["c"] == 1
        assert stretched["b"] == 4
        assert stretched["a"] == 6

    def test_single_layer_input(self):
        lay = Layering({"a": 1, "b": 1})
        stretched, n = stretch_between(lay, 4)
        assert n == 4
        assert stretched == lay

    def test_target_below_height_rejected(self):
        lay = Layering({"a": 3, "b": 2, "c": 1})
        with pytest.raises(ValidationError):
            stretch_between(lay, 2)


class TestStretchAboveBelow:
    def test_above_keeps_positions(self):
        lay = Layering({"a": 2, "b": 1})
        stretched, n = stretch_above_below(lay, 6, mode="above")
        assert n == 6
        assert stretched == lay

    def test_below_shifts_everything_up(self):
        lay = Layering({"a": 2, "b": 1})
        stretched, _ = stretch_above_below(lay, 6, mode="below")
        assert stretched["b"] == 5
        assert stretched["a"] == 6

    def test_split_shifts_by_half(self):
        lay = Layering({"a": 2, "b": 1})
        stretched, _ = stretch_above_below(lay, 6, mode="split")
        assert stretched["b"] == 3
        assert stretched["a"] == 4

    def test_invalid_mode(self):
        with pytest.raises(ValidationError):
            stretch_above_below(Layering({"a": 1}), 3, mode="diagonal")

    def test_preserves_validity(self):
        g = att_like_dag(25, seed=4)
        lpl = longest_path_layering(g)
        for mode in ("above", "below", "split"):
            stretched, _ = stretch_above_below(lpl, g.n_vertices, mode=mode)
            assert stretched.is_valid(g)
