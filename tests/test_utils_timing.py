"""Tests for repro.utils.timing."""

from __future__ import annotations

import time

from repro.utils.timing import Stopwatch, TimingRecord, time_call


class TestStopwatch:
    def test_records_positive_time(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.001)
        assert sw.total > 0
        assert len(sw.laps) == 1

    def test_accumulates_laps(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                pass
        assert len(sw.laps) == 3
        assert sw.total == sum(sw.laps)

    def test_mean(self):
        sw = Stopwatch()
        assert sw.mean == 0.0
        with sw:
            pass
        assert sw.mean == sw.total

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.total == 0.0
        assert sw.laps == []


class TestTimeCall:
    def test_returns_value_and_time(self):
        record = time_call(sum, range(100))
        assert isinstance(record, TimingRecord)
        assert record.value == sum(range(100))
        assert record.seconds >= 0

    def test_kwargs_passed_through(self):
        record = time_call(sorted, [3, 1, 2], reverse=True)
        assert record.value == [3, 2, 1]
