"""Tests for the engine's full-corpus-scale run lifecycle.

Covers the three pillars added for full-corpus runs: fault isolation (a
raising cell is captured per-executor instead of aborting the run, strict
mode restores fail-fast, aggregators skip-and-count), streaming
(``run_iter`` yields in deterministic submission order as cells complete,
with live progress snapshots), and resume (the run journal replays
completed cells after an interruption).
"""

from __future__ import annotations

import pytest

from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus
from repro.experiments.cache import ResultCache
from repro.experiments.engine import (
    FAIL_CELLS_ENV,
    MAX_CELLS_ENV,
    CellFailure,
    CellResult,
    ExperimentEngine,
    MethodSpec,
    RunInterrupted,
    RunProgress,
    WorkUnit,
    default_method_specs,
)
from repro.experiments.journal import RunJournal
from repro.experiments.reporting import format_comparison, format_sweep
from repro.experiments.runner import run_comparison
from repro.experiments.tuning import nd_width_sweep
from repro.layering.longest_path import longest_path_layering
from repro.utils.exceptions import ValidationError

CORPUS = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20))
FAST_ACO = ACOParams(n_ants=2, n_tours=2, seed=0)

#: The injected failure used throughout: the AntColony cell on the first graph.
FAIL_PATTERN = "AntColony:att-like-n10-*"


def _units(specs=None):
    specs = specs if specs is not None else default_method_specs(aco_params=FAST_ACO)
    return [
        WorkUnit(
            graph=entry.graph,
            method=spec,
            graph_name=entry.name,
            vertex_count=entry.vertex_count,
            label=name,
        )
        for entry in CORPUS
        for name, spec in specs.items()
    ]


def _deterministic_view(cells):
    return [(c.algorithm, c.graph_name, c.vertex_count, c.metrics, c.ok) for c in cells]


class TestFaultIsolation:
    @pytest.mark.parametrize(
        "executor",
        ["serial", "thread", pytest.param("process", marks=pytest.mark.slow)],
    )
    def test_failing_cell_is_recorded_and_run_continues(self, executor, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, FAIL_PATTERN)
        cells = ExperimentEngine(executor=executor, jobs=2).run(_units())
        assert len(cells) == len(_units())  # nothing dropped
        failed = [c for c in cells if not c.ok]
        assert len(failed) == 1
        (cell,) = failed
        assert cell.algorithm == "AntColony"
        assert cell.graph_name == "att-like-n10-000"
        assert cell.metrics is None
        assert cell.error is not None
        assert cell.error.exc_type == "RuntimeError"
        assert "injected failure" in cell.error.message
        assert "RuntimeError" in cell.error.traceback
        assert cell.error.running_time >= 0
        # Every other cell is unaffected.
        assert all(c.metrics is not None for c in cells if c.ok)

    @pytest.mark.slow
    def test_failing_cell_on_colonies_executor(self, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, FAIL_PATTERN)
        specs = default_method_specs(aco_params=FAST_ACO, n_colonies=2)
        cells = ExperimentEngine(executor="colonies", jobs=2).run(_units(specs))
        assert sum(not c.ok for c in cells) == 1
        assert sum(c.ok for c in cells) == len(cells) - 1

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_strict_mode_fails_fast(self, executor, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, FAIL_PATTERN)
        engine = ExperimentEngine(executor=executor, jobs=2, strict=True)
        with pytest.raises(CellFailure) as excinfo:
            engine.run(_units())
        assert excinfo.value.error.exc_type == "RuntimeError"
        assert excinfo.value.cell.algorithm == "AntColony"

    def test_failure_in_callable_method_is_isolated(self):
        def broken(graph):
            raise ValueError("callable blew up")

        algorithms = {"Broken": broken, "LPL": longest_path_layering}
        comparison = run_comparison(CORPUS, algorithms)
        assert comparison.cells_failed == len(CORPUS)
        assert comparison.cells_ok == len(CORPUS)
        assert [f.error.exc_type for f in comparison.failures] == ["ValueError"] * 2
        assert comparison.algorithms == ["LPL"]  # failed cells leave no series

    def test_comparison_skips_and_counts_failures(self, monkeypatch):
        clean = run_comparison(CORPUS, default_method_specs(aco_params=FAST_ACO))
        monkeypatch.setenv(FAIL_CELLS_ENV, FAIL_PATTERN)
        faulty = run_comparison(CORPUS, default_method_specs(aco_params=FAST_ACO))
        assert faulty.cells_failed == 1
        assert faulty.cells_total == clean.cells_total
        # The failed AntColony cell was in group 10 only: group 20 unchanged.
        assert faulty.group_mean("AntColony", 20, "height") == clean.group_mean(
            "AntColony", 20, "height"
        )
        with pytest.raises(ValidationError):
            faulty.group_mean("AntColony", 10, "height")  # nothing survived there
        footer = format_comparison(faulty, "height").splitlines()[-1]
        assert footer.startswith("!") and "1 of 10 cells failed" in footer

    def test_figure_reports_failures_in_footer(self, monkeypatch):
        from repro.experiments.figures import figure4
        from repro.experiments.reporting import format_figure

        monkeypatch.setenv(FAIL_CELLS_ENV, "LPL:*")
        fig = figure4(corpus=CORPUS, aco_params=FAST_ACO)
        assert len(fig.failures) == len(CORPUS)  # every LPL cell
        assert fig.cells_total == len(CORPUS) * 3
        text = format_figure(fig)
        assert "LPL+PL" in text  # the healthy series are still there
        assert f"! {len(CORPUS)} of {len(CORPUS) * 3} cells failed" in text

    def test_sweep_skips_and_counts_failures(self, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, "AntColony:*")  # kill one full setting?
        # Patterns match every AntColony cell, i.e. the whole sweep fails.
        with pytest.raises(ValidationError):
            nd_width_sweep(CORPUS, nd_widths=(0.5,), base_params=FAST_ACO)
        monkeypatch.setenv(FAIL_CELLS_ENV, "AntColony:att-like-n10-*")
        sweep = nd_width_sweep(CORPUS, nd_widths=(0.5, 1.0), base_params=FAST_ACO)
        assert len(sweep.failures) == 2  # one graph in each of the two settings
        assert [p.setting for p in sweep.points] == [(0.5,), (1.0,)]
        assert format_sweep(sweep).splitlines()[-1].startswith("!")

    def test_failed_cells_never_enter_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, FAIL_PATTERN)
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        cells = engine.run(_units())
        assert len(cache) == sum(c.ok for c in cells)
        # Second run with the fault cleared: the cell is computed, not served.
        monkeypatch.delenv(FAIL_CELLS_ENV)
        again = ExperimentEngine(cache=cache).run(_units())
        retried = [c for c in again if c.algorithm == "AntColony" and c.graph_name == "att-like-n10-000"]
        assert retried[0].ok and not retried[0].cached


class TestStreaming:
    def test_run_iter_yields_submission_order_per_executor(self):
        units = _units()
        expected = [(u.graph_name, u.algorithm) for u in units]
        for executor in ("serial", "thread"):
            engine = ExperimentEngine(executor=executor, jobs=3)
            seen = [(c.graph_name, c.algorithm) for c in engine.run_iter(units)]
            assert seen == expected

    @pytest.mark.slow
    def test_run_iter_process_matches_serial(self):
        units = _units()
        serial = _deterministic_view(ExperimentEngine().run_iter(units))
        procs = _deterministic_view(
            ExperimentEngine(executor="process", jobs=2).run_iter(units)
        )
        assert serial == procs

    def test_run_is_a_list_of_run_iter(self):
        units = _units()
        assert _deterministic_view(ExperimentEngine().run(units)) == _deterministic_view(
            ExperimentEngine().run_iter(units)
        )

    def test_serial_iteration_is_lazy(self):
        executed = []

        def tracking(graph):
            executed.append(graph)
            return longest_path_layering(graph)

        units = [
            WorkUnit(graph=entry.graph, method=MethodSpec.from_callable("T", tracking))
            for entry in CORPUS
        ]
        stream = ExperimentEngine().run_iter(units)
        first = next(stream)
        assert first.ok
        assert len(executed) == 1  # later cells not executed yet
        list(stream)
        assert len(executed) == len(units)

    def test_progress_callback_sees_every_cell(self, tmp_path):
        snapshots: list[RunProgress] = []
        units = _units()
        cache = ResultCache(tmp_path)
        ExperimentEngine(cache=cache).run(units)
        engine = ExperimentEngine(cache=cache, progress=snapshots.append)
        engine.run(units)
        assert [p.done for p in snapshots] == list(range(1, len(units) + 1))
        assert snapshots[-1].total == len(units)
        assert snapshots[-1].cache_hits == len(units)  # warm second run
        assert snapshots[-1].failures == 0
        assert snapshots[-1].executed == 0
        assert all(p.elapsed_s >= 0 for p in snapshots)

    def test_progress_eta_estimates_remaining_work(self):
        p = RunProgress(
            done=10, total=30, failures=0, cache_hits=0, replayed=0, executed=10,
            elapsed_s=5.0,
        )
        assert p.eta_s == pytest.approx(10.0)
        empty = RunProgress(
            done=0, total=30, failures=0, cache_hits=0, replayed=0, executed=0,
            elapsed_s=0.0,
        )
        assert empty.eta_s is None


class TestJournalResume:
    def test_journal_records_and_loads_completed_cells(self, tmp_path):
        journal = RunJournal(tmp_path)
        engine = ExperimentEngine(journal=journal)
        cells = engine.run(_units())
        journal.close()
        replay = RunJournal(tmp_path).load()
        assert len(replay) == len(cells)
        assert all(c.replayed for c in replay.values())

    def test_resume_replays_instead_of_executing(self, tmp_path, monkeypatch):
        import repro.experiments.engine as engine_module

        ExperimentEngine(journal=RunJournal(tmp_path)).run(_units())
        calls = []
        real = engine_module._execute_unit
        monkeypatch.setattr(
            engine_module, "_execute_unit", lambda u: calls.append(u) or real(u)
        )
        resumed = ExperimentEngine(journal=RunJournal(tmp_path), resume=True).run(_units())
        assert calls == []  # every cell replayed from the journal
        assert all(c.replayed for c in resumed)
        baseline = ExperimentEngine().run(_units())
        assert _deterministic_view(resumed) == _deterministic_view(baseline)

    def test_fresh_run_clears_stale_journal(self, tmp_path):
        ExperimentEngine(journal=RunJournal(tmp_path)).run(_units())
        # A new run over a *smaller* unit set without resume must not inherit
        # the old records.
        engine = ExperimentEngine(journal=RunJournal(tmp_path))
        engine.run(_units()[:3])
        assert len(RunJournal(tmp_path).load()) == 3

    def test_foreign_journal_version_is_ignored_and_rewritten(self, tmp_path):
        import json

        journal = RunJournal(tmp_path)
        ExperimentEngine(journal=journal).run(_units()[:3])
        journal.close()
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["version"] = 999  # a future release with different semantics
        journal.path.write_text(
            "\n".join([json.dumps(header), *lines[1:]]) + "\n", encoding="utf-8"
        )
        assert RunJournal(tmp_path).load() == {}
        # First resume: nothing replayable, everything re-executed — and the
        # stale file is rewritten, so the *next* resume replays normally
        # instead of being permanently defeated by the foreign header.
        first = ExperimentEngine(journal=RunJournal(tmp_path), resume=True).run(
            _units()[:3]
        )
        assert sum(c.replayed for c in first) == 0
        second = ExperimentEngine(journal=RunJournal(tmp_path), resume=True).run(
            _units()[:3]
        )
        assert sum(c.replayed for c in second) == 3

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        journal = RunJournal(tmp_path)
        ExperimentEngine(journal=journal).run(_units()[:4])
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "abc", "metrics": {"trunc')  # killed mid-write
        assert len(RunJournal(tmp_path).load()) == 4

    def test_journaled_failures_are_retried_not_replayed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, FAIL_PATTERN)
        ExperimentEngine(journal=RunJournal(tmp_path)).run(_units())
        monkeypatch.delenv(FAIL_CELLS_ENV)
        resumed = ExperimentEngine(journal=RunJournal(tmp_path), resume=True).run(_units())
        fixed = [c for c in resumed if c.graph_name == "att-like-n10-000" and c.algorithm == "AntColony"]
        assert fixed[0].ok and not fixed[0].replayed  # re-executed, now healthy
        assert sum(c.replayed for c in resumed) == len(resumed) - 1

    def test_interrupted_run_resumes_to_identical_aggregates(self, tmp_path, monkeypatch):
        units = _units()
        monkeypatch.setenv(MAX_CELLS_ENV, "4")
        with pytest.raises(RunInterrupted):
            ExperimentEngine(journal=RunJournal(tmp_path)).run(units)
        monkeypatch.delenv(MAX_CELLS_ENV)
        assert len(RunJournal(tmp_path).load()) == 4
        resumed_engine = ExperimentEngine(journal=RunJournal(tmp_path), resume=True)
        resumed = run_comparison(CORPUS, default_method_specs(aco_params=FAST_ACO), engine=resumed_engine)
        uninterrupted = run_comparison(CORPUS, default_method_specs(aco_params=FAST_ACO))
        for metric in ("height", "width_including_dummies", "dummy_vertex_count"):
            assert format_comparison(resumed, metric) == format_comparison(
                uninterrupted, metric
            )

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentEngine(resume=True)

    def test_callable_cells_are_not_journaled(self, tmp_path):
        units = [
            WorkUnit(
                graph=CORPUS[0].graph,
                method=MethodSpec.from_callable("Custom", longest_path_layering),
            )
        ]
        journal = RunJournal(tmp_path)
        ExperimentEngine(journal=journal).run(units)
        journal.close()
        assert len(RunJournal(tmp_path).load()) == 0

    def test_cache_hits_are_journaled_for_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExperimentEngine(cache=cache).run(_units())  # warm the cache
        journal = RunJournal(tmp_path / "run")
        ExperimentEngine(cache=cache, journal=journal).run(_units())
        journal.close()
        # Even though every cell was a cache hit, the journal can replay all
        # of them (the cache may be pruned between runs).
        assert len(RunJournal(tmp_path / "run").load()) == len(_units())


class TestCellResultShape:
    def test_ok_property(self):
        (cell,) = ExperimentEngine().run(
            [WorkUnit(graph=CORPUS[0].graph, method=MethodSpec.builtin("LPL"))]
        )
        assert isinstance(cell, CellResult)
        assert cell.ok and cell.error is None and not cell.replayed

    def test_max_cells_env_validation(self, monkeypatch):
        monkeypatch.setenv(MAX_CELLS_ENV, "zero")
        with pytest.raises(ValidationError):
            ExperimentEngine().run(_units()[:2])
        monkeypatch.setenv(MAX_CELLS_ENV, "0")
        with pytest.raises(ValidationError):
            ExperimentEngine().run(_units()[:2])
