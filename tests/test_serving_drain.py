"""Graceful drain: SIGTERM mid-megabatch against a real server process.

The contract (README "Serving"): on SIGTERM the server stops accepting,
requests already *in flight* in the batch worker run to completion and get
their real answers, requests still *queued* answer ``503``, this run's
shared-memory manifests are released, and the process exits ``0`` — all
within the drain window.  POSIX-gated alongside ``tests/test_chaos.py``
(signals, ``REPRO_CHAOS``).
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.utils import chaos

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="signal-driven drain is POSIX-only"
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _request(port: int, method: str, path: str, body=None, timeout: float = 60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        raw = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, raw, {"content-type": "application/json"} if raw else {})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read().decode())
    finally:
        conn.close()


def _poll_stats(port: int, predicate, timeout: float = 10.0) -> dict:
    deadline = time.monotonic() + timeout
    last: dict = {}
    while time.monotonic() < deadline:
        try:
            _, last = _request(port, "GET", "/stats", timeout=5.0)
        except OSError:
            last = {}
        if last and predicate(last):
            return last
        time.sleep(0.05)
    raise AssertionError(f"stats never satisfied predicate; last={last}")


class TestSigtermDrain:
    def test_inflight_completes_queued_rejected_shm_reclaimed_exit_zero(
        self, tmp_path, monkeypatch
    ):
        manifest_dir = tmp_path / "shm-manifests"
        env = {
            **os.environ,
            "PYTHONPATH": REPO_SRC,
            "REPRO_SHM_MANIFEST_DIR": str(manifest_dir),
            # The in-flight cell stalls 2 s inside pack setup, holding the
            # batch worker busy long enough to observe the drain ordering.
            chaos.CHAOS_ENV: "slow@2:AntColony:inflight-*",
        }
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--batch-window",
                "0.05",
                "--drain-timeout",
                "30",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            announce = proc.stdout.readline().strip()
            match = re.search(r"http://127\.0\.0\.1:(\d+)$", announce)
            assert match, f"bad announce line: {announce!r}"
            port = int(match.group(1))

            graph = {"edges": [[0, 1], [1, 2], [0, 2]]}
            aco = {"n_ants": 2, "n_tours": 2, "seed": 0}
            results: dict[str, tuple[int, dict]] = {}

            def post(name: str) -> None:
                results[name] = _request(
                    port,
                    "POST",
                    "/layer",
                    {"graph": graph, "method": "AntColony", "aco": aco, "name": name},
                )

            inflight = threading.Thread(target=post, args=("inflight-1",))
            inflight.start()
            # Wait until the slow cell is actually inside the batch worker.
            _poll_stats(port, lambda s: s["inflight"] >= 1)

            queued = threading.Thread(target=post, args=("queued-1",))
            queued.start()
            _poll_stats(port, lambda s: s["queue_depth"] >= 1)

            proc.send_signal(signal.SIGTERM)
            inflight.join(timeout=30)
            queued.join(timeout=30)
            assert not inflight.is_alive() and not queued.is_alive()

            status, body = results["inflight-1"]
            assert status == 200, f"in-flight request must complete: {body}"
            assert body["name"] == "inflight-1" and body["metrics"]["n_vertices"] == 3

            status, body = results["queued-1"]
            assert status == 503, f"queued request must be shed: {body}"
            assert body["error"] == "draining"

            assert proc.wait(timeout=30) == 0
            # Every shm manifest this run registered was released on exit.
            leftovers = (
                [p.name for p in manifest_dir.rglob("*") if p.is_file()]
                if manifest_dir.exists()
                else []
            )
            assert leftovers == []
            # And new connections are refused after drain.
            with pytest.raises(OSError):
                _request(port, "GET", "/healthz", timeout=2.0)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
