"""Fixture-driven tests for ``repro-dag lint`` (the RPL rule set).

Each rule gets at least one seeded true positive and one clean negative,
plus coverage for suppression comments, baseline semantics, the CLI exit
codes, and a meta-test asserting the shipped tree lints clean under the
checked-in baseline.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    Baseline,
    collect_files,
    parse_module,
    run_lint,
    write_baseline,
)
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path: Path, source: str, name: str = "mod.py", paths=None):
    """Write *source* into tmp_path and lint it; returns the report."""
    (tmp_path / name).write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(paths or [name], root=tmp_path)


def codes(report) -> list[str]:
    return [finding.code for finding in report.findings]


# ---------------------------------------------------------------------------
# RPL001 — determinism
# ---------------------------------------------------------------------------


class TestDeterminismRule:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def draw():
                return np.random.default_rng().integers(10)
            """,
        )
        assert codes(report) == ["RPL001"]
        assert "unseeded" in report.findings[0].message

    def test_seeded_default_rng_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).integers(10)
            """,
        )
        assert report.ok

    def test_global_random_calls_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import random

            def jitter(values):
                random.shuffle(values)
                return random.random()
            """,
        )
        assert codes(report) == ["RPL001", "RPL001"]

    def test_instance_random_method_clean(self, tmp_path):
        # rng.random() is a Generator method, not the global-state module.
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def jitter(rng: np.random.Generator):
                return rng.random()
            """,
        )
        assert report.ok

    def test_legacy_numpy_global_rng_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
        )
        assert codes(report) == ["RPL001"]

    def test_set_iteration_flagged_sorted_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def bad(edges):
                return [e for e in set(edges)]

            def good(edges):
                return [e for e in sorted(set(edges))]

            def membership_ok(mode):
                return mode in {"a", "b"}
            """,
        )
        assert codes(report) == ["RPL001"]
        assert report.findings[0].line == 3  # the comprehension in bad()

    def test_clock_in_digest_function_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import hashlib
            import time

            def cache_key(payload):
                stamp = time.time()
                return hashlib.sha256(f"{payload}:{stamp}".encode()).hexdigest()
            """,
        )
        assert codes(report) == ["RPL001"]
        assert "wall-clock" in report.findings[0].message

    def test_clock_outside_digest_function_clean(self, tmp_path):
        # Clocks are fine for display/timestamps; only digest material is off-limits.
        report = lint_source(
            tmp_path,
            """
            import time

            def elapsed(start):
                return time.time() - start
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RPL002 — signal safety
# ---------------------------------------------------------------------------


class TestSignalSafetyRule:
    def test_print_reachable_from_handler_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import signal

            def _report():
                print("deadline hit")

            def _on_alarm(signum, frame):
                _report()
                raise TimeoutError

            signal.signal(signal.SIGALRM, _on_alarm)
            """,
        )
        assert codes(report) == ["RPL002"]
        assert "_report" in report.findings[0].message
        assert "_on_alarm" in report.findings[0].message

    def test_lock_and_logging_in_handler_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import logging
            import signal

            logger = logging.getLogger(__name__)

            def _on_alarm(signum, frame):
                logger.warning("alarm")
                with _state_lock:
                    pass

            signal.signal(signal.SIGALRM, _on_alarm)
            """,
        )
        assert sorted(codes(report)) == ["RPL002", "RPL002"]

    def test_safe_handler_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import signal
            import time

            def _on_alarm(signum, frame):
                now = time.monotonic()
                signal.setitimer(signal.ITIMER_REAL, 0.05)
                raise TimeoutError(now)

            signal.signal(signal.SIGALRM, _on_alarm)
            """,
        )
        assert report.ok

    def test_unreachable_io_clean(self, tmp_path):
        # I/O in functions NOT reachable from the handler is fine.
        report = lint_source(
            tmp_path,
            """
            import signal

            def _on_alarm(signum, frame):
                raise TimeoutError

            def report():
                print("not on the signal path")

            signal.signal(signal.SIGALRM, _on_alarm)
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RPL003 — shm lifecycle
# ---------------------------------------------------------------------------


class TestShmLifecycleRule:
    def test_unpaired_creation_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def leak(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                shm.buf[:4] = b"data"
            """,
        )
        assert codes(report) == ["RPL003"]

    def test_finally_cleanup_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def scoped(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                try:
                    shm.buf[:4] = b"data"
                finally:
                    shm.close()
                    shm.unlink()
            """,
        )
        assert report.ok

    def test_manifest_registration_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from multiprocessing import shared_memory

            from repro.utils import shm_manifest

            def tracked(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                shm_manifest.register(shm.name)
                return shm.name
            """,
        )
        assert report.ok

    def test_returned_handle_clean(self, tmp_path):
        # Returning the handle transfers ownership to the caller.
        report = lint_source(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def make(size):
                shm = shared_memory.SharedMemory(create=True, size=size)
                return shm
            """,
        )
        assert report.ok

    def test_publish_without_cleanup_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def run(problem):
                shared = publish_problem(problem)
                compute(shared.manifest)
            """,
        )
        assert codes(report) == ["RPL003"]

    def test_with_block_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            def run(problem):
                with publish_problem(problem) as shared:
                    return compute(shared.manifest)
            """,
        )
        assert report.ok

    def test_attach_without_create_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def attach(name):
                shm = shared_memory.SharedMemory(name=name)
                try:
                    return bytes(shm.buf[:4])
                finally:
                    shm.close()
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RPL004 — kernel-contract parity
# ---------------------------------------------------------------------------

#: A miniature but structurally faithful _native.py / kernels.py pair.
NATIVE_OK = '''
import ctypes

import numpy as np

_C_SOURCE = r"""
void run_walks(
    int64_t n_ants,
    int64_t n_threads,
    const int64_t *orders,
    const double *uniforms,         /* n_ants, or NULL */
    const int64_t *succ_indptr,
    const int64_t *succ_indices,
    const int64_t *pred_indptr,
    const int64_t *pred_indices,
    const int64_t *walk_steps,      /* per-walk steps, or NULL */
    double *scores)
{
}
"""


def load(lib):
    lib.run_walks.argtypes = [
        ctypes.c_int64,  # n_ants
        ctypes.c_int64,  # n_threads
        _I64,  # orders
        ctypes.c_void_p,  # uniforms (nullable)
        _I64,  # succ_indptr
        _I64,  # succ_indices
        _I64,  # pred_indptr
        _I64,  # pred_indices
        ctypes.c_void_p,  # walk_steps (nullable)
        _F64,  # scores
    ]
    return lib


def run_walks_native(
    lib,
    *,
    n_threads: int,
    orders: np.ndarray,
    uniforms: np.ndarray | None,
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    walk_steps: np.ndarray | None = None,
) -> None:
    pass
'''

KERNELS_OK = """
from repro.aco import _native


def _lockstep_walks(*, succ_indptr, succ_indices, pred_indptr, pred_indices,
                    orders, uniforms, walk_steps=None):
    pass


def run_walks_batch(problem, params, orders, uniforms):
    return _native.run_walks_native(
        lib,
        n_threads=_native.effective_threads(n_tasks=2),
        orders=orders,
        uniforms=uniforms,
        succ_indptr=problem.succ_indptr,
        succ_indices=problem.succ_indices,
        pred_indptr=problem.pred_indptr,
        pred_indices=problem.pred_indices,
    )


def run_walks_packed(packed, params, walk_graph, orders, uniforms):
    return _native.run_walks_native(
        lib,
        n_threads=_native.effective_threads(n_tasks=2),
        orders=orders,
        uniforms=uniforms,
        succ_indptr=packed.succ_indptr,
        succ_indices=packed.succ_indices,
        pred_indptr=packed.pred_indptr,
        pred_indices=packed.pred_indices,
        walk_steps=walk_graph.steps,
    )
"""


def lint_kernel_pair(tmp_path: Path, native_src: str, kernels_src: str):
    aco = tmp_path / "aco"
    aco.mkdir(exist_ok=True)
    (aco / "_native.py").write_text(textwrap.dedent(native_src), encoding="utf-8")
    (aco / "kernels.py").write_text(textwrap.dedent(kernels_src), encoding="utf-8")
    return run_lint(["aco"], root=tmp_path)


class TestKernelContractRule:
    def test_consistent_contract_clean(self, tmp_path):
        report = lint_kernel_pair(tmp_path, NATIVE_OK, KERNELS_OK)
        assert report.ok, [f.render() for f in report.findings]

    def test_argtypes_count_mismatch_flagged(self, tmp_path):
        broken = NATIVE_OK.replace("        _F64,  # scores\n", "")
        report = lint_kernel_pair(tmp_path, broken, KERNELS_OK)
        assert "RPL004" in codes(report)
        assert any("9 entries" in f.message for f in report.findings)

    def test_missing_csr_anchor_flagged(self, tmp_path):
        # Drop one CSR pointer from prototype, argtypes, wrapper, lockstep
        # and both call sites consistently — every parity check stays happy,
        # only the required-anchor check can catch the loss.
        broken_native = (
            NATIVE_OK.replace("    const int64_t *pred_indices,\n", "")
            .replace("        _I64,  # pred_indices\n", "")
            .replace("    pred_indices: np.ndarray,\n", "")
        )
        broken_kernels = KERNELS_OK.replace(
            "        pred_indices=problem.pred_indices,\n", ""
        ).replace("        pred_indices=packed.pred_indices,\n", "")
        broken_kernels = broken_kernels.replace(
            "def _lockstep_walks(*, succ_indptr, succ_indices, pred_indptr, pred_indices,",
            "def _lockstep_walks(*, succ_indptr, succ_indices, pred_indptr,",
        )
        report = lint_kernel_pair(tmp_path, broken_native, broken_kernels)
        assert any(
            f.code == "RPL004" and "'pred_indices'" in f.message and "missing" in f.message
            for f in report.findings
        )

    def test_nullable_anchor_flagged(self, tmp_path):
        # An anchor demoted to nullable (c_void_p + "or NULL") passes the
        # positional argtype parity but must trip the anchor shape check.
        broken = NATIVE_OK.replace(
            "    const int64_t *succ_indptr,",
            "    const int64_t *succ_indptr,  /* or NULL */",
        ).replace("        _I64,  # succ_indptr", "        ctypes.c_void_p,  # succ_indptr")
        broken = broken.replace(
            "    succ_indptr: np.ndarray,", "    succ_indptr: np.ndarray | None,"
        )
        report = lint_kernel_pair(tmp_path, broken, KERNELS_OK)
        assert any(
            f.code == "RPL004" and "'succ_indptr'" in f.message and "never-NULL" in f.message
            for f in report.findings
        )

    def test_missing_thread_count_flagged(self, tmp_path):
        broken = (
            NATIVE_OK.replace("    int64_t n_threads,\n", "")
            .replace("        ctypes.c_int64,  # n_threads\n", "")
            .replace("    n_threads: int,\n", "")
        )
        broken_kernels = KERNELS_OK.replace(
            "        n_threads=_native.effective_threads(n_tasks=2),\n", ""
        )
        report = lint_kernel_pair(tmp_path, broken, broken_kernels)
        assert any(
            f.code == "RPL004" and "'n_threads'" in f.message for f in report.findings
        )

    def test_nullable_position_mismatch_flagged(self, tmp_path):
        # The C prototype says `uniforms` may be NULL; pass it as a strict
        # ndpointer and the contract check must object.
        broken = NATIVE_OK.replace(
            "        ctypes.c_void_p,  # uniforms (nullable)", "        _F64,  # uniforms"
        )
        report = lint_kernel_pair(tmp_path, broken, KERNELS_OK)
        assert any(
            f.code == "RPL004" and "uniforms" in f.message for f in report.findings
        )

    def test_wrapper_nullable_set_drift_flagged(self, tmp_path):
        broken = NATIVE_OK.replace(
            "    walk_steps: np.ndarray | None = None,", "    walk_steps: np.ndarray,"
        )
        report = lint_kernel_pair(tmp_path, broken, KERNELS_OK)
        assert any(
            f.code == "RPL004" and "walk_steps" in f.message for f in report.findings
        )

    def test_unknown_callsite_keyword_flagged(self, tmp_path):
        broken = KERNELS_OK.replace("uniforms=uniforms,", "uniform_draws=uniforms,")
        report = lint_kernel_pair(tmp_path, NATIVE_OK, broken)
        assert any(
            f.code == "RPL004" and "uniform_draws" in f.message for f in report.findings
        )

    def test_entry_signature_drift_flagged(self, tmp_path):
        broken = KERNELS_OK.replace(
            "def run_walks_packed(packed, params, walk_graph, orders, uniforms):",
            "def run_walks_packed(packed, params, walk_graph, uniforms, orders):",
        )
        report = lint_kernel_pair(tmp_path, NATIVE_OK, broken)
        assert any(
            f.code == "RPL004" and "run_walks_packed" in f.message for f in report.findings
        )

    def test_positional_arity_drift_flagged(self, tmp_path):
        runtime = """
        from .kernels import run_walks_batch

        def drive(problem, params, orders, uniforms, extra):
            run_walks_batch(problem, params, orders, uniforms, extra)
        """
        aco = tmp_path / "aco"
        aco.mkdir()
        (aco / "_native.py").write_text(textwrap.dedent(NATIVE_OK), encoding="utf-8")
        (aco / "kernels.py").write_text(textwrap.dedent(KERNELS_OK), encoding="utf-8")
        (aco / "runtime.py").write_text(textwrap.dedent(runtime), encoding="utf-8")
        report = run_lint(["aco"], root=tmp_path)
        assert any(
            f.code == "RPL004" and "5 positional" in f.message for f in report.findings
        )

    def test_real_tree_contract_holds(self):
        # The shipped _native.py/kernels.py/runtime.py must satisfy the rule.
        report = run_lint(
            [
                "src/repro/aco/_native.py",
                "src/repro/aco/kernels.py",
                "src/repro/aco/runtime.py",
            ],
            root=REPO_ROOT,
        )
        rpl004 = [f for f in report.findings if f.code == "RPL004"]
        assert rpl004 == [], [f.render() for f in rpl004]


# ---------------------------------------------------------------------------
# RPL005 — cross-process payloads
# ---------------------------------------------------------------------------


class TestPayloadRule:
    def test_lambda_and_nested_fn_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from repro.utils.pool import map_with_state

            def run(units):
                def task(unit, state):
                    return unit

                return map_with_state(task, units, init_fn=lambda p: p)
            """,
        )
        assert sorted(codes(report)) == ["RPL005", "RPL005"]

    def test_lock_payload_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import threading

            from repro.utils.pool import map_with_state

            def run(task, units):
                lock = threading.Lock()
                return map_with_state(task, units, payload=(lock, "config"))
            """,
        )
        assert codes(report) == ["RPL005"]
        assert "lock" in report.findings[0].message

    def test_shm_view_payload_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from repro.utils.pool import map_with_state

            def run(task, units, shared):
                return map_with_state(task, units, payload=(shared.shm, 1))
            """,
        )
        assert codes(report) == ["RPL005"]
        assert "shared-memory view" in report.findings[0].message

    def test_manifest_payload_clean(self, tmp_path):
        # Passing the picklable manifest of a published block is the blessed
        # pattern (runtime.py does exactly this).
        report = lint_source(
            tmp_path,
            """
            from repro.utils.pool import map_with_state

            def run(task, units, problem, params):
                shared = publish_problem(problem)
                try:
                    return map_with_state(
                        task, units, payload=(shared.manifest, params.as_dict())
                    )
                finally:
                    shared.close()
                    shared.unlink()
            """,
        )
        assert report.ok, [f.render() for f in report.findings]

    def test_module_level_task_fn_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            from repro.utils.pool import map_with_state

            def _task(unit, state):
                return unit

            def run(units, table):
                return map_with_state(_task, units, payload=table)
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# RPL006 — async safety
# ---------------------------------------------------------------------------


class TestAsyncSafetyRule:
    def test_time_sleep_in_async_def_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(1.0)
            """,
        )
        assert codes(report) == ["RPL006"]
        assert "asyncio.sleep" in report.findings[0].message

    def test_sync_open_and_path_io_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            async def handler(path, cfg_path):
                with open(path) as fh:
                    data = fh.read()
                return data + cfg_path.read_text()
            """,
        )
        assert codes(report) == ["RPL006", "RPL006"]

    def test_subprocess_run_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import subprocess

            async def handler():
                subprocess.run(["ls"])
            """,
        )
        assert codes(report) == ["RPL006"]
        assert "create_subprocess_exec" in report.findings[0].message

    def test_unbounded_acquire_flagged_but_awaited_or_bounded_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            async def bad(lock):
                lock.acquire()

            async def fine_bounded(lock):
                lock.acquire(timeout=1.0)

            async def fine_asyncio(lock):
                await lock.acquire()
            """,
        )
        assert codes(report) == ["RPL006"]
        assert report.findings[0].line == 3

    def test_async_primitives_and_sync_functions_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import asyncio
            import time

            async def handler(loop, fn):
                await asyncio.sleep(0.1)
                return await loop.run_in_executor(None, fn)

            def plain_sync():
                time.sleep(1.0)  # fine: not on the event loop
            """,
        )
        assert report.ok

    def test_nested_sync_def_not_flagged(self, tmp_path):
        """Nested defs run off-loop (e.g. handed to run_in_executor)."""
        report = lint_source(
            tmp_path,
            """
            import time

            async def handler(loop):
                def blocking_work():
                    time.sleep(1.0)
                return await loop.run_in_executor(None, blocking_work)
            """,
        )
        assert report.ok


# ---------------------------------------------------------------------------
# Engine semantics: suppressions, baseline, CLI
# ---------------------------------------------------------------------------

BAD_RNG = """
import numpy as np

def draw():
    return np.random.default_rng().integers(10)
"""


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        source = """
        import numpy as np

        def draw():
            return np.random.default_rng().integers(10)  # repro-lint: disable=RPL001
        """
        report = lint_source(tmp_path, source)
        assert report.ok
        assert len(report.suppressed) == 1

    def test_previous_line_comment_suppression(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def draw():
                # repro-lint: disable=RPL001 -- entropy wanted here
                return np.random.default_rng().integers(10)
            """,
        )
        assert report.ok
        assert len(report.suppressed) == 1

    def test_wrong_code_does_not_suppress(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            import numpy as np

            def draw():
                return np.random.default_rng().integers(10)  # repro-lint: disable=RPL003
            """,
        )
        assert codes(report) == ["RPL001"]

    def test_file_level_suppression(self, tmp_path):
        report = lint_source(
            tmp_path,
            """
            # repro-lint: disable-file=RPL001
            import numpy as np

            def draw():
                return np.random.default_rng().integers(10)

            def draw2():
                return np.random.default_rng().integers(10)
            """,
        )
        assert report.ok
        assert len(report.suppressed) == 2


class TestBaseline:
    def _write_bad(self, tmp_path: Path) -> Path:
        target = tmp_path / "mod.py"
        target.write_text(textwrap.dedent(BAD_RNG), encoding="utf-8")
        return target

    def test_baselined_finding_passes_and_new_one_fails(self, tmp_path):
        self._write_bad(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(["mod.py"], root=tmp_path)
        modules = {
            rel: parse_module(path, rel)
            for path, rel in collect_files(["mod.py"], root=tmp_path)
        }
        write_baseline(baseline_path, report.findings, modules)

        baseline = Baseline.load(baseline_path)
        report = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert report.ok
        assert len(report.baselined) == 1

        # A new, different violation is NOT absorbed.
        (tmp_path / "mod.py").write_text(
            textwrap.dedent(BAD_RNG)
            + "\ndef more():\n    return np.random.rand(3)\n",
            encoding="utf-8",
        )
        baseline = Baseline.load(baseline_path)
        report = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert [f.code for f in report.findings] == ["RPL001"]
        assert "np.random.rand" in report.findings[0].message

    def test_baseline_survives_line_moves(self, tmp_path):
        self._write_bad(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(["mod.py"], root=tmp_path)
        modules = {
            rel: parse_module(path, rel)
            for path, rel in collect_files(["mod.py"], root=tmp_path)
        }
        write_baseline(baseline_path, report.findings, modules)

        # Prepend code so every line number shifts; the fingerprint holds.
        (tmp_path / "mod.py").write_text(
            "X = 1\nY = 2\n" + textwrap.dedent(BAD_RNG), encoding="utf-8"
        )
        baseline = Baseline.load(baseline_path)
        report = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert report.ok
        assert len(report.baselined) == 1

    def test_duplicate_findings_need_matching_count(self, tmp_path):
        source = textwrap.dedent(BAD_RNG)
        (tmp_path / "mod.py").write_text(source, encoding="utf-8")
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(["mod.py"], root=tmp_path)
        modules = {
            rel: parse_module(path, rel)
            for path, rel in collect_files(["mod.py"], root=tmp_path)
        }
        write_baseline(baseline_path, report.findings, modules)

        # Duplicate the offending line: one occurrence is baselined, the
        # second must still fail.
        (tmp_path / "mod.py").write_text(
            source + "\ndef draw_again():\n    return np.random.default_rng().integers(10)\n",
            encoding="utf-8",
        )
        baseline = Baseline.load(baseline_path)
        report = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert len(report.baselined) == 1
        assert codes(report) == ["RPL001"]

    def test_stale_entries_reported(self, tmp_path):
        self._write_bad(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(["mod.py"], root=tmp_path)
        modules = {
            rel: parse_module(path, rel)
            for path, rel in collect_files(["mod.py"], root=tmp_path)
        }
        write_baseline(baseline_path, report.findings, modules)

        (tmp_path / "mod.py").write_text(
            "import numpy as np\n\ndef draw(seed):\n"
            "    return np.random.default_rng(seed).integers(10)\n",
            encoding="utf-8",
        )
        baseline = Baseline.load(baseline_path)
        report = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert report.ok
        assert report.stale_baseline == 1


class TestCli:
    def test_exit_codes_and_update_baseline(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text(textwrap.dedent(BAD_RNG), encoding="utf-8")
        monkeypatch.chdir(tmp_path)

        assert lint_main(["mod.py"]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out

        assert lint_main(["--update-baseline", "mod.py"]) == 0
        assert (tmp_path / ".repro-lint-baseline.json").exists()

        # Default baseline is picked up automatically; the run is now clean.
        assert lint_main(["mod.py"]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

        # --no-baseline surfaces the grandfathered finding again.
        assert lint_main(["--no-baseline", "mod.py"]) == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_syntax_error_reported(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--no-baseline", "broken.py"]) == 1
        assert "RPL000" in capsys.readouterr().out

    def test_repro_dag_lint_subcommand(self, tmp_path):
        (tmp_path / "mod.py").write_text(textwrap.dedent(BAD_RNG), encoding="utf-8")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--no-baseline", "mod.py"],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 1, proc.stderr
        assert "RPL001" in proc.stdout


# ---------------------------------------------------------------------------
# Meta: the shipped tree lints clean
# ---------------------------------------------------------------------------


class TestShippedTree:
    PATHS = ["src", "tests", "benchmarks", "examples"]

    def test_repo_lints_clean_under_shipped_baseline(self):
        baseline_path = REPO_ROOT / ".repro-lint-baseline.json"
        baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
        report = run_lint(self.PATHS, root=REPO_ROOT, baseline=baseline)
        assert report.ok, "\n".join(f.render() for f in report.findings)

    def test_src_has_no_baselined_determinism_or_shm_findings(self):
        # Acceptance: even with the baseline removed, src/ carries zero
        # unsuppressed RPL001/RPL003 findings — those must be fixed, never
        # grandfathered.
        report = run_lint(["src"], root=REPO_ROOT, baseline=None)
        offenders = [
            f for f in report.findings if f.code in ("RPL001", "RPL003")
        ]
        assert offenders == [], "\n".join(f.render() for f in offenders)

    def test_shipped_baseline_has_no_stale_entries(self):
        baseline_path = REPO_ROOT / ".repro-lint-baseline.json"
        if not baseline_path.exists():
            pytest.skip("no baseline shipped")
        baseline = Baseline.load(baseline_path)
        run_lint(self.PATHS, root=REPO_ROOT, baseline=baseline)
        assert baseline.unconsumed() == 0
