"""Tests for the vectorized ACO kernels and python/vectorized engine equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco import _native
from repro.aco.colony import AntColony
from repro.aco.heuristic import evaluate_assignment
from repro.aco.kernels import (
    batched_layer_spans,
    draw_walk_randomness,
    evaluate_assignment_vectorized,
    fused_pow,
    select_from_scores,
)
from repro.aco.params import ACOParams, SELECTION_RULES, VERTEX_ORDERS
from repro.aco.problem import LayeringProblem
from repro.graph.generators import att_like_dag, gnp_dag
from repro.utils.rng import as_generator


def run_engine(graph, params, engine):
    problem = LayeringProblem.from_graph(graph, nd_width=params.nd_width)
    return AntColony(problem, params.replace(engine=engine)).run()


def assert_bit_identical(result_a, result_b):
    """The two colony results must agree exactly, down to the last float bit."""
    assert np.array_equal(result_a.best.assignment, result_b.best.assignment)
    assert result_a.best.objective == result_b.best.objective
    assert result_a.best.score == result_b.best.score
    assert result_a.best.ant_id == result_b.best.ant_id
    assert len(result_a.history) == len(result_b.history)
    for rec_a, rec_b in zip(result_a.history, result_b.history):
        assert rec_a == rec_b  # frozen dataclass: exact field-wise equality


class TestEngineEquivalence:
    """The acceptance matrix: both engines, every order and selection rule."""

    @pytest.mark.parametrize("vertex_order", VERTEX_ORDERS)
    @pytest.mark.parametrize("selection", SELECTION_RULES)
    def test_order_selection_matrix(self, vertex_order, selection):
        graph = att_like_dag(35, seed=3)
        params = ACOParams(
            n_ants=4,
            n_tours=4,
            seed=17,
            vertex_order=vertex_order,
            selection=selection,
        )
        assert_bit_identical(
            run_engine(graph, params, "python"),
            run_engine(graph, params, "vectorized"),
        )

    @pytest.mark.parametrize("q0", [0.0, 0.3, 0.7, 1.0])
    def test_mixed_exploitation(self, q0):
        graph = att_like_dag(30, seed=4)
        params = ACOParams(n_ants=3, n_tours=3, seed=5, q0=q0)
        assert_bit_identical(
            run_engine(graph, params, "python"),
            run_engine(graph, params, "vectorized"),
        )

    @pytest.mark.parametrize(
        "alpha,beta",
        [(1.0, 3.0), (3.0, 5.0), (0.0, 0.0), (2.0, 4.0), (2.5, 1.7)],
    )
    def test_exponent_grid(self, alpha, beta):
        # 2.5/1.7 exercises the generic np.power path (and the NumPy
        # fallback of the vectorized engine, which cannot use the native
        # kernel for non-integer beta).
        graph = att_like_dag(30, seed=6)
        params = ACOParams(n_ants=3, n_tours=3, seed=11, alpha=alpha, beta=beta)
        assert_bit_identical(
            run_engine(graph, params, "python"),
            run_engine(graph, params, "vectorized"),
        )

    def test_nd_width_variants(self):
        graph = att_like_dag(25, seed=7)
        for nd_width in (0.0, 0.5, 1.1):
            params = ACOParams(n_ants=3, n_tours=3, seed=2, nd_width=nd_width)
            assert_bit_identical(
                run_engine(graph, params, "python"),
                run_engine(graph, params, "vectorized"),
            )

    def test_numpy_fallback_equivalent(self, monkeypatch):
        # Force the vectorized engine onto its pure-NumPy lockstep path.
        monkeypatch.setenv("REPRO_ACO_NATIVE", "0")
        graph = att_like_dag(30, seed=8)
        for selection in SELECTION_RULES:
            params = ACOParams(n_ants=3, n_tours=3, seed=23, selection=selection)
            assert_bit_identical(
                run_engine(graph, params, "python"),
                run_engine(graph, params, "vectorized"),
            )

    def test_edgeless_graph(self):
        graph = gnp_dag(12, 0.0, seed=0)
        params = ACOParams(n_ants=2, n_tours=2, seed=1)
        assert_bit_identical(
            run_engine(graph, params, "python"),
            run_engine(graph, params, "vectorized"),
        )

    def test_incremental_widths_stay_consistent(self, monkeypatch):
        # The colony reuses the tour-best ant's LayerWidths between tours;
        # the debug flag cross-checks them against a fresh recomputation.
        monkeypatch.setenv("REPRO_ACO_DEBUG_WIDTHS", "1")
        graph = att_like_dag(30, seed=9)
        for engine in ("python", "vectorized"):
            run_engine(graph, ACOParams(n_ants=3, n_tours=4, seed=3), engine)


class TestFusedPow:
    def test_small_integer_exponents_match_reference_semantics(self):
        x = np.abs(np.random.default_rng(0).normal(size=100)) + 0.1
        assert np.array_equal(fused_pow(x, 0.0), np.ones_like(x))
        assert fused_pow(x, 1.0) is x
        assert np.array_equal(fused_pow(x, 2.0), x * x)
        assert np.array_equal(fused_pow(x, 3.0), x * x * x)
        assert np.array_equal(fused_pow(x, 4.0), (x * x) * (x * x))
        assert np.array_equal(fused_pow(x, 5.0), (x * x) * (x * x) * x)

    def test_generic_exponent_uses_power(self):
        x = np.linspace(0.1, 2.0, 50)
        assert np.array_equal(fused_pow(x, 2.5), np.power(x, 2.5))

    def test_close_to_np_power(self):
        x = np.linspace(0.1, 3.0, 100)
        for e in (2.0, 3.0, 4.0, 5.0):
            np.testing.assert_allclose(fused_pow(x, e), np.power(x, e), rtol=1e-14)


class TestSelectFromScores:
    def test_argmax_mode_picks_best(self):
        scores = np.array([0.1, 0.9, 0.4])
        assert select_from_scores(scores, 3, 1.0, None) == 1

    def test_degenerate_scores_fall_back(self):
        zeros = np.zeros(4)
        assert select_from_scores(zeros, 4, 1.0, None) == 0
        assert select_from_scores(zeros, 4, 0.0, 0.99) == 3
        assert select_from_scores(zeros, 4, 0.0, 0.0) == 0

    def test_roulette_respects_distribution_bounds(self):
        scores = np.array([1.0, 2.0, 1.0])
        for u in (0.0, 0.2, 0.5, 0.9, 0.999999):
            idx = select_from_scores(scores, 3, 0.0, u)
            assert 0 <= idx <= 2

    def test_roulette_boundaries(self):
        scores = np.array([1.0, 0.0, 3.0])
        # cumulative = [1, 1, 4]; target = u * 4
        assert select_from_scores(scores, 3, 0.0, 0.0) == 0
        assert select_from_scores(scores, 3, 0.0, 0.5) == 2

    def test_exploit_probability_blend(self):
        scores = np.array([1.0, 5.0, 1.0])
        # u below q0 -> exploit (argmax); u above -> roulette on rescaled u.
        assert select_from_scores(scores, 3, 0.5, 0.4) == 1
        idx = select_from_scores(scores, 3, 0.5, 0.95)
        assert 0 <= idx <= 2


class TestCsrArrays:
    @pytest.fixture(scope="class")
    def problem(self):
        return LayeringProblem.from_graph(att_like_dag(40, seed=5))

    def test_csr_matches_adjacency_lists(self, problem):
        for v in range(problem.n_vertices):
            succ = problem.succ_indices[
                problem.succ_indptr[v] : problem.succ_indptr[v + 1]
            ]
            pred = problem.pred_indices[
                problem.pred_indptr[v] : problem.pred_indptr[v + 1]
            ]
            assert succ.tolist() == problem.succ[v]
            assert pred.tolist() == problem.pred[v]

    def test_flat_edges_cover_graph(self, problem):
        edges = set(zip(problem.edge_src.tolist(), problem.edge_dst.tolist()))
        expected = {
            (v, w) for v in range(problem.n_vertices) for w in problem.succ[v]
        }
        assert edges == expected
        assert len(problem.edge_src) == problem.graph.n_edges

    def test_padded_matrices_use_sentinels(self, problem):
        n = problem.n_vertices
        for v in range(n):
            row = problem.succ_pad[v].tolist()
            deg = len(problem.succ[v])
            assert row[:deg] == problem.succ[v]
            assert all(x == n for x in row[deg:])
            prow = problem.pred_pad[v].tolist()
            pdeg = len(problem.pred[v])
            assert prow[:pdeg] == problem.pred[v]
            assert all(x == n + 1 for x in prow[pdeg:])

    def test_batched_spans_match_scalar(self, problem):
        rng = as_generator(0)
        assignment = problem.initial_assignment
        n_ants = 3
        ext = np.empty((n_ants, problem.n_vertices + 2), dtype=np.int64)
        ext[:, : problem.n_vertices] = assignment
        ext[:, problem.n_vertices] = 0
        ext[:, problem.n_vertices + 1] = problem.n_layers + 1
        v = rng.integers(0, problem.n_vertices, size=n_ants)
        lo, hi = batched_layer_spans(problem, ext, v)
        for a in range(n_ants):
            slo, shi = problem.layer_span(assignment, int(v[a]))
            assert (int(lo[a]), int(hi[a])) == (slo, shi)


class TestDrawWalkRandomness:
    def test_argmax_mode_draws_no_uniforms(self):
        problem = LayeringProblem.from_graph(att_like_dag(20, seed=1))
        params = ACOParams()  # argmax => q0 == 1
        rng_a, rng_b = as_generator(3), as_generator(3)
        order, u = draw_walk_randomness(problem, params, rng_a)
        assert u is None
        # The stream advanced exactly as much as one permutation draw.
        assert np.array_equal(order, rng_b.permutation(problem.n_vertices))
        assert rng_a.random() == rng_b.random()

    def test_roulette_mode_draws_one_uniform_per_vertex(self):
        problem = LayeringProblem.from_graph(att_like_dag(20, seed=1))
        params = ACOParams(selection="roulette")
        order, u = draw_walk_randomness(problem, params, as_generator(3))
        assert u is not None and u.shape == (problem.n_vertices,)
        assert np.all((0.0 <= u) & (u < 1.0))


class TestEvaluateAssignmentVectorized:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference(self, seed):
        graph = att_like_dag(30, seed=seed)
        problem = LayeringProblem.from_graph(graph)
        rng = as_generator(seed + 50)
        assignment = problem.initial_assignment.copy()
        # Scramble with random feasible moves.
        for _ in range(100):
            v = int(rng.integers(0, problem.n_vertices))
            lo, hi = problem.layer_span(assignment, v)
            assignment[v] = int(rng.integers(lo, hi + 1))
        fast = evaluate_assignment_vectorized(problem, assignment)
        slow = evaluate_assignment(problem, assignment)
        assert fast.height == slow.height
        assert fast.dummy_vertex_count == slow.dummy_vertex_count
        assert fast.width_including_dummies == pytest.approx(slow.width_including_dummies)
        assert fast.objective == pytest.approx(slow.objective)

    def test_nd_width_zero(self):
        graph = att_like_dag(20, seed=2)
        problem = LayeringProblem.from_graph(graph, nd_width=0.0)
        fast = evaluate_assignment_vectorized(problem, problem.initial_assignment)
        slow = evaluate_assignment(problem, problem.initial_assignment)
        assert fast.width_including_dummies == pytest.approx(slow.width_including_dummies)
        assert fast.dummy_vertex_count == slow.dummy_vertex_count


class TestThreadedBitIdentity:
    """Thread counts {1, 2, 4} × native on/off × batched/packed.

    The walk axis is embarrassingly parallel — every walk owns its output
    rows and consumes pre-drawn randomness — so any thread count must be
    *byte-identical* to the single-threaded serial reference.
    """

    PARAMS = ACOParams(n_ants=6, n_tours=3, seed=13, q0=0.5)

    @staticmethod
    def _require_thread_support(native: bool, threads: int):
        if (
            native
            and threads > 1
            and _native.thread_support() not in ("openmp", "pthreads")
        ):
            pytest.skip("native kernel compiled without thread support")

    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("native", [True, False], ids=["native", "numpy"])
    def test_batched_walks_match_python_reference(self, monkeypatch, threads, native):
        self._require_thread_support(native, threads)
        if not native:
            monkeypatch.setenv("REPRO_ACO_NATIVE", "0")
        monkeypatch.setenv("REPRO_ACO_THREADS", str(threads))
        graph = att_like_dag(40, seed=21)
        assert_bit_identical(
            run_engine(graph, self.PARAMS, "python"),
            run_engine(graph, self.PARAMS, "vectorized"),
        )

    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("native", [True, False], ids=["native", "numpy"])
    def test_packed_walks_match_serial_reference(self, monkeypatch, threads, native):
        self._require_thread_support(native, threads)
        from repro.aco.problem import PackedProblems
        from repro.aco.runtime import run_packed_colonies

        problems = [
            LayeringProblem.from_graph(att_like_dag(n, seed=s))
            for n, s in ((14, 31), (26, 32), (9, 33))
        ]
        seeds = [[5], [7, 8], [9]]
        monkeypatch.setenv("REPRO_ACO_THREADS", "1")
        reference = run_packed_colonies(
            PackedProblems.pack(problems), self.PARAMS, seeds
        )
        if not native:
            monkeypatch.setenv("REPRO_ACO_NATIVE", "0")
        monkeypatch.setenv("REPRO_ACO_THREADS", str(threads))
        outcomes = run_packed_colonies(
            PackedProblems.pack(problems), self.PARAMS, seeds
        )
        for ref, got in zip(reference, outcomes):
            assert [o.score for o in got] == [o.score for o in ref]
            for mine, theirs in zip(got, ref):
                assert np.array_equal(mine.assignment, theirs.assignment)

    def test_invalid_thread_env_raises_canonical_error(self, monkeypatch):
        from repro.utils.exceptions import ValidationError

        monkeypatch.setenv("REPRO_ACO_THREADS", "lots")
        with pytest.raises(ValidationError, match="REPRO_ACO_THREADS must be an integer"):
            _native.effective_threads()
        monkeypatch.setenv("REPRO_ACO_THREADS", "0")
        with pytest.raises(ValidationError, match="REPRO_ACO_THREADS must be >= 1"):
            _native.effective_threads()

    def test_explicit_request_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACO_THREADS", "2")
        assert _native.effective_threads(3) == 3
        assert _native.effective_threads(None) == 2
        # Clamped to the task count, like effective_workers.
        assert _native.effective_threads(None, n_tasks=1) == 1


class TestLazyPaddedStacks:
    """The quadratic padded stacks must stay lazy: CSR-only runs never build them."""

    @pytest.mark.parametrize("native", [True, False], ids=["native", "numpy"])
    def test_colony_run_never_materialises_pads(self, monkeypatch, native):
        if not native:
            monkeypatch.setenv("REPRO_ACO_NATIVE", "0")
        problem = LayeringProblem.from_graph(att_like_dag(30, seed=11))
        AntColony(
            problem, ACOParams(n_ants=3, n_tours=2, seed=7, engine="vectorized")
        ).run()
        assert problem._succ_pad_cache is None
        assert problem._pred_pad_cache is None

    @pytest.mark.parametrize("native", [True, False], ids=["native", "numpy"])
    def test_packed_run_never_materialises_pads(self, monkeypatch, native):
        from repro.aco.problem import PackedProblems
        from repro.aco.runtime import run_packed_colonies

        if not native:
            monkeypatch.setenv("REPRO_ACO_NATIVE", "0")
        problems = [
            LayeringProblem.from_graph(att_like_dag(n, seed=s))
            for n, s in ((12, 41), (20, 42))
        ]
        packed = PackedProblems.pack(problems)
        run_packed_colonies(packed, ACOParams(n_ants=2, n_tours=2, seed=3), [[1], [2]])
        assert packed._succ_pad_cache is None
        assert packed._pred_pad_cache is None
        assert all(p._succ_pad_cache is None for p in packed.problems)
        assert all(p._pred_pad_cache is None for p in packed.problems)

    def test_pad_properties_build_once_and_cache(self):
        problem = LayeringProblem.from_graph(att_like_dag(25, seed=12))
        pad = problem.succ_pad
        assert problem.succ_pad is pad  # cached, not rebuilt
        assert problem._succ_pad_cache is pad


class TestNativeBackend:
    def test_status_is_reported(self):
        _native.load_native()
        assert isinstance(_native.native_status(), str)

    def test_thread_support_is_reported(self):
        assert _native.thread_support() in ("openmp", "pthreads", "none", "unavailable")

    def test_supports_small_integer_exponents_only(self):
        for beta in (0.0, 1.0, 2.0, 3.0, 4.0, 5.0):
            assert _native.native_supports(beta)
        assert not _native.native_supports(2.5)
        assert not _native.native_supports(6.0)

    def test_engine_param_validated(self):
        from repro.utils.exceptions import ValidationError

        with pytest.raises(ValidationError):
            ACOParams(engine="gpu")
