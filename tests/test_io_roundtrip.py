"""Round-trip property coverage for every serialisation path.

The edge-list, JSON and networkx paths must preserve awkward vertex ids and
labels — whitespace (ASCII and Unicode), quotes, backslashes, newlines,
unicode text, tuple ids — and the DOT writer must emit well-formed output for
all of them (quoted strings properly escaped and terminated).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.io import (
    from_json_dict,
    from_networkx,
    read_edgelist,
    read_json,
    to_json_dict,
    to_networkx,
    write_dot,
    write_edgelist,
    write_json,
)
from repro.utils.exceptions import GraphError

#: A gallery of deliberately awkward identifiers and labels.
AWKWARD_TEXTS = (
    "plain",
    "two words",
    "double  space",
    " leading and trailing ",
    "tab\there",
    "line1\nline2",
    "carriage\rreturn",
    'quo"ted',
    "back\\slash",
    "trailing backslash\\",
    "-",
    "",
    "ünïcode-émoji-✓",
    "nb sp",
    "line sep",
)


def _awkward_graph() -> DiGraph:
    g = DiGraph()
    previous = None
    for i, text in enumerate(AWKWARD_TEXTS):
        vid = f"v{i}:{text}"
        g.add_vertex(vid, width=1.0 + i * 0.25, label=text)
        if previous is not None:
            g.add_edge(previous, vid)
        previous = vid
    g.add_vertex(("tuple", 1), label="tuple id")
    g.add_edge(previous, ("tuple", 1))
    return g


class TestEdgelistRoundTrip:
    def test_awkward_labels_and_ids_survive(self, tmp_path):
        g = _awkward_graph()
        path = tmp_path / "g.edgelist"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert set(back.vertices()) == {str(v) for v in g.vertices()}
        for v in g.vertices():
            assert back.vertex_label(str(v)) == g.vertex_label(v)
            assert back.vertex_width(str(v)) == g.vertex_width(v)
        assert back.n_edges == g.n_edges
        for u, v in g.edges():
            assert back.has_edge(str(u), str(v))

    def test_whitespace_label_preserved(self, tmp_path):
        # The regression of the issue: a label containing a space used to be
        # truncated to its first word on read-back.
        g = DiGraph()
        g.add_vertex("a", label="hello world")
        path = tmp_path / "ws.edgelist"
        write_edgelist(g, path)
        assert read_edgelist(path).vertex_label("a") == "hello world"

    def test_newline_label_round_trips_instead_of_corrupting(self, tmp_path):
        g = DiGraph()
        g.add_vertex("a", label="two\nlines")
        path = tmp_path / "nl.edgelist"
        write_edgelist(g, path)
        assert read_edgelist(path).vertex_label("a") == "two\nlines"

    def test_dash_label_distinct_from_no_label(self, tmp_path):
        g = DiGraph()
        g.add_vertex("dash", label="-")
        g.add_vertex("none")
        g.add_vertex("empty", label="")
        path = tmp_path / "dash.edgelist"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert back.vertex_label("dash") == "-"
        assert back.vertex_label("none") is None
        assert back.vertex_label("empty") == ""

    def test_legacy_unescaped_files_still_read(self, tmp_path):
        path = tmp_path / "legacy.edgelist"
        path.write_text(
            "# repro edgelist v1\nV a 1.0 alpha\nV b 2.0 -\nE a b\n", encoding="utf-8"
        )
        g = read_edgelist(path)
        assert g.vertex_label("a") == "alpha"
        assert g.vertex_label("b") is None
        assert g.has_edge("a", "b")

    def test_legacy_corrupt_multiword_label_raises(self, tmp_path):
        # A file produced by the old writer from a spacey label cannot be
        # decoded unambiguously: reject it instead of silently truncating.
        path = tmp_path / "corrupt.edgelist"
        path.write_text("V a 1.0 hello world\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edgelist(path)

    def test_invalid_escape_raises(self, tmp_path):
        path = tmp_path / "bad.edgelist"
        path.write_text("V a\\q 1.0 -\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edgelist(path)

    @given(
        labels=st.lists(
            st.one_of(st.none(), st.text(max_size=12)), min_size=1, max_size=6
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_labels_round_trip(self, labels, tmp_path_factory):
        g = DiGraph()
        for i, label in enumerate(labels):
            g.add_vertex(f"v{i}", label=label)
        path = tmp_path_factory.mktemp("rt") / "g.edgelist"
        write_edgelist(g, path)
        back = read_edgelist(path)
        for i, label in enumerate(labels):
            assert back.vertex_label(f"v{i}") == label

    @given(ids=st.lists(st.text(min_size=0, max_size=10), min_size=1, max_size=6, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_string_ids_round_trip(self, ids, tmp_path_factory):
        g = DiGraph()
        for vid in ids:
            g.add_vertex(vid)
        for u, v in zip(ids, ids[1:]):
            g.add_edge(u, v)
        path = tmp_path_factory.mktemp("rt") / "g.edgelist"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert set(back.vertices()) == set(ids)
        assert back.n_edges == g.n_edges


class TestJsonRoundTrip:
    def test_awkward_graph_round_trips_exactly(self, tmp_path):
        g = _awkward_graph()
        path = tmp_path / "g.json"
        write_json(g, path)
        back = read_json(path)
        assert set(back.vertices()) == set(g.vertices())
        for v in g.vertices():
            assert back.vertex_label(v) == g.vertex_label(v)
            assert back.vertex_width(v) == g.vertex_width(v)
        assert set(back.edges()) == set(g.edges())

    @given(labels=st.lists(st.one_of(st.none(), st.text(max_size=12)), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_labels_round_trip(self, labels):
        g = DiGraph()
        for i, label in enumerate(labels):
            g.add_vertex(f"v{i}", label=label)
        back = from_json_dict(to_json_dict(g))
        for i, label in enumerate(labels):
            assert back.vertex_label(f"v{i}") == label


class TestNetworkxRoundTrip:
    def test_awkward_graph_round_trips(self):
        g = _awkward_graph()
        back = from_networkx(to_networkx(g))
        assert set(back.vertices()) == set(g.vertices())
        for v in g.vertices():
            assert back.vertex_label(v) == g.vertex_label(v)
        assert set(back.edges()) == set(g.edges())


def _scan_dot_quoted_strings(text: str) -> list[str]:
    """Extract every double-quoted DOT string, raising on malformed quoting.

    This is the grammar-level check: every ``"`` must open a string that is
    terminated, with ``\\"`` and ``\\\\`` handled as escapes, and the
    unescaped content is returned for comparison against the source values.
    """
    strings: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        assert ch != "}" or text.count("{") >= 1
        if ch != '"':
            i += 1
            continue
        i += 1
        out: list[str] = []
        terminated = False
        while i < len(text):
            ch = text[i]
            if ch == "\\":
                assert i + 1 < len(text), "dangling backslash in DOT string"
                nxt = text[i + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt))
                i += 2
            elif ch == '"':
                terminated = True
                i += 1
                break
            else:
                assert ch != "\n", "raw newline inside DOT quoted string"
                out.append(ch)
                i += 1
        assert terminated, "unterminated DOT quoted string"
        strings.append("".join(out))
    return strings


class TestDotWellFormedness:
    def test_awkward_graph_emits_parseable_dot(self, tmp_path):
        g = _awkward_graph()
        path = tmp_path / "g.dot"
        write_dot(g, path, name='weird "name"\\')
        text = path.read_text(encoding="utf-8")
        strings = _scan_dot_quoted_strings(text)
        # Every vertex id must appear, correctly unescaped, as a quoted string
        # (newlines are rendered as the \n escape, which Graphviz shows as a
        # line break).
        expected = {str(v).replace("\r\n", "\n").replace("\r", "\n") for v in g.vertices()}
        assert expected <= set(strings)
        assert text.startswith("digraph ")
        assert text.rstrip().endswith("}")

    def test_quote_and_backslash_in_label(self, tmp_path):
        g = DiGraph()
        g.add_vertex("v", label='say "hi" \\ bye')
        path = tmp_path / "q.dot"
        write_dot(g, path)
        strings = _scan_dot_quoted_strings(path.read_text(encoding="utf-8"))
        assert 'say "hi" \\ bye' in strings

    def test_simple_names_stay_bare(self, tmp_path):
        g = DiGraph(edges=[("a", "b")])
        path = tmp_path / "s.dot"
        write_dot(g, path, name="Simple")
        text = path.read_text(encoding="utf-8")
        assert text.startswith("digraph Simple {")

    def test_reserved_keyword_names_are_quoted(self, tmp_path):
        # "digraph node {" is a DOT syntax error: keywords are reserved
        # case-insensitively and must be quoted.
        g = DiGraph(edges=[("a", "b")])
        for name in ("node", "Graph", "EDGE", "digraph", "subgraph", "strict"):
            path = tmp_path / f"{name}.dot"
            write_dot(g, path, name=name)
            assert path.read_text(encoding="utf-8").startswith(f'digraph "{name}" {{')

    @given(label=st.text(max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_labels_emit_wellformed_strings(self, label, tmp_path_factory):
        g = DiGraph()
        g.add_vertex("v", label=label)
        path = tmp_path_factory.mktemp("dot") / "g.dot"
        write_dot(g, path)
        _scan_dot_quoted_strings(path.read_text(encoding="utf-8"))


#: Labels that break naive XML interpolation: markup metacharacters, CDATA
#: terminators, entity-looking text, quotes in every flavour.
HOSTILE_SVG_LABELS = (
    'a<b&"c>',
    "</text></svg>",
    "]]>",
    "&amp; already & escaped",
    "<script>alert(1)</script>",
    "quote ' and \" mix",
    "ünïcode ✓ <&>",
)


def _hostile_drawing(labels=HOSTILE_SVG_LABELS):
    """A small layered drawing whose vertex labels are all hostile to XML."""
    from repro.sugiyama.pipeline import sugiyama_layout

    g = DiGraph()
    previous = None
    for i, label in enumerate(labels):
        g.add_vertex(f"v{i}", label=label)
        if previous is not None:
            g.add_edge(previous, f"v{i}")
        previous = f"v{i}"
    return sugiyama_layout(g, layering_method="lpl")


class TestSvgWellFormedness:
    """The SVG twin of the DOT scanner: every emitted file must parse as XML.

    The regression: ``render_svg`` used to interpolate raw vertex labels
    into ``<text>`` content, so a label like ``a<b&"c>`` produced a file
    every XML parser rejects.
    """

    def test_hostile_labels_emit_parseable_xml(self, tmp_path):
        import xml.etree.ElementTree as ET

        from repro.sugiyama.render import render_svg

        path = tmp_path / "hostile.svg"
        svg = render_svg(_hostile_drawing(), path)
        root = ET.fromstring(svg)  # raises ParseError on malformed output
        assert ET.fromstring(path.read_text(encoding="utf-8")) is not None
        ns = "{http://www.w3.org/2000/svg}"
        texts = [el.text for el in root.iter(f"{ns}text")]
        assert sorted(texts) == sorted(HOSTILE_SVG_LABELS)  # unescaped round trip
        titles = [el.text for el in root.iter(f"{ns}title")]
        assert sorted(titles) == sorted(HOSTILE_SVG_LABELS)

    def test_unlabelled_vertices_fall_back_to_escaped_ids(self):
        import xml.etree.ElementTree as ET

        from repro.sugiyama.pipeline import sugiyama_layout
        from repro.sugiyama.render import render_svg

        g = DiGraph(edges=[("a<b", "c&d")])
        svg = render_svg(sugiyama_layout(g, layering_method="lpl"))
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert sorted(el.text for el in root.iter(f"{ns}text")) == ["a<b", "c&d"]

    def test_xml_invalid_control_chars_are_replaced_not_emitted(self):
        # XML 1.0 cannot represent most C0 controls at all (escaped or not);
        # they must be replaced, or the emitted file is unparseable.
        import xml.etree.ElementTree as ET

        from repro.sugiyama.render import render_svg

        root = ET.fromstring(render_svg(_hostile_drawing(("a\x0bb\x00c", "\x1f"))))
        ns = "{http://www.w3.org/2000/svg}"
        assert sorted(el.text for el in root.iter(f"{ns}text")) == ["a�b�c", "�"]

    @given(
        labels=st.lists(st.text(max_size=12), min_size=1, max_size=4)
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_labels_emit_parseable_xml(self, labels):
        # Unrestricted text, control characters included: the renderer must
        # always emit well-formed XML.
        import xml.etree.ElementTree as ET

        from repro.sugiyama.render import render_svg

        ET.fromstring(render_svg(_hostile_drawing(labels)))
