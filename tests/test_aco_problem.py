"""Tests for the index-based LayeringProblem representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.problem import LayeringProblem
from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.utils.exceptions import CycleError, ValidationError


class TestFromGraph:
    def test_dimensions(self):
        g = att_like_dag(30, seed=1)
        problem = LayeringProblem.from_graph(g)
        assert problem.n_vertices == 30
        assert problem.n_layers == 30  # stretched to |V| by default
        assert len(problem.succ) == 30
        assert len(problem.pred) == 30
        assert problem.widths.shape == (30,)

    def test_initial_assignment_is_stretched_lpl(self):
        g = att_like_dag(25, seed=2)
        problem = LayeringProblem.from_graph(g)
        lpl = longest_path_layering(g)
        assert problem.lpl_height == lpl.height
        initial = problem.assignment_to_layering(problem.initial_assignment, normalize=True)
        assert initial == lpl

    def test_degrees_match_graph(self, diamond):
        problem = LayeringProblem.from_graph(diamond)
        idx = {v: i for i, v in enumerate(problem.vertices)}
        assert problem.out_degree[idx["a"]] == 2
        assert problem.in_degree[idx["d"]] == 2

    def test_custom_layer_count(self):
        g = att_like_dag(20, seed=3)
        problem = LayeringProblem.from_graph(g, n_layers=50)
        assert problem.n_layers == 50

    def test_layer_count_below_minimum_rejected(self, path5):
        with pytest.raises(ValidationError):
            LayeringProblem.from_graph(path5, n_layers=2)

    def test_invalid_stretch_strategy(self, diamond):
        with pytest.raises(ValidationError):
            LayeringProblem.from_graph(diamond, stretch_strategy="sideways")

    def test_negative_nd_width_rejected(self, diamond):
        with pytest.raises(ValidationError):
            LayeringProblem.from_graph(diamond, nd_width=-1.0)

    def test_cyclic_graph_rejected(self):
        with pytest.raises(CycleError):
            LayeringProblem.from_graph(DiGraph(edges=[(1, 2), (2, 1)]))

    def test_stretch_strategies_all_valid(self):
        g = att_like_dag(20, seed=4)
        for strategy in ("between", "above", "below", "split"):
            problem = LayeringProblem.from_graph(g, stretch_strategy=strategy)
            lay = problem.assignment_to_layering(problem.initial_assignment, normalize=False)
            assert lay.is_valid(g)


class TestHelpers:
    def test_layer_span_matches_public_function(self):
        g = att_like_dag(20, seed=5)
        problem = LayeringProblem.from_graph(g)
        assignment = problem.initial_assignment
        for i, v in enumerate(problem.vertices):
            lo, hi = problem.layer_span(assignment, i)
            assert lo <= assignment[i] <= hi
            assert 1 <= lo and hi <= problem.n_layers

    def test_assignment_layering_round_trip(self):
        g = att_like_dag(15, seed=6)
        problem = LayeringProblem.from_graph(g)
        lay = problem.assignment_to_layering(problem.initial_assignment, normalize=False)
        back = problem.layering_to_assignment(lay)
        assert np.array_equal(back, problem.initial_assignment)

    def test_assignment_to_layering_normalizes(self):
        g = att_like_dag(15, seed=7)
        problem = LayeringProblem.from_graph(g)
        lay = problem.assignment_to_layering(problem.initial_assignment, normalize=True)
        used = lay.used_layers()
        assert used == list(range(1, len(used) + 1))
