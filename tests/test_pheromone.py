"""Tests for the pheromone matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.pheromone import PheromoneMatrix
from repro.utils.exceptions import ValidationError


class TestConstruction:
    def test_initialised_to_tau0(self):
        p = PheromoneMatrix(4, 6, tau0=0.5)
        assert p.values.shape == (4, 7)
        assert np.all(p.values[:, 1:] == 0.5)
        assert np.all(p.values[:, 0] == 0.0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValidationError):
            PheromoneMatrix(0, 5, tau0=1.0)
        with pytest.raises(ValidationError):
            PheromoneMatrix(5, 0, tau0=1.0)

    def test_invalid_tau0(self):
        with pytest.raises(ValidationError):
            PheromoneMatrix(2, 2, tau0=0.0)


class TestTrail:
    def test_slice_semantics(self):
        p = PheromoneMatrix(3, 5, tau0=1.0)
        p.values[1, 2] = 7.0
        trail = p.trail(1, 2, 4)
        assert trail.shape == (3,)
        assert trail[0] == 7.0

    def test_trail_is_view(self):
        p = PheromoneMatrix(2, 4, tau0=1.0)
        p.trail(0, 1, 4)[0] = 9.0
        assert p.values[0, 1] == 9.0


class TestEvaporationAndDeposit:
    def test_evaporation_scales(self):
        p = PheromoneMatrix(2, 3, tau0=1.0)
        p.evaporate(0.25)
        assert np.allclose(p.values[:, 1:], 0.75)

    def test_evaporation_clamps_at_tau_min(self):
        p = PheromoneMatrix(2, 3, tau0=1.0)
        for _ in range(50):
            p.evaporate(0.9, tau_min=0.01)
        assert np.all(p.values[:, 1:] >= 0.01)

    def test_invalid_rho(self):
        p = PheromoneMatrix(2, 3, tau0=1.0)
        with pytest.raises(ValidationError):
            p.evaporate(1.5)

    def test_deposit_on_assignment(self):
        p = PheromoneMatrix(3, 4, tau0=1.0)
        assignment = np.array([1, 4, 2])
        p.deposit(assignment, 0.5)
        assert p.values[0, 1] == 1.5
        assert p.values[1, 4] == 1.5
        assert p.values[2, 2] == 1.5
        # untouched entries unchanged
        assert p.values[0, 2] == 1.0

    def test_negative_deposit_rejected(self):
        p = PheromoneMatrix(2, 3, tau0=1.0)
        with pytest.raises(ValidationError):
            p.deposit(np.array([1, 1]), -0.5)

    def test_copy_is_independent(self):
        p = PheromoneMatrix(2, 3, tau0=1.0)
        q = p.copy()
        q.values[0, 1] = 99.0
        assert p.values[0, 1] == 1.0
