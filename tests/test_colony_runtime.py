"""Tests for the shared-memory multi-colony runtime and its satellites.

The load-bearing contract is seed stability: for a fixed seed the
``serial``, ``process`` and ``colonies`` executors of
:func:`repro.aco.parallel.parallel_aco_layering` must return the *same* best
solution, and ``exchange_every = 0`` must make the batched runtime
bit-identical to running the colonies independently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.parallel import parallel_aco_layering
from repro.aco.params import ACOParams
from repro.aco.problem import LayeringProblem
from repro.aco.runtime import (
    attach_problem,
    colonies_aco_layering,
    publish_problem,
    run_colonies_batch,
)
from repro.experiments.engine import ExperimentEngine, MethodSpec, WorkUnit
from repro.graph.generators import att_like_dag
from repro.utils.exceptions import ValidationError
from repro.utils.pool import effective_workers

FAST = ACOParams(n_ants=2, n_tours=2, seed=5)


def _colony_view(result):
    """The per-colony data that must be identical across executors."""
    return [
        (c.colony_index, c.seed, c.objective, c.height,
         c.width_including_dummies, c.assignment)
        for c in result.colonies
    ]


class TestSeedStability:
    def test_serial_vs_colonies_bit_identical(self):
        g = att_like_dag(25, seed=11)
        serial = parallel_aco_layering(g, FAST, n_colonies=3, executor="serial")
        colonies = parallel_aco_layering(g, FAST, n_colonies=3, executor="colonies")
        assert colonies.layering == serial.layering
        assert _colony_view(colonies) == _colony_view(serial)

    @pytest.mark.parametrize(
        "params",
        [
            ACOParams(n_ants=2, n_tours=2, seed=5, selection="roulette"),
            ACOParams(n_ants=2, n_tours=2, seed=5, q0=0.4),
            ACOParams(n_ants=2, n_tours=2, seed=5, alpha=2.0, beta=2.0),
            ACOParams(n_ants=2, n_tours=2, seed=5, vertex_order="bfs"),
            ACOParams(n_ants=2, n_tours=2, seed=5, vertex_order="topological"),
            ACOParams(n_ants=2, n_tours=2, seed=5, engine="python"),
        ],
        ids=["roulette", "q0", "exponents", "bfs", "topological", "python-engine"],
    )
    def test_bit_identity_across_configurations(self, params):
        g = att_like_dag(20, seed=12)
        serial = parallel_aco_layering(g, params, n_colonies=3, executor="serial")
        colonies = parallel_aco_layering(g, params, n_colonies=3, executor="colonies")
        assert _colony_view(colonies) == _colony_view(serial)

    def test_forced_sharding_matches_serial(self):
        # max_workers > 1 forces the shared-memory process shards even on a
        # single-CPU machine.
        g = att_like_dag(22, seed=13)
        serial = parallel_aco_layering(g, FAST, n_colonies=4, executor="serial")
        sharded = parallel_aco_layering(
            g, FAST, n_colonies=4, executor="colonies", max_workers=2
        )
        assert sharded.layering == serial.layering
        assert _colony_view(sharded) == _colony_view(serial)

    @pytest.mark.slow
    def test_all_executors_agree(self):
        g = att_like_dag(18, seed=14)
        results = {
            executor: parallel_aco_layering(
                g, FAST, n_colonies=2, executor=executor, max_workers=2
            )
            for executor in ("serial", "thread", "process", "colonies")
        }
        baseline = _colony_view(results["serial"])
        for executor, result in results.items():
            assert _colony_view(result) == baseline, executor
            assert result.layering == results["serial"].layering, executor

    def test_deterministic_across_repeats(self):
        g = att_like_dag(20, seed=15)
        a = parallel_aco_layering(g, FAST, n_colonies=3, executor="colonies")
        b = parallel_aco_layering(g, FAST, n_colonies=3, executor="colonies")
        assert _colony_view(a) == _colony_view(b)


class TestExchange:
    def test_exchange_zero_is_default(self):
        assert ACOParams().exchange_every == 0

    def test_exchange_validation(self):
        with pytest.raises(ValidationError):
            ACOParams(exchange_every=-1)

    def test_exchange_changes_only_when_enabled(self):
        g = att_like_dag(25, seed=16)
        base = ACOParams(n_ants=3, n_tours=6, seed=3)
        independent = parallel_aco_layering(g, base, n_colonies=3, executor="colonies")
        coupled = parallel_aco_layering(
            g,
            base.replace(exchange_every=2),
            n_colonies=3,
            executor="colonies",
        )
        # The coupled run is still a valid layering and can never be worse
        # than the stretched-LPL seed each colony starts from.
        coupled.layering.validate(g)
        assert coupled.objective > 0
        # Exchange must not silently leak into the independent configuration.
        again = parallel_aco_layering(g, base, n_colonies=3, executor="colonies")
        assert _colony_view(again) == _colony_view(independent)

    def test_exchange_forces_single_batch(self):
        # With exchange enabled the runtime must not shard (colonies are
        # coupled); this just pins that the call succeeds with max_workers>1.
        g = att_like_dag(15, seed=17)
        result = parallel_aco_layering(
            g,
            ACOParams(n_ants=2, n_tours=4, seed=1, exchange_every=1),
            n_colonies=3,
            executor="colonies",
            max_workers=4,
        )
        result.layering.validate(g)


class TestSharedMemory:
    def test_publish_attach_roundtrip(self):
        g = att_like_dag(30, seed=18)
        problem = LayeringProblem.from_graph(g)
        with publish_problem(problem) as shared:
            attached, shm = attach_problem(shared.manifest)
            for name in (
                "succ_indptr", "succ_indices", "pred_indptr", "pred_indices",
                "succ_pad", "pred_pad", "edge_src", "out_degree", "in_degree",
                "widths", "initial_assignment",
            ):
                assert np.array_equal(getattr(problem, name), getattr(attached, name)), name
            # The kernel path is CSR-only: the quadratic padded stacks are
            # lazy per-process rebuilds and never travel through the block.
            assert "succ_pad" not in shared.manifest["arrays"]
            assert "pred_pad" not in shared.manifest["arrays"]
            assert attached.succ == problem.succ
            assert attached.pred == problem.pred
            assert np.array_equal(attached.edge_dst, problem.edge_dst)
            assert attached.n_layers == problem.n_layers
            assert attached.nd_width == problem.nd_width
            assert attached.lpl_height == problem.lpl_height
            # The attached arrays are views into the block, not copies.
            assert attached.succ_indptr.base is not None
            del attached
            shm.close()

    def test_attached_problem_runs_colonies(self):
        g = att_like_dag(20, seed=19)
        problem = LayeringProblem.from_graph(g)
        reference = run_colonies_batch(problem, FAST, [101, 202])
        with publish_problem(problem) as shared:
            attached, shm = attach_problem(shared.manifest)
            outcomes = run_colonies_batch(attached, FAST, [101, 202])
            del attached
            shm.close()
        assert [o.score for o in outcomes] == [o.score for o in reference]
        for mine, theirs in zip(outcomes, reference):
            assert np.array_equal(mine.assignment, theirs.assignment)


class TestEngineIntegration:
    def test_method_spec_n_colonies_roundtrip(self):
        spec = MethodSpec.ant_colony(FAST, n_colonies=3)
        assert MethodSpec.from_dict(spec.to_dict()) == spec

    def test_method_spec_rejects_bad_n_colonies(self):
        with pytest.raises(ValidationError):
            MethodSpec.ant_colony(FAST, n_colonies=0)

    def test_portfolio_spec_matches_direct_runtime(self):
        g = att_like_dag(20, seed=20)
        spec = MethodSpec.ant_colony(FAST, n_colonies=3)
        layering = spec.resolve()(g)
        direct = colonies_aco_layering(g, FAST, n_colonies=3, max_workers=1)
        assert layering == direct.layering

    def test_engine_accepts_colonies_executor(self):
        g = att_like_dag(15, seed=21)
        unit = WorkUnit(graph=g, method=MethodSpec.ant_colony(FAST, n_colonies=2))
        serial = ExperimentEngine(executor="serial").run([unit])
        # jobs=1 keeps the (1-CPU CI) process pool to a single worker.
        colonies = ExperimentEngine(executor="colonies", jobs=1).run([unit])
        assert colonies[0].metrics == serial[0].metrics

    def test_engine_rejects_unknown_executor(self):
        with pytest.raises(ValidationError):
            ExperimentEngine(executor="gpu")


class TestNativeCacheDir:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        from repro.aco import _native

        monkeypatch.setenv("REPRO_ACO_NATIVE_CACHE", str(tmp_path))
        assert _native._cache_dir() == str(tmp_path)

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        from repro.aco import _native

        monkeypatch.delenv("REPRO_ACO_NATIVE_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert _native._cache_dir() == str(tmp_path / "repro-aco-native")

    def test_compiles_into_override_dir(self, tmp_path, monkeypatch):
        import os
        import shutil

        from repro.aco import _native

        if not any(shutil.which(cc) for cc in ("cc", "gcc", "clang")):
            pytest.skip("no C compiler available")
        monkeypatch.setenv("REPRO_ACO_NATIVE_CACHE", str(tmp_path))
        path = _native._compile_library()
        assert path is not None
        assert path.startswith(str(tmp_path))
        assert os.path.exists(path)

    def test_missing_compiler_degrades_with_single_warning(self, monkeypatch):
        import warnings

        from repro.aco import _native

        monkeypatch.setattr(_native.shutil, "which", lambda name: None)
        monkeypatch.setattr(_native, "_load_attempted", False)
        monkeypatch.setattr(_native, "_lib", None)
        with pytest.warns(RuntimeWarning, match="native ACO kernel unavailable"):
            assert _native.load_native() is None
        # The failure is cached: no compiler re-probe, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _native.load_native() is None


class TestWorkerClamp:
    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert effective_workers(6) == 6

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert effective_workers(None) == 3

    def test_clamped_to_task_count_and_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "16")
        assert effective_workers(None, n_tasks=5) == 5
        assert effective_workers(None, n_tasks=0) == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValidationError):
            effective_workers(None)

    def test_nonpositive_values_raise(self, monkeypatch):
        with pytest.raises(ValidationError):
            effective_workers(0)
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValidationError):
            effective_workers(None)

    def test_default_without_env_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        import os

        assert effective_workers(None) == (os.cpu_count() or 1)
