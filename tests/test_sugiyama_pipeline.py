"""Tests for the full Sugiyama pipeline and the renderers."""

from __future__ import annotations

import pytest

from repro.aco.params import ACOParams
from repro.aco.layering_aco import aco_layering
from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag
from repro.layering.dummy import DummyVertex
from repro.sugiyama.cycle_removal import remove_cycles
from repro.sugiyama.pipeline import (
    LAYERING_METHODS,
    SugiyamaDrawing,
    resolve_layering_method,
    sugiyama_layout,
)
from repro.sugiyama.render import render_ascii, render_svg
from repro.utils.exceptions import ValidationError


class TestCycleRemoval:
    def test_acyclic_untouched(self, diamond):
        result = remove_cycles(diamond)
        assert result.n_reversed == 0
        assert result.graph == diamond

    def test_cycle_reversed(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1)])
        result = remove_cycles(g)
        assert result.n_reversed >= 1
        from repro.graph.acyclicity import is_acyclic

        assert is_acyclic(result.graph)
        assert result.graph.n_vertices == 3


class TestResolveMethod:
    def test_all_named_methods_exist(self):
        for name in LAYERING_METHODS:
            assert callable(resolve_layering_method(name))

    def test_callable_passthrough(self):
        fn = lambda g: None  # noqa: E731
        assert resolve_layering_method(fn) is fn

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            resolve_layering_method("does-not-exist")


class TestPipeline:
    @pytest.mark.parametrize("method", ["lpl", "lpl+pl", "minwidth", "minwidth+pl", "min-dummy", "coffman-graham"])
    def test_named_methods_produce_drawings(self, method):
        g = att_like_dag(25, seed=1)
        drawing = sugiyama_layout(g, layering_method=method)
        assert isinstance(drawing, SugiyamaDrawing)
        drawing.layering.validate(drawing.acyclic)
        assert drawing.proper.layering.is_proper(drawing.proper.graph)
        assert set(drawing.coordinates) == set(drawing.proper.graph.vertices())
        assert drawing.crossings >= 0
        assert drawing.height == drawing.metrics.height
        assert drawing.width == drawing.metrics.width_including_dummies

    def test_aco_callable_method(self):
        g = att_like_dag(20, seed=2)
        params = ACOParams(n_ants=2, n_tours=2, seed=0)
        drawing = sugiyama_layout(g, layering_method=lambda gg: aco_layering(gg, params))
        drawing.layering.validate(drawing.acyclic)

    def test_cyclic_input_handled(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4)])
        drawing = sugiyama_layout(g, layering_method="lpl")
        assert drawing.reversed_edges
        drawing.layering.validate(drawing.acyclic)
        assert drawing.original.has_edge(3, 1) or drawing.original.has_edge(1, 3)

    def test_nd_width_zero_supported(self):
        g = att_like_dag(15, seed=3)
        drawing = sugiyama_layout(g, layering_method="lpl", nd_width=0.0)
        assert drawing.metrics.nd_width == 0.0

    def test_unknown_method_raises(self):
        g = att_like_dag(10, seed=4)
        with pytest.raises(ValidationError):
            sugiyama_layout(g, layering_method="quantum")


class TestRender:
    def test_ascii_contains_all_layers(self):
        g = att_like_dag(15, seed=5)
        drawing = sugiyama_layout(g, layering_method="lpl")
        text = render_ascii(drawing)
        for layer in range(1, drawing.proper.layering.height + 1):
            assert f"L{layer:>3} |" in text

    def test_ascii_marks_dummies(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (0, 2)])
        drawing = sugiyama_layout(g, layering_method="lpl")
        if any(isinstance(v, DummyVertex) for v in drawing.proper.graph.vertices()):
            assert "*" in render_ascii(drawing)

    def test_svg_written_to_disk(self, tmp_path):
        g = att_like_dag(12, seed=6)
        drawing = sugiyama_layout(g, layering_method="lpl")
        path = tmp_path / "drawing.svg"
        svg = render_svg(drawing, path)
        assert path.exists()
        assert svg.startswith("<svg")
        assert svg.count("<line") == drawing.proper.graph.n_edges
        assert "</svg>" in svg

    def test_svg_string_only(self):
        g = att_like_dag(12, seed=7)
        drawing = sugiyama_layout(g, layering_method="lpl")
        svg = render_svg(drawing)
        assert "<rect" in svg
