"""Tests for the DiGraph container."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.utils.exceptions import GraphError


class TestConstruction:
    def test_empty(self):
        g = DiGraph()
        assert g.n_vertices == 0
        assert g.n_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_vertices_and_edges(self):
        g = DiGraph(vertices=["x"], edges=[("a", "b")])
        assert set(g.vertices()) == {"x", "a", "b"}
        assert list(g.edges()) == [("a", "b")]

    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)

    def test_duplicate_edge_is_noop(self):
        g = DiGraph(edges=[("a", "b"), ("a", "b")])
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_self_loop_allowed_when_opted_in(self):
        g = DiGraph(allow_self_loops=True)
        g.add_edge("a", "a")
        assert g.has_edge("a", "a")

    def test_add_vertex_updates_attributes(self):
        g = DiGraph()
        g.add_vertex("v", width=2.0, label="first")
        g.add_vertex("v", width=3.0, label="second")
        assert g.n_vertices == 1
        assert g.vertex_width("v") == 3.0
        assert g.vertex_label("v") == "second"

    def test_nonpositive_width_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.add_vertex("v", width=0)
        with pytest.raises(GraphError):
            g.add_vertex("w", width=-1.5)

    def test_add_vertices_bulk(self):
        g = DiGraph()
        g.add_vertices(range(5))
        assert g.n_vertices == 5


class TestQueries:
    def test_degrees_and_neighbours(self, diamond):
        assert diamond.out_degree("a") == 2
        assert diamond.in_degree("a") == 0
        assert diamond.in_degree("d") == 2
        assert set(diamond.successors("a")) == {"b", "c"}
        assert set(diamond.predecessors("d")) == {"b", "c"}
        assert diamond.degree("b") == 2

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == ["a"]
        assert diamond.sinks() == ["d"]

    def test_isolated_vertices(self):
        g = DiGraph(vertices=["lonely"], edges=[("a", "b")])
        assert g.isolated_vertices() == ["lonely"]

    def test_has_edge(self, diamond):
        assert diamond.has_edge("a", "b")
        assert not diamond.has_edge("b", "a")
        assert not diamond.has_edge("a", "zzz")

    def test_unknown_vertex_raises(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.successors("missing")
        with pytest.raises(GraphError):
            g.in_degree("missing")

    def test_contains_len_iter(self, diamond):
        assert "a" in diamond
        assert "z" not in diamond
        assert len(diamond) == 4
        assert set(iter(diamond)) == {"a", "b", "c", "d"}

    def test_insertion_order_preserved(self):
        g = DiGraph(vertices=["c", "a", "b"])
        assert list(g.vertices()) == ["c", "a", "b"]


class TestMutation:
    def test_remove_edge(self, diamond):
        diamond.remove_edge("a", "b")
        assert not diamond.has_edge("a", "b")
        assert diamond.n_edges == 3

    def test_remove_missing_edge_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_edge("d", "a")

    def test_remove_vertex_removes_incident_edges(self, diamond):
        diamond.remove_vertex("b")
        assert not diamond.has_vertex("b")
        assert diamond.n_edges == 2
        assert diamond.out_degree("a") == 1

    def test_remove_missing_vertex_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_vertex("zzz")


class TestAttributes:
    def test_default_width(self):
        g = DiGraph(vertices=["v"])
        assert g.vertex_width("v") == 1.0

    def test_set_width(self):
        g = DiGraph(vertices=["v"])
        g.set_vertex_width("v", 4.5)
        assert g.vertex_width("v") == 4.5
        with pytest.raises(GraphError):
            g.set_vertex_width("v", 0)

    def test_labels(self):
        g = DiGraph()
        g.add_vertex("v", label="hello")
        assert g.vertex_label("v") == "hello"
        g.set_vertex_label("v", None)
        assert g.vertex_label("v") is None

    def test_total_vertex_width(self):
        g = DiGraph()
        g.add_vertex("a", width=1.5)
        g.add_vertex("b", width=2.5)
        assert g.total_vertex_width() == pytest.approx(4.0)

    def test_vertex_widths_view_is_copy(self):
        g = DiGraph(vertices=["a"])
        view = g.vertex_widths()
        view["a"] = 99.0
        assert g.vertex_width("a") == 1.0


class TestDerivedGraphs:
    def test_copy_is_independent(self, diamond):
        c = diamond.copy()
        assert c == diamond
        c.remove_vertex("a")
        assert diamond.has_vertex("a")

    def test_copy_preserves_attributes(self):
        g = DiGraph()
        g.add_vertex("v", width=3.0, label="L")
        c = g.copy()
        assert c.vertex_width("v") == 3.0
        assert c.vertex_label("v") == "L"

    def test_reverse(self, diamond):
        r = diamond.reverse()
        assert r.has_edge("b", "a")
        assert not r.has_edge("a", "b")
        assert r.n_edges == diamond.n_edges
        assert r.sources() == ["d"]

    def test_subgraph(self, diamond):
        sub = diamond.subgraph(["a", "b", "d"])
        assert set(sub.vertices()) == {"a", "b", "d"}
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "d")
        assert not sub.has_edge("a", "d")

    def test_subgraph_unknown_vertex_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.subgraph(["a", "nope"])


class TestEquality:
    def test_equal_graphs(self):
        a = DiGraph(edges=[(1, 2)])
        b = DiGraph(edges=[(1, 2)])
        assert a == b

    def test_attribute_difference_breaks_equality(self):
        a = DiGraph(edges=[(1, 2)])
        b = DiGraph(edges=[(1, 2)])
        b.set_vertex_width(1, 2.0)
        assert a != b

    def test_not_equal_to_other_types(self):
        assert DiGraph() != 42

    def test_repr(self, diamond):
        assert "n_vertices=4" in repr(diamond)
        assert "n_edges=4" in repr(diamond)
