"""Tests for the AntColony tour loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.colony import AntColony, ColonyResult, TourRecord
from repro.aco.heuristic import evaluate_assignment
from repro.aco.params import ACOParams
from repro.aco.problem import LayeringProblem
from repro.graph.generators import att_like_dag
from repro.utils.rng import as_generator


def small_problem(seed=0, n=25, nd_width=1.0):
    return LayeringProblem.from_graph(att_like_dag(n, seed=seed), nd_width=nd_width)


class TestRun:
    def test_history_length_matches_tours(self):
        problem = small_problem()
        params = ACOParams(n_ants=3, n_tours=4, seed=1)
        result = AntColony(problem, params).run()
        assert isinstance(result, ColonyResult)
        assert result.n_tours == 4
        assert all(isinstance(rec, TourRecord) for rec in result.history)
        assert [rec.tour for rec in result.history] == [1, 2, 3, 4]

    def test_n_tours_override(self):
        problem = small_problem()
        params = ACOParams(n_ants=2, n_tours=10, seed=1)
        result = AntColony(problem, params).run(n_tours=2)
        assert result.n_tours == 2

    def test_best_is_at_least_as_good_as_every_tour(self):
        problem = small_problem(seed=3)
        params = ACOParams(n_ants=4, n_tours=5, seed=2)
        result = AntColony(problem, params).run()
        assert all(result.best.objective >= rec.best_objective - 1e-12 for rec in result.history)

    def test_never_worse_than_initial_layering(self):
        # The colony's global best is seeded with the stretched LPL layering,
        # so the result can never be worse than the seed.
        for seed in range(4):
            problem = small_problem(seed=seed, n=30)
            initial = evaluate_assignment(problem, problem.initial_assignment)
            params = ACOParams(n_ants=3, n_tours=3, seed=seed)
            result = AntColony(problem, params).run()
            assert result.best.objective >= initial.objective - 1e-12

    def test_deterministic_given_seed(self):
        problem_a = small_problem(seed=5)
        problem_b = small_problem(seed=5)
        params = ACOParams(n_ants=3, n_tours=3, seed=9)
        res_a = AntColony(problem_a, params).run()
        res_b = AntColony(problem_b, params).run()
        assert np.array_equal(res_a.best.assignment, res_b.best.assignment)
        assert res_a.best.objective == res_b.best.objective

    def test_result_layering_is_valid(self):
        problem = small_problem(seed=6)
        params = ACOParams(n_ants=3, n_tours=3, seed=0)
        result = AntColony(problem, params).run()
        layering = problem.assignment_to_layering(result.best.assignment)
        layering.validate(problem.graph)


class TestPheromoneDynamics:
    def test_pheromone_changes_after_run(self):
        problem = small_problem(seed=7)
        params = ACOParams(n_ants=2, n_tours=3, seed=0, rho=0.5)
        colony = AntColony(problem, params)
        before = colony.pheromone.values.copy()
        colony.run()
        assert not np.allclose(before, colony.pheromone.values)

    def test_pheromone_respects_tau_min(self):
        problem = small_problem(seed=8)
        params = ACOParams(n_ants=2, n_tours=6, seed=0, rho=0.9, tau_min=1e-3)
        colony = AntColony(problem, params)
        colony.run()
        assert np.all(colony.pheromone.values[:, 1:] >= 1e-3 - 1e-12)

    def test_best_ant_cells_accumulate_more_pheromone(self):
        problem = small_problem(seed=9)
        params = ACOParams(n_ants=3, n_tours=5, seed=1, rho=0.3)
        colony = AntColony(problem, params)
        result = colony.run()
        values = colony.pheromone.values
        best_cells = values[np.arange(problem.n_vertices), result.best.assignment]
        # The best assignment's cells should on average hold at least as much
        # pheromone as a random other cell.
        assert best_cells.mean() >= values[:, 1:].mean() - 1e-9


class TestExternalRng:
    def test_explicit_rng_used(self):
        problem = small_problem(seed=10)
        params = ACOParams(n_ants=2, n_tours=2)
        rng = as_generator(123)
        result1 = AntColony(problem, params, rng=as_generator(123)).run()
        result2 = AntColony(problem, params, rng=rng).run()
        assert np.array_equal(result1.best.assignment, result2.best.assignment)
