"""Tests for the random/structured DAG generators."""

from __future__ import annotations

import pytest

from repro.graph.acyclicity import is_acyclic, longest_path_lengths
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    att_like_dag,
    complete_layered_dag,
    gnp_dag,
    layered_random_dag,
    longest_path_dag,
    random_binary_tree_dag,
    random_tree_dag,
    series_parallel_dag,
)
from repro.utils.exceptions import ValidationError


def assert_valid_dag(g: DiGraph, n: int) -> None:
    assert g.n_vertices == n
    assert is_acyclic(g)


class TestGnpDag:
    def test_basic_properties(self):
        g = gnp_dag(25, 0.2, seed=0)
        assert_valid_dag(g, 25)

    def test_p_zero_has_no_edges(self):
        assert gnp_dag(10, 0.0, seed=0).n_edges == 0

    def test_p_one_is_complete_dag(self):
        g = gnp_dag(6, 1.0, seed=0)
        assert g.n_edges == 6 * 5 // 2

    def test_deterministic(self):
        a, b = gnp_dag(20, 0.3, seed=7), gnp_dag(20, 0.3, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a, b = gnp_dag(20, 0.3, seed=1), gnp_dag(20, 0.3, seed=2)
        assert a != b

    def test_single_vertex(self):
        g = gnp_dag(1, 0.5, seed=0)
        assert g.n_vertices == 1 and g.n_edges == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            gnp_dag(0, 0.5)
        with pytest.raises(ValidationError):
            gnp_dag(5, 1.5)


class TestLayeredRandomDag:
    def test_structure(self):
        g = layered_random_dag(4, 5, 0.5, seed=1)
        assert_valid_dag(g, 20)

    def test_max_span_limits_path_length(self):
        g = layered_random_dag(5, 3, 1.0, max_span=1, seed=0)
        # with full probability and span 1, longest path covers all layers
        dist = longest_path_lengths(g)
        assert max(dist.values()) == 4

    def test_invalid(self):
        with pytest.raises(ValidationError):
            layered_random_dag(0, 3, 0.5)
        with pytest.raises(ValidationError):
            layered_random_dag(3, 3, 2.0)
        with pytest.raises(ValidationError):
            layered_random_dag(3, 3, 0.5, max_span=0)


class TestTrees:
    def test_random_tree_is_tree(self):
        g = random_tree_dag(30, seed=4)
        assert_valid_dag(g, 30)
        assert g.n_edges == 29
        assert len(g.sources()) == 1

    def test_max_children_respected(self):
        g = random_tree_dag(40, max_children=2, seed=1)
        assert all(g.out_degree(v) <= 2 for v in g.vertices())

    def test_random_tree_invalid(self):
        with pytest.raises(ValidationError):
            random_tree_dag(5, max_children=0)

    def test_binary_tree(self):
        g = random_binary_tree_dag(3)
        assert g.n_vertices == 15
        assert g.n_edges == 14
        assert g.out_degree(0) == 2

    def test_binary_tree_depth_zero(self):
        g = random_binary_tree_dag(0)
        assert g.n_vertices == 1 and g.n_edges == 0

    def test_binary_tree_negative_depth(self):
        with pytest.raises(ValidationError):
            random_binary_tree_dag(-1)


class TestSeriesParallel:
    def test_two_terminal(self):
        g = series_parallel_dag(30, seed=2)
        assert is_acyclic(g)
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_zero_operations(self):
        g = series_parallel_dag(0, seed=0)
        assert g.n_vertices == 2 and g.n_edges == 1

    def test_negative_raises(self):
        with pytest.raises(ValidationError):
            series_parallel_dag(-1)


class TestPathAndComplete:
    def test_longest_path_dag(self):
        g = longest_path_dag(6)
        assert g.n_edges == 5
        assert max(longest_path_lengths(g).values()) == 5

    def test_complete_layered(self):
        g = complete_layered_dag(3, 4)
        assert g.n_vertices == 12
        assert g.n_edges == 2 * 16

    def test_complete_layered_invalid(self):
        with pytest.raises(ValidationError):
            complete_layered_dag(0, 4)


class TestAttLikeDag:
    @pytest.mark.parametrize("n", [10, 35, 60, 100])
    def test_valid_dag(self, n):
        g = att_like_dag(n, seed=9)
        assert_valid_dag(g, n)

    def test_sparse(self):
        g = att_like_dag(80, seed=3)
        assert g.n_edges <= 2.0 * g.n_vertices

    def test_shallow(self):
        # AT&T-like graphs are shallow: the longest path is much shorter than n.
        g = att_like_dag(100, seed=5)
        height = max(longest_path_lengths(g).values()) + 1
        assert height <= 15

    def test_deterministic(self):
        assert att_like_dag(50, seed=1) == att_like_dag(50, seed=1)

    def test_single_vertex(self):
        g = att_like_dag(1, seed=0)
        assert g.n_vertices == 1 and g.n_edges == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            att_like_dag(10, edge_factor=-1)
        with pytest.raises(ValidationError):
            att_like_dag(10, depth_ratio=1.5)
        with pytest.raises(ValidationError):
            att_like_dag(10, span_decay=0.0)


class TestLayeredRandomDagEngines:
    """The block-draw engine consumes the RNG stream identically to the scalar loop."""

    def test_engines_identical(self):
        for seed in (0, 1, 7):
            for n_layers, layer_size, p, max_span in (
                (4, 5, 0.3, 3),
                (6, 3, 0.1, 2),
                (3, 8, 0.9, 1),
            ):
                ref = layered_random_dag(
                    n_layers, layer_size, p, max_span=max_span, seed=seed, engine="python"
                )
                vec = layered_random_dag(
                    n_layers, layer_size, p, max_span=max_span, seed=seed,
                    engine="vectorized",
                )
                assert vec == ref
                assert list(vec.edges()) == list(ref.edges())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError):
            layered_random_dag(2, 2, 0.5, engine="gpu")
