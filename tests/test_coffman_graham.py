"""Tests for the Coffman–Graham width-bounded layering."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag, gnp_dag, longest_path_dag
from repro.layering.coffman_graham import coffman_graham_labels, coffman_graham_layering
from repro.layering.longest_path import minimum_height
from repro.utils.exceptions import ValidationError


class TestLabels:
    def test_labels_are_a_permutation(self, diamond):
        labels = coffman_graham_labels(diamond)
        assert sorted(labels.values()) == [1, 2, 3, 4]

    def test_sinks_get_smallest_labels(self, diamond):
        labels = coffman_graham_labels(diamond)
        assert labels["d"] == 1

    def test_path_labels_increase_upstream(self, path5):
        labels = coffman_graham_labels(path5)
        assert labels[4] < labels[3] < labels[2] < labels[1] < labels[0]


class TestLayering:
    def test_width_bound_respected(self):
        for seed in range(3):
            g = att_like_dag(40, seed=seed)
            for bound in (1, 2, 3, 5):
                lay = coffman_graham_layering(g, bound)
                lay.validate(g)
                for layer in lay.used_layers():
                    assert len(lay.vertices_on(layer)) <= bound

    def test_validity(self, sample_graphs):
        for g in sample_graphs:
            coffman_graham_layering(g, 3).validate(g)

    def test_large_bound_gives_minimum_height(self):
        g = gnp_dag(20, 0.2, seed=4)
        lay = coffman_graham_layering(g, g.n_vertices)
        assert lay.height == minimum_height(g)

    def test_bound_one_on_path(self):
        g = longest_path_dag(5)
        lay = coffman_graham_layering(g, 1)
        assert lay.height == 5

    def test_two_approximation_bound(self):
        # Classic guarantee: height <= (2 - 2/W) * optimal height for width W,
        # where the optimal height is at least ceil(n / W) and at least the
        # minimum DAG height.
        g = att_like_dag(30, seed=6)
        bound = 3
        lay = coffman_graham_layering(g, bound)
        optimal_lower = max(minimum_height(g), -(-g.n_vertices // bound))
        assert lay.height <= (2 - 2 / bound) * optimal_lower + 1

    def test_invalid_bound(self, diamond):
        with pytest.raises(ValidationError):
            coffman_graham_layering(diamond, 0)

    def test_single_vertex(self):
        g = DiGraph(vertices=["v"])
        assert coffman_graham_layering(g, 1)["v"] == 1
