"""Tests for cross-graph megabatch execution (PackedProblems → batched executor).

The load-bearing contract is bit-identity: packing many graphs into one
lockstep kernel sweep must change *nothing* about any graph's result — for
every walk engine, with and without the native kernel, at any batch size,
with graphs of unequal size sharing a pack.  On top sit the engine-level
lifecycle guarantees: the batched executor composes with the result cache,
the run journal (``--resume``), ``--strict`` and per-cell fault isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.params import ACOParams
from repro.aco.problem import LayeringProblem, PackedProblems
from repro.aco.runtime import (
    attach_packed,
    publish_packed,
    run_colonies_batch,
    run_packed_colonies,
)
from repro.datasets.corpus import att_like_corpus
from repro.experiments.cache import ResultCache
from repro.experiments.engine import (
    ExperimentEngine,
    FAIL_CELLS_ENV,
    MAX_CELLS_ENV,
    MethodSpec,
    RunInterrupted,
    CellFailure,
    WorkUnit,
    default_method_specs,
)
from repro.experiments.journal import RunJournal
from repro.graph.generators import att_like_dag
from repro.utils.exceptions import ValidationError

FAST = ACOParams(n_ants=2, n_tours=2, seed=3)

#: Deliberately unequal graph sizes, with duplicates, for one pack.
SIZES_SEEDS = ((10, 1), (26, 2), (17, 3), (26, 4), (13, 5))


def _graphs():
    return [att_like_dag(n, seed=s) for n, s in SIZES_SEEDS]


def _units(graphs, spec, label="AntColony", nd_width=1.0):
    return [
        WorkUnit(
            graph=g,
            method=spec,
            nd_width=nd_width,
            graph_name=f"g{i}",
            vertex_count=g.n_vertices,
            label=label,
        )
        for i, g in enumerate(graphs)
    ]


def _metric_view(cells):
    return [(c.algorithm, c.graph_name, c.metrics) for c in cells]


class TestPackedBitIdentity:
    """Packed execution equals per-graph execution, bit for bit."""

    @pytest.mark.parametrize("engine", ["vectorized", "python"])
    @pytest.mark.parametrize("native", [True, False], ids=["native", "numpy"])
    @pytest.mark.parametrize("batch_size", [1, 7, None], ids=["b1", "b7", "ball"])
    def test_engine_matrix(self, engine, native, batch_size, monkeypatch):
        if not native:
            monkeypatch.setenv("REPRO_ACO_NATIVE", "0")
        params = FAST.replace(engine=engine)
        graphs = _graphs()
        units = _units(graphs, MethodSpec.ant_colony(params))
        serial = ExperimentEngine().run(units)
        batched = ExperimentEngine(executor="batched", batch_size=batch_size).run(units)
        assert _metric_view(batched) == _metric_view(serial)

    @pytest.mark.parametrize(
        "params",
        [
            FAST.replace(selection="roulette"),
            FAST.replace(q0=0.4),
            FAST.replace(alpha=2.0, beta=2.0),
            FAST.replace(vertex_order="bfs"),
            FAST.replace(vertex_order="topological"),
        ],
        ids=["roulette", "q0", "exponents", "bfs", "topological"],
    )
    def test_configuration_matrix(self, params):
        units = _units(_graphs(), MethodSpec.ant_colony(params))
        serial = ExperimentEngine().run(units)
        batched = ExperimentEngine(executor="batched").run(units)
        assert _metric_view(batched) == _metric_view(serial)

    def test_multi_colony_portfolio(self):
        spec = MethodSpec.ant_colony(FAST, n_colonies=3)
        units = _units(_graphs(), spec)
        serial = ExperimentEngine().run(units)
        batched = ExperimentEngine(executor="batched").run(units)
        assert _metric_view(batched) == _metric_view(serial)

    def test_runtime_level_identity(self):
        problems = [LayeringProblem.from_graph(g) for g in _graphs()]
        packed = PackedProblems.pack(problems)
        seeds = [[FAST.seed], [11, 22], [FAST.seed], [33], [44, 55, 66]]
        reference = [
            run_colonies_batch(p, FAST, s) for p, s in zip(problems, seeds)
        ]
        outcomes = run_packed_colonies(packed, FAST, seeds)
        for ref, got in zip(reference, outcomes):
            assert [o.score for o in got] == [o.score for o in ref]
            for mine, theirs in zip(got, ref):
                assert np.array_equal(mine.assignment, theirs.assignment)

    def test_forced_sharding_identity(self):
        problems = [LayeringProblem.from_graph(g) for g in _graphs()]
        packed = PackedProblems.pack(problems)
        seeds = [[FAST.seed]] * len(problems)
        reference = run_packed_colonies(packed, FAST, seeds)
        sharded = run_packed_colonies(packed, FAST, seeds, max_workers=2)
        for ref, got in zip(reference, sharded):
            assert [o.score for o in got] == [o.score for o in ref]

    def test_full_five_algorithm_comparison(self):
        corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20, 30))
        specs = default_method_specs(aco_params=FAST)
        units = [
            WorkUnit(
                graph=e.graph,
                method=spec,
                graph_name=e.name,
                vertex_count=e.vertex_count,
                label=name,
            )
            for e in corpus
            for name, spec in specs.items()
        ]
        serial = ExperimentEngine().run(units)
        batched = ExperimentEngine(executor="batched").run(units)
        assert _metric_view(batched) == _metric_view(serial)


class TestPackedProblems:
    def test_rejects_empty_pack(self):
        with pytest.raises(ValidationError):
            PackedProblems.pack([])

    def test_rejects_mixed_nd_width(self):
        a = LayeringProblem.from_graph(att_like_dag(10, seed=1), nd_width=1.0)
        b = LayeringProblem.from_graph(att_like_dag(10, seed=2), nd_width=0.5)
        with pytest.raises(ValidationError):
            PackedProblems.pack([a, b])

    def test_publish_attach_roundtrip(self):
        problems = [LayeringProblem.from_graph(g) for g in _graphs()]
        packed = PackedProblems.pack(problems)
        with publish_packed(packed) as shared:
            attached, shm = attach_packed(shared.manifest)
            for name in (
                "n_vertices_per", "n_layers_per", "vert_offset", "indptr_offset",
                "succ_indptr", "succ_indices", "pred_indptr", "pred_indices",
                "succ_pad", "pred_pad", "out_degree", "in_degree", "widths",
                "initial_assignment", "init_real", "init_crossing", "init_occupancy",
            ):
                assert np.array_equal(
                    getattr(packed, name), getattr(attached, name)
                ), name
            # CSR-only block: the lazy padded stacks never cross the boundary.
            assert "succ_pad" not in shared.manifest["arrays"]
            assert "pred_pad" not in shared.manifest["arrays"]
            assert attached.max_n_vertices == packed.max_n_vertices
            assert attached.max_n_cols == packed.max_n_cols
            for mine, theirs in zip(attached.problems, packed.problems):
                assert mine.succ == theirs.succ
                assert mine.pred == theirs.pred
                assert mine.n_layers == theirs.n_layers
                assert np.array_equal(mine.edge_src, theirs.edge_src)
            # The pack-level arrays are views into the block, not copies.
            assert attached.succ_indptr.base is not None
            del attached
            shm.close()

    def test_attached_pack_runs_identically(self):
        problems = [LayeringProblem.from_graph(g) for g in _graphs()[:3]]
        packed = PackedProblems.pack(problems)
        seeds = [[7], [8], [9]]
        reference = run_packed_colonies(packed, FAST, seeds)
        with publish_packed(packed) as shared:
            attached, shm = attach_packed(shared.manifest)
            outcomes = run_packed_colonies(attached, FAST, seeds)
            del attached
            shm.close()
        for ref, got in zip(reference, outcomes):
            assert [o.score for o in got] == [o.score for o in ref]


class TestBatchedLifecycle:
    """Cache, journal, strict mode and fault isolation through packs."""

    def test_cache_hits_compose(self, tmp_path):
        units = _units(_graphs(), MethodSpec.ant_colony(FAST))
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(executor="batched", cache=cache)
        cold = engine.run(units)
        assert all(not c.cached for c in cold)
        warm = ExperimentEngine(executor="batched", cache=cache).run(units)
        assert all(c.cached for c in warm)
        assert _metric_view(warm) == _metric_view(cold)

    def test_partial_cache_packs_only_misses(self, tmp_path):
        graphs = _graphs()
        spec = MethodSpec.ant_colony(FAST)
        cache = ResultCache(tmp_path)
        ExperimentEngine(executor="batched", cache=cache).run(
            _units(graphs[:2], spec)
        )
        cells = ExperimentEngine(executor="batched", cache=cache).run(
            _units(graphs, spec)
        )
        assert [c.cached for c in cells] == [True, True, False, False, False]
        serial = ExperimentEngine().run(_units(graphs, spec))
        assert _metric_view(cells) == _metric_view(serial)

    def test_journal_replay_composes(self, tmp_path):
        units = _units(_graphs(), MethodSpec.ant_colony(FAST))
        with RunJournal(tmp_path) as journal:
            first = ExperimentEngine(executor="batched", journal=journal).run(units)
        with RunJournal(tmp_path) as journal:
            resumed = ExperimentEngine(
                executor="batched", journal=journal, resume=True
            ).run(units)
        assert all(c.replayed for c in resumed)
        assert _metric_view(resumed) == _metric_view(first)

    def test_interrupt_mid_pack_then_resume(self, tmp_path, monkeypatch):
        units = _units(_graphs(), MethodSpec.ant_colony(FAST))
        monkeypatch.setenv(MAX_CELLS_ENV, "2")
        with RunJournal(tmp_path) as journal:
            engine = ExperimentEngine(executor="batched", journal=journal)
            with pytest.raises(RunInterrupted):
                list(engine.run_iter(units))
        monkeypatch.delenv(MAX_CELLS_ENV)
        with RunJournal(tmp_path) as journal:
            resumed = ExperimentEngine(
                executor="batched", journal=journal, resume=True
            ).run(units)
        assert sum(c.replayed for c in resumed) == 2
        serial = ExperimentEngine().run(units)
        assert _metric_view(resumed) == _metric_view(serial)

    def test_poisoned_graph_fails_only_its_cell(self, monkeypatch):
        graphs = _graphs()
        units = _units(graphs, MethodSpec.ant_colony(FAST))
        monkeypatch.setenv(FAIL_CELLS_ENV, "AntColony:g2")
        cells = ExperimentEngine(executor="batched").run(units)
        assert [c.ok for c in cells] == [True, True, False, True, True]
        assert cells[2].error is not None
        assert "injected failure" in cells[2].error.message
        monkeypatch.delenv(FAIL_CELLS_ENV)
        serial = ExperimentEngine().run(units)
        healthy = [v for i, v in enumerate(_metric_view(cells)) if i != 2]
        expected = [v for i, v in enumerate(_metric_view(serial)) if i != 2]
        assert healthy == expected

    def test_strict_mode_raises(self, monkeypatch):
        units = _units(_graphs(), MethodSpec.ant_colony(FAST))
        monkeypatch.setenv(FAIL_CELLS_ENV, "AntColony:g0")
        with pytest.raises(CellFailure):
            ExperimentEngine(executor="batched", strict=True).run(units)

    def test_seedless_spec_falls_back_to_serial_path(self):
        # seed=None means fresh entropy: nothing to replicate, so the cells
        # run unpacked — and still succeed.
        spec = MethodSpec.ant_colony(ACOParams(n_ants=2, n_tours=1, seed=None))
        cells = ExperimentEngine(executor="batched").run(_units(_graphs()[:2], spec))
        assert all(c.ok for c in cells)

    def test_batch_size_validation(self):
        with pytest.raises(ValidationError):
            ExperimentEngine(executor="batched", batch_size=0)


class TestExecutorDowngrade:
    def test_process_downgrades_to_serial_with_note(self, capsys):
        units = _units(_graphs()[:2], MethodSpec.ant_colony(FAST))
        serial = ExperimentEngine().run(units)
        cells = ExperimentEngine(executor="process", jobs=1).run(units)
        assert _metric_view(cells) == _metric_view(serial)
        note = capsys.readouterr().err
        assert "running cells serially" in note
        assert note.count("running cells serially") == 1

    def test_note_emitted_once_per_engine(self, capsys):
        units = _units(_graphs()[:2], MethodSpec.ant_colony(FAST, n_colonies=2))
        engine = ExperimentEngine(executor="colonies", jobs=1)
        engine.run(units)
        engine.run(units)
        assert capsys.readouterr().err.count("running cells serially") == 1

    def test_no_note_with_multiple_workers(self, capsys):
        units = _units(_graphs()[:2], MethodSpec.builtin("LPL"))
        ExperimentEngine(executor="process", jobs=2).run(units)
        assert "running cells serially" not in capsys.readouterr().err


class TestCacheMemoryLayer:
    def test_put_primes_memory(self, tmp_path):
        from repro.layering.longest_path import longest_path_layering
        from repro.layering.metrics import evaluate_layering

        g = att_like_dag(10, seed=1)
        metrics = evaluate_layering(g, longest_path_layering(g))
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, metrics, 0.5)
        hit = cache.get("ab" + "0" * 62)
        assert hit is not None and hit.metrics == metrics
        stats = cache.hit_stats()
        assert stats.memory_hits == 1
        assert stats.disk_hits == 0

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        from repro.layering.longest_path import longest_path_layering
        from repro.layering.metrics import evaluate_layering

        g = att_like_dag(10, seed=1)
        metrics = evaluate_layering(g, longest_path_layering(g))
        key = "cd" + "0" * 62
        ResultCache(tmp_path).put(key, metrics, 0.5)
        fresh = ResultCache(tmp_path)  # new process's view: empty memory
        assert fresh.get(key) is not None
        assert fresh.get(key) is not None
        stats = fresh.hit_stats()
        assert stats.disk_hits == 1
        assert stats.memory_hits == 1
        assert stats.memory_misses == 1

    def test_miss_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ef" + "0" * 62) is None
        stats = cache.hit_stats()
        assert stats.memory_misses == 1
        assert stats.disk_misses == 1

    def test_memory_disabled(self, tmp_path):
        from repro.layering.longest_path import longest_path_layering
        from repro.layering.metrics import evaluate_layering

        g = att_like_dag(10, seed=1)
        metrics = evaluate_layering(g, longest_path_layering(g))
        cache = ResultCache(tmp_path, memory_entries=0)
        key = "01" + "0" * 62
        cache.put(key, metrics, 0.5)
        assert cache.get(key) is not None
        assert cache.hit_stats().memory_hits == 0
        assert cache.hit_stats().disk_hits == 1

    def test_lru_eviction(self, tmp_path):
        from repro.layering.longest_path import longest_path_layering
        from repro.layering.metrics import evaluate_layering

        g = att_like_dag(10, seed=1)
        metrics = evaluate_layering(g, longest_path_layering(g))
        cache = ResultCache(tmp_path, memory_entries=2)
        keys = [f"{i:02d}" + "0" * 62 for i in range(3)]
        for key in keys:
            cache.put(key, metrics, 0.5)
        assert len(cache._memory) == 2
        assert keys[0] not in cache._memory  # oldest evicted
        # The evicted key still resolves through the disk layer.
        assert cache.get(keys[0]) is not None
        assert cache.hit_stats().disk_hits == 1

    def test_negative_capacity_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultCache(tmp_path, memory_entries=-1)


class TestCliOptions:
    def test_batched_executor_accepted(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["compare", "--executor", "batched", "--batch-size", "16"]
        )
        assert args.executor == "batched"
        assert args.batch_size == 16

    def test_compare_batched_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "compare",
                "--graphs-per-group", "1",
                "--vertex-counts", "10", "15",
                "--ants", "2",
                "--tours", "2",
                "--executor", "batched",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AntColony" in out
