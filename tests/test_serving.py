"""The layout service: protocol, admission, batching, deadlines, retries.

Drives a real :class:`~repro.serving.LayoutServer` in-process over TCP
(the loop thread, worker thread, admission queue and megabatch path are
all live) plus direct unit tests for the HTTP plumbing, request decoding,
and the crash-retry policy.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.experiments.engine import ANT_COLONY, CellError, CellResult, WorkUnit
from repro.graph.digraph import DiGraph
from repro.serving import LayoutServer, ServeConfig, build_unit
from repro.serving.http import HttpError, read_request, response_bytes
from repro.serving.server import _Pending
from repro.utils.exceptions import ValidationError

from serving_harness import DIAMOND, ServerHarness, layer_payload


@pytest.fixture(autouse=True)
def _shm_isolation(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SHM_MANIFEST_DIR", str(tmp_path / "shm-manifests"))


@pytest.fixture(scope="module")
def harness():
    with ServerHarness(
        ServeConfig(batch_window_s=0.01, prewarm=False, request_timeout_s=30.0)
    ) as h:
        yield h


# --------------------------------------------------------------------------- #
# HTTP plumbing
# --------------------------------------------------------------------------- #


def _parse(raw: bytes, **kwargs):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


class TestHttpLayer:
    def test_parses_post_with_body(self):
        req = _parse(
            b"POST /layer HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi"
        )
        assert req is not None
        assert (req.method, req.path, req.body) == ("POST", "/layer", b"hi")
        assert req.headers["host"] == "x"

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line_raises_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"GARBAGE\r\n\r\n")
        assert err.value.status == 400

    def test_body_over_limit_raises_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(HttpError) as err:
            _parse(raw, max_body_bytes=10)
        assert err.value.status == 413

    def test_truncated_body_raises_400(self):
        with pytest.raises(HttpError) as err:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
        assert err.value.status == 400

    def test_response_bytes_are_deterministic(self):
        a = response_bytes(200, {"b": 1, "a": 2})
        b = response_bytes(200, {"a": 2, "b": 1})
        assert a == b
        assert b"200 OK" in a and b'{"a": 2, "b": 1}' in a


# --------------------------------------------------------------------------- #
# request decoding
# --------------------------------------------------------------------------- #


class TestBuildUnit:
    def test_shorthand_graph_and_defaults(self):
        unit, budget = build_unit({"graph": DIAMOND, "name": "x"})
        assert unit.graph.n_vertices == 4 and unit.graph.n_edges == 5
        assert unit.method.name == ANT_COLONY
        assert unit.method.aco_params["seed"] == 0  # deterministic by default
        assert unit.resolved_graph_name == "x"
        assert budget == ServeConfig.request_timeout_s

    def test_full_digraph_json_roundtrip(self):
        from repro.graph.io import to_json_dict

        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        unit, _ = build_unit({"graph": to_json_dict(g)})
        assert sorted(unit.graph.vertices()) == ["a", "b", "c"]

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"graph": DIAMOND, "bogus": 1}, "unknown request fields"),
            ({}, "'graph' is required"),
            ({"graph": {"nodes": []}}, "must be repro-digraph JSON"),
            ({"graph": DIAMOND, "method": "Zig"}, "unknown method"),
            ({"graph": DIAMOND, "nd_width": 0}, "nd_width must be > 0"),
            ({"graph": DIAMOND, "deadline_s": -1}, "deadline_s must be > 0"),
            ({"graph": DIAMOND, "aco": {"warp": 9}}, "bad 'aco' parameters"),
            (
                {"graph": DIAMOND, "method": "LPL", "aco": {"seed": 1}},
                "only apply to method",
            ),
            (
                {"graph": DIAMOND, "nd_width": 2.0, "aco": {"nd_width": 3.0}},
                "contradicts",
            ),
        ],
    )
    def test_defects_raise_validation_error(self, payload, fragment):
        with pytest.raises(ValidationError, match=fragment):
            build_unit(payload)

    def test_deadline_clamped_to_maximum(self):
        _, budget = build_unit({"graph": DIAMOND, "deadline_s": 10_000.0})
        assert budget == ServeConfig.max_request_timeout_s

    def test_builtin_method(self):
        unit, _ = build_unit({"graph": DIAMOND, "method": "MinWidth+PL"})
        assert unit.method.name == "MinWidth+PL" and unit.method.aco_params is None


# --------------------------------------------------------------------------- #
# the live server
# --------------------------------------------------------------------------- #


class TestEndpoints:
    def test_healthz_and_readyz(self, harness):
        assert harness.request("GET", "/healthz")[0] == 200
        status, body, _ = harness.request("GET", "/readyz")
        assert status == 200 and body == {"status": "ready", "degraded": []}

    def test_unknown_endpoint_404(self, harness):
        assert harness.request("GET", "/nope")[0] == 404

    def test_wrong_method_405(self, harness):
        assert harness.request("POST", "/healthz", {})[0] == 405
        assert harness.request("GET", "/layer")[0] == 405

    def test_bad_json_body_400(self, harness):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", harness.port, timeout=30)
        conn.request("POST", "/layer", b"{not json", {"content-type": "application/json"})
        assert conn.getresponse().status == 400
        conn.close()

    def test_stats_counters_present(self, harness):
        status, body, _ = harness.request("GET", "/stats")
        assert status == 200
        for key in ("accepted", "batches", "responses", "queue_depth", "cache"):
            assert key in body


class TestLayering:
    def test_layer_request_and_cached_repeat(self, harness):
        payload = layer_payload("core-repeat")
        status, first = harness.layer(payload)
        assert status == 200
        assert first["name"] == "core-repeat" and first["algorithm"] == ANT_COLONY
        assert first["metrics"]["n_vertices"] == 4
        assert first["metrics"]["dummy_vertex_count"] >= 1

        status, second = harness.layer(payload)
        assert status == 200
        assert second["cached"] is True
        assert second["metrics"] == first["metrics"]

    def test_builtin_method_served(self, harness):
        status, body = harness.layer(
            {"graph": DIAMOND, "method": "LPL", "name": "core-lpl"}
        )
        assert status == 200 and body["algorithm"] == "LPL"

    def test_concurrent_burst_coalesces(self, harness):
        import concurrent.futures

        before = harness.request("GET", "/stats")[1]["batches"]
        payloads = [layer_payload(f"burst-{i}") for i in range(6)]
        with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(harness.layer, payloads))
        assert all(status == 200 for status, _ in outcomes)
        tables = {body["metrics"]["objective"] for _, body in outcomes}
        assert len(tables) == 1  # same graph, same spec, same answer
        after = harness.request("GET", "/stats")[1]["batches"]
        # Six concurrent misses must NOT take six engine runs.
        assert after - before < 6

    def test_expired_queue_budget_answers_504(self, harness):
        status, body = harness.layer(
            layer_payload("core-expired", deadline_s=0.001)
        )
        assert status == 504
        assert body["kind"] == "timeout" and body["name"] == "core-expired"


class TestBackpressure:
    def test_admission_beyond_queue_bound_answers_429(self):
        import concurrent.futures

        # A long coalescing window holds admitted requests in the queue so
        # the bound is observable without timing races.
        with ServerHarness(
            ServeConfig(
                batch_window_s=3.0, max_queue=2, prewarm=False
            )
        ) as h:
            with concurrent.futures.ThreadPoolExecutor(max_workers=3) as pool:
                futures = [
                    pool.submit(
                        lambda i=i: h.request(
                            "POST", "/layer", layer_payload(f"bp-{i}")
                        )
                    )
                    for i in range(2)
                ]
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if h.request("GET", "/stats")[1]["queue_depth"] >= 2:
                        break
                    time.sleep(0.02)
                status, body, headers = h.request(
                    "POST", "/layer", layer_payload("bp-overflow")
                )
                assert status == 429
                assert body["error"] == "overloaded"
                assert int(headers["Retry-After"]) >= 1
                # The admitted requests still complete normally.
                assert all(f.result()[0] == 200 for f in futures)


class TestCrashRetryPolicy:
    """Only ``kind == "crash"`` failures are requeued, and only boundedly."""

    def _pending(self, retries_left):
        unit = WorkUnit(
            graph=_diamond_graph(), method=_aco_spec(), graph_name="crashy"
        )
        return _Pending(
            unit=unit,
            budget=30.0,
            deadline=time.monotonic() + 30.0,
            future=asyncio.get_running_loop().create_future(),
            retries_left=retries_left,
        )

    def _failed_cell(self, kind):
        return CellResult(
            algorithm=ANT_COLONY,
            graph_name="crashy",
            vertex_count=4,
            nd_width=1.0,
            metrics=None,
            running_time=0.0,
            error=CellError(
                exc_type="WorkerCrashed",
                message="worker died",
                traceback="",
                running_time=0.0,
                kind=kind,
            ),
        )

    def test_crash_requeues_then_exhausts(self):
        async def scenario():
            server = LayoutServer(ServeConfig(crash_retries=1, prewarm=False))
            server._loop = asyncio.get_running_loop()
            server._wake = asyncio.Event()
            pending = self._pending(retries_left=1)

            server._finish(pending, self._failed_cell("crash"))
            await asyncio.sleep(0)
            assert not pending.future.done()
            assert list(server._queue) == [pending]
            assert pending.attempts == 2 and pending.retries_left == 0
            assert server.counters.crash_requeues == 1

            server._queue.clear()
            server._finish(pending, self._failed_cell("crash"))
            await asyncio.sleep(0)
            status, body = pending.future.result()
            assert status == 500 and body["kind"] == "crash"

        asyncio.run(scenario())

    @pytest.mark.parametrize("kind,status", [("exception", 500), ("timeout", 504)])
    def test_non_crash_failures_never_requeue(self, kind, status):
        async def scenario():
            server = LayoutServer(ServeConfig(crash_retries=5, prewarm=False))
            server._loop = asyncio.get_running_loop()
            server._wake = asyncio.Event()
            pending = self._pending(retries_left=5)
            server._finish(pending, self._failed_cell(kind))
            await asyncio.sleep(0)
            assert not server._queue
            got_status, body = pending.future.result()
            assert got_status == status and body["kind"] == kind

        asyncio.run(scenario())

    def test_crash_during_drain_fails_without_requeue(self):
        async def scenario():
            server = LayoutServer(ServeConfig(crash_retries=3, prewarm=False))
            server._loop = asyncio.get_running_loop()
            server._wake = asyncio.Event()
            server._draining = True
            pending = self._pending(retries_left=3)
            server._finish(pending, self._failed_cell("crash"))
            await asyncio.sleep(0)
            status, body = pending.future.result()
            assert status == 500 and body["kind"] == "crash"

        asyncio.run(scenario())


def _diamond_graph() -> DiGraph:
    g = DiGraph()
    for u, v in DIAMOND["edges"]:
        g.add_edge(u, v)
    return g


def _aco_spec():
    from repro.aco.params import ACOParams
    from repro.experiments.engine import MethodSpec

    return MethodSpec.ant_colony(ACOParams(n_ants=2, n_tours=2, seed=0))


class TestThreadEnvResolution:
    def test_invalid_thread_env_fails_startup(self, monkeypatch):
        # The walk-kernel thread count is resolved before the socket binds,
        # so a bad REPRO_ACO_THREADS is a startup error with the canonical
        # message, not a mid-batch surprise.
        monkeypatch.setenv("REPRO_ACO_THREADS", "bogus")
        server = LayoutServer(ServeConfig(prewarm=False, announce=False))
        with pytest.raises(
            ValidationError, match="REPRO_ACO_THREADS must be an integer"
        ):
            asyncio.run(server.run())
