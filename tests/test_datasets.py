"""Tests for the synthetic AT&T-like corpus."""

from __future__ import annotations

import pytest

from repro.datasets.corpus import (
    CORPUS_SEED,
    GROUP_VERTEX_COUNTS,
    TOTAL_GRAPHS,
    att_like_corpus,
    corpus_group_counts,
    iter_att_like_corpus,
)
from repro.graph.acyclicity import is_acyclic
from repro.utils.exceptions import ValidationError


class TestGroupStructure:
    def test_nineteen_groups(self):
        assert len(GROUP_VERTEX_COUNTS) == 19
        assert GROUP_VERTEX_COUNTS[0] == 10
        assert GROUP_VERTEX_COUNTS[-1] == 100
        assert all(b - a == 5 for a, b in zip(GROUP_VERTEX_COUNTS, GROUP_VERTEX_COUNTS[1:]))

    def test_group_counts_sum_to_total(self):
        counts = corpus_group_counts()
        assert sum(counts.values()) == TOTAL_GRAPHS == 1277
        assert set(counts) == set(GROUP_VERTEX_COUNTS)
        # As even as possible: values differ by at most one.
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_group_counts_custom_total(self):
        counts = corpus_group_counts(19)
        assert all(v == 1 for v in counts.values())

    def test_too_small_total_rejected(self):
        with pytest.raises(ValidationError):
            corpus_group_counts(5)


class TestCorpusGeneration:
    def test_subset_corpus_shape(self):
        corpus = att_like_corpus(graphs_per_group=2)
        assert len(corpus) == 2 * 19
        sizes = {entry.vertex_count for entry in corpus}
        assert sizes == set(GROUP_VERTEX_COUNTS)

    def test_graphs_match_their_group(self):
        corpus = att_like_corpus(graphs_per_group=1)
        for entry in corpus:
            assert entry.graph.n_vertices == entry.vertex_count
            assert is_acyclic(entry.graph)

    def test_deterministic(self):
        a = att_like_corpus(graphs_per_group=2, vertex_counts=(10, 20))
        b = att_like_corpus(graphs_per_group=2, vertex_counts=(10, 20))
        assert len(a) == len(b) == 4
        for x, y in zip(a, b):
            assert x.graph == y.graph
            assert x.seed == y.seed

    def test_names_are_stable_and_unique(self):
        corpus = att_like_corpus(graphs_per_group=3, vertex_counts=(15,))
        names = [entry.name for entry in corpus]
        assert len(set(names)) == 3
        assert names[0] == "att-like-n15-000"

    def test_different_corpus_seed_changes_graphs(self):
        a = att_like_corpus(graphs_per_group=1, vertex_counts=(30,), seed=CORPUS_SEED)
        b = att_like_corpus(graphs_per_group=1, vertex_counts=(30,), seed=CORPUS_SEED + 1)
        assert a[0].graph != b[0].graph

    def test_iterator_is_lazy_but_equivalent(self):
        lazy = list(iter_att_like_corpus(graphs_per_group=1, vertex_counts=(10, 25)))
        eager = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 25))
        assert [e.name for e in lazy] == [e.name for e in eager]

    def test_invalid_graphs_per_group(self):
        with pytest.raises(ValidationError):
            att_like_corpus(graphs_per_group=0)

    def test_full_group_sizes_without_materialising(self):
        # The first group of the full corpus has 68 graphs (1277 = 19*67 + 4).
        counts = corpus_group_counts()
        assert counts[10] == 68
        assert counts[100] == 67


class TestCustomVertexCounts:
    """The regression: ``graphs_per_group=None`` with non-paper groups used
    to crash with a raw ``KeyError`` instead of distributing the corpus over
    the requested groups."""

    def test_group_counts_over_requested_groups(self):
        counts = corpus_group_counts(vertex_counts=(12, 34))
        assert set(counts) == {12, 34}
        assert sum(counts.values()) == TOTAL_GRAPHS
        assert counts[12] - counts[34] in (0, 1)  # remainder to smaller groups

    def test_group_counts_are_order_invariant(self):
        # The remainder goes to the smallest groups however the groups were
        # listed, so the corpus shape does not depend on argument order.
        assert corpus_group_counts(vertex_counts=(20, 10)) == corpus_group_counts(
            vertex_counts=(10, 20)
        )
        assert corpus_group_counts(vertex_counts=(20, 10))[10] == 639

    def test_full_corpus_single_custom_group(self):
        # The KeyError regression, without materialising 1277 graphs: count
        # lazily and spot-check the first entries.
        import itertools

        stream = iter_att_like_corpus(vertex_counts=(12,))
        first = list(itertools.islice(stream, 3))
        assert [e.name for e in first] == [
            "att-like-n12-000",
            "att-like-n12-001",
            "att-like-n12-002",
        ]
        assert all(e.graph.n_vertices == 12 for e in first)
        remaining = sum(1 for _ in stream)
        assert 3 + remaining == TOTAL_GRAPHS

    def test_full_corpus_two_custom_groups_shape(self):
        counts = corpus_group_counts(vertex_counts=(10, 20))
        names = {}
        for entry in iter_att_like_corpus(vertex_counts=(10, 20)):
            names.setdefault(entry.vertex_count, 0)
            names[entry.vertex_count] += 1
        assert names == counts

    def test_explicit_graphs_per_group_with_custom_groups_unchanged(self):
        corpus = att_like_corpus(graphs_per_group=2, vertex_counts=(12, 37))
        assert [e.vertex_count for e in corpus] == [12, 12, 37, 37]

    def test_empty_vertex_counts_rejected(self):
        with pytest.raises(ValidationError):
            corpus_group_counts(vertex_counts=())
        with pytest.raises(ValidationError):
            att_like_corpus(graphs_per_group=1, vertex_counts=())

    def test_duplicate_vertex_counts_rejected_on_every_path(self):
        with pytest.raises(ValidationError):
            corpus_group_counts(vertex_counts=(10, 10, 20))
        # The sampled path must reject them too, not silently duplicate
        # graphs (and their names) in the corpus.
        with pytest.raises(ValidationError):
            att_like_corpus(graphs_per_group=1, vertex_counts=(10, 10))

    def test_total_smaller_than_group_count_rejected(self):
        with pytest.raises(ValidationError):
            corpus_group_counts(1, vertex_counts=(10, 20))
