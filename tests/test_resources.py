"""The resource governor: breakers, ladder, cost model, memory caps.

Unit-level coverage for :mod:`repro.utils.resources` — the circuit-breaker
state machine under a fake clock, the governor's once-per-transition
logging, the pack cost model's monotonicity, and the ``RLIMIT_AS`` arming
helper (exercised in a real subprocess on Linux).  The integration story
(chaos-driven degradation with bit-identical results) lives in
``test_chaos_resources.py``.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.aco.problem import LayeringProblem
from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag
from repro.utils import resources
from repro.utils.pool import _death_kind


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------------- #
# the circuit breaker
# --------------------------------------------------------------------------- #


class TestCircuitBreaker:
    def make(self, threshold: int = 3, cooldown: float = 30.0):
        clock = FakeClock()
        breaker = resources.CircuitBreaker(
            "test", threshold=threshold, cooldown_s=cooldown, clock=clock
        )
        return breaker, clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_only_on_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        assert breaker.record_failure("one") is False
        assert breaker.record_failure("two") is False
        assert breaker.record_failure("three") is True  # the opening call
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two *consecutive* failures

    def test_cooldown_admits_exactly_one_half_open_probe(self):
        breaker, clock = self.make(threshold=1, cooldown=30.0)
        breaker.record_failure("boom")
        assert not breaker.allow()
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # a second caller is still fenced off

    def test_probe_success_closes_and_reports_recovery(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.record_success() is True  # the recovery transition
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_without_a_new_trip(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.trips == 1
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.record_failure("still broken") is False
        assert breaker.state == "open"
        assert breaker.trips == 1  # no duplicate degradation log
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # a fresh cooldown grants a fresh probe

    def test_trip_forces_open(self):
        breaker, _ = self.make(threshold=3)
        breaker.trip("explicit")
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.snapshot()["detail"] == "explicit"

    def test_reset_restores_pristine_state(self):
        breaker, _ = self.make(threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed" and breaker.trips == 0 and breaker.allow()

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="threshold"):
            resources.CircuitBreaker("bad", threshold=0)


# --------------------------------------------------------------------------- #
# the governor
# --------------------------------------------------------------------------- #


class TestResourceGovernor:
    def test_ladder_has_a_breaker_per_rung(self):
        governor = resources.ResourceGovernor()
        for name in resources.LADDER:
            assert governor.allow(name)
        assert governor.degraded() == []

    def test_degradation_is_logged_exactly_once(self, capsys):
        governor = resources.ResourceGovernor(clock=FakeClock())
        for _ in range(resources.LADDER["native-kernel"].threshold):
            governor.record_failure("native-kernel", "segfault")
        err = capsys.readouterr().err
        assert err.count("repro: resource governor:") == 1
        assert "NumPy lockstep" in err
        assert governor.degraded() == ["native-kernel"]
        assert len(governor.events) == 1
        # Further failures while open stay silent.
        governor.record_failure("native-kernel", "again")
        assert capsys.readouterr().err == ""
        assert len(governor.events) == 1

    def test_recovery_is_logged_once(self, capsys):
        clock = FakeClock()
        governor = resources.ResourceGovernor(clock=clock)
        governor.record_failure("cache-disk", "ENOSPC")
        clock.advance(resources.LADDER["cache-disk"].cooldown_s)
        assert governor.allow("cache-disk")  # the probe
        governor.record_success("cache-disk")
        err = capsys.readouterr().err
        assert "restored" in err
        assert governor.degraded() == []
        assert [e["state"] for e in governor.events] == ["open", "closed"]

    def test_snapshot_shape(self):
        governor = resources.ResourceGovernor()
        snap = governor.snapshot()
        assert set(snap) == set(resources.LADDER)
        for entry in snap.values():
            assert set(entry) == {"state", "consecutive_failures", "trips", "detail"}

    def test_process_global_governor_is_a_singleton(self):
        assert resources.governor() is resources.governor()

    def test_reset_clears_trips_and_events(self):
        governor = resources.ResourceGovernor()
        governor.trip("batched")
        governor.reset()
        assert governor.degraded() == [] and governor.events == []


# --------------------------------------------------------------------------- #
# the cost model
# --------------------------------------------------------------------------- #


class TestCostModel:
    def test_empty_pack_is_free(self):
        estimate = resources.estimate_pack_cost([])
        assert estimate.bytes == 0 and estimate.est_wall == 0.0

    def test_costs_grow_with_the_pack(self):
        graphs = [att_like_dag(20, seed=s) for s in range(4)]
        one = resources.estimate_pack_cost(graphs[:1])
        four = resources.estimate_pack_cost(graphs)
        assert four.bytes > one.bytes
        assert four.est_wall > one.est_wall

    def test_colonies_and_ants_scale_the_estimate(self):
        graphs = [att_like_dag(20, seed=0)]
        base = resources.estimate_pack_cost(graphs)
        more = resources.estimate_pack_cost(graphs, n_colonies=4, n_ants=20)
        assert more.bytes > base.bytes and more.est_wall > base.est_wall

    def test_alpha_not_one_prices_the_tau_power_temporary(self):
        graphs = [att_like_dag(20, seed=0)]
        plain = resources.estimate_pack_cost(graphs, alpha=1.0)
        powered = resources.estimate_pack_cost(graphs, alpha=1.5)
        assert powered.bytes > plain.bytes

    def test_layering_problem_uses_true_layer_count(self):
        graph = att_like_dag(20, seed=0)
        problem = LayeringProblem.from_graph(graph)
        # The built problem knows its real (much smaller) column count, so
        # its estimate is tighter than the raw graph's V+1 upper bound.
        from_problem = resources.estimate_pack_cost([problem])
        from_graph = resources.estimate_pack_cost([graph])
        assert 0 < from_problem.bytes <= from_graph.bytes

    def test_as_dict_is_json_ready(self):
        estimate = resources.estimate_pack_cost([DiGraph(edges=[(0, 1)])])
        payload = estimate.as_dict()
        assert set(payload) == {"bytes", "est_wall"}
        assert isinstance(payload["bytes"], int)


# --------------------------------------------------------------------------- #
# RLIMIT_AS arming
# --------------------------------------------------------------------------- #


class TestMemoryLimit:
    def test_non_positive_budget_is_a_no_op(self):
        assert resources.apply_memory_limit(0) is None
        assert resources.apply_memory_limit(-1) is None

    @pytest.mark.skipif(sys.platform != "linux", reason="RLIMIT_AS semantics")
    def test_armed_limit_turns_overallocation_into_memory_error(self):
        script = (
            "from repro.utils import resources\n"
            "limit = resources.apply_memory_limit(\n"
            "    64 * 1024 * 1024, slack_bytes=32 * 1024 * 1024)\n"
            "assert limit is not None\n"
            "try:\n"
            "    block = bytearray(512 * 1024 * 1024)\n"
            "except MemoryError:\n"
            "    print('OOM-LABELLED')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OOM-LABELLED" in proc.stdout


class TestDeathKind:
    """Signal-exit classification for supervised workers."""

    def test_unarmed_budget_never_claims_oom(self):
        import signal as signal_module

        assert _death_kind(-signal_module.SIGKILL, None) == "crash"

    def test_armed_budget_labels_fatal_signals_oom(self):
        import signal as signal_module

        budget = 1 << 20
        assert _death_kind(-signal_module.SIGKILL, budget) == "oom"
        assert _death_kind(-signal_module.SIGSEGV, budget) == "oom"

    def test_clean_or_unknown_exits_stay_crash(self):
        assert _death_kind(1, 1 << 20) == "crash"
        assert _death_kind(None, 1 << 20) == "crash"
        assert _death_kind(-99, 1 << 20) == "crash"
