"""Tests for a single ant's walk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.ant import Ant, AntSolution
from repro.aco.heuristic import LayerWidths, evaluate_assignment
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem
from repro.graph.generators import att_like_dag, gnp_dag
from repro.utils.rng import as_generator


def make_setup(graph, params=None):
    params = params or ACOParams()
    problem = LayeringProblem.from_graph(graph, nd_width=params.nd_width)
    pheromone = PheromoneMatrix(problem.n_vertices, problem.n_layers, params.tau0)
    widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
    return problem, pheromone, widths, params


class TestWalkValidity:
    @pytest.mark.parametrize("seed", range(4))
    def test_walk_produces_valid_layering(self, seed):
        g = att_like_dag(30, seed=seed)
        problem, pheromone, widths, params = make_setup(g)
        ant = Ant(0, problem, params)
        solution = ant.perform_walk(
            problem.initial_assignment, widths, pheromone, as_generator(seed)
        )
        layering = problem.assignment_to_layering(solution.assignment, normalize=True)
        layering.validate(g)

    def test_walk_does_not_mutate_base(self):
        g = att_like_dag(20, seed=1)
        problem, pheromone, widths, params = make_setup(g)
        base = problem.initial_assignment.copy()
        base_widths_real = widths.real.copy()
        ant = Ant(0, problem, params)
        ant.perform_walk(problem.initial_assignment, widths, pheromone, as_generator(0))
        assert np.array_equal(problem.initial_assignment, base)
        assert np.allclose(widths.real, base_widths_real)

    def test_score_matches_reference_evaluation(self):
        g = gnp_dag(20, 0.2, seed=2)
        problem, pheromone, widths, params = make_setup(g)
        ant = Ant(3, problem, params)
        solution = ant.perform_walk(
            problem.initial_assignment, widths, pheromone, as_generator(5)
        )
        reference = evaluate_assignment(problem, solution.assignment)
        assert solution.score.objective == pytest.approx(reference.objective)
        assert solution.score.height == reference.height
        assert solution.ant_id == 3
        assert isinstance(solution, AntSolution)
        assert solution.objective == solution.score.objective


class TestDeterminismAndSelection:
    def test_same_rng_same_walk(self):
        g = att_like_dag(25, seed=3)
        problem, pheromone, widths, params = make_setup(g)
        ant = Ant(0, problem, params)
        s1 = ant.perform_walk(problem.initial_assignment, widths, pheromone, as_generator(7))
        s2 = ant.perform_walk(problem.initial_assignment, widths, pheromone, as_generator(7))
        assert np.array_equal(s1.assignment, s2.assignment)

    def test_roulette_selection_also_valid(self):
        g = att_like_dag(25, seed=4)
        params = ACOParams(selection="roulette")
        problem, pheromone, widths, _ = make_setup(g, params)
        ant = Ant(0, problem, params)
        solution = ant.perform_walk(
            problem.initial_assignment, widths, pheromone, as_generator(1)
        )
        layering = problem.assignment_to_layering(solution.assignment)
        layering.validate(g)

    def test_alpha_zero_is_pure_greedy(self):
        # With alpha = 0 the pheromone has no influence; the walk still works.
        g = att_like_dag(20, seed=5)
        params = ACOParams(alpha=0.0, beta=3.0)
        problem, pheromone, widths, _ = make_setup(g, params)
        # Distort the pheromone heavily; the result must not change.
        pheromone.values[:, 1:] = np.linspace(1, 100, pheromone.values[:, 1:].size).reshape(
            pheromone.values[:, 1:].shape
        )
        ant = Ant(0, problem, params)
        s1 = ant.perform_walk(problem.initial_assignment, widths, pheromone, as_generator(3))
        uniform = PheromoneMatrix(problem.n_vertices, problem.n_layers, 1.0)
        s2 = ant.perform_walk(problem.initial_assignment, widths, uniform, as_generator(3))
        assert np.array_equal(s1.assignment, s2.assignment)


class TestChooseLayer:
    def test_single_layer_span_short_circuits(self, diamond):
        problem, pheromone, widths, params = make_setup(diamond)
        ant = Ant(0, problem, params)
        assert ant.choose_layer(0, 3, 3, 3, widths, pheromone, as_generator(0)) == 3

    def test_choice_within_span(self):
        g = att_like_dag(20, seed=6)
        problem, pheromone, widths, params = make_setup(g)
        ant = Ant(0, problem, params)
        rng = as_generator(0)
        assignment = problem.initial_assignment
        for v in range(problem.n_vertices):
            lo, hi = problem.layer_span(assignment, v)
            chosen = ant.choose_layer(v, lo, hi, int(assignment[v]), widths, pheromone, rng)
            assert lo <= chosen <= hi

    def test_pheromone_bias_with_huge_alpha(self):
        # With a huge alpha and beta=0, the choice follows the pheromone argmax.
        g = att_like_dag(15, seed=7)
        params = ACOParams(alpha=5.0, beta=0.0)
        problem, pheromone, widths, _ = make_setup(g, params)
        ant = Ant(0, problem, params)
        assignment = problem.initial_assignment
        v = 0
        lo, hi = problem.layer_span(assignment, v)
        if hi > lo:
            target = hi
            pheromone.values[v, target] = 50.0
            chosen = ant.choose_layer(v, lo, hi, int(assignment[v]), widths, pheromone, as_generator(0))
            assert chosen == target
