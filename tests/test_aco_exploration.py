"""Tests for the pseudo-random proportional rule (q0) and the normalized edge density."""

from __future__ import annotations

import pytest

from repro.aco.ant import Ant
from repro.aco.heuristic import LayerWidths
from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem
from repro.graph.generators import att_like_dag
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import edge_density, edge_density_normalized
from repro.utils.exceptions import ValidationError
from repro.utils.rng import as_generator


class TestQ0Parameter:
    def test_default_is_none(self):
        assert ACOParams().q0 is None

    def test_effective_value_follows_selection(self):
        assert ACOParams(selection="argmax").exploitation_probability == 1.0
        assert ACOParams(selection="roulette").exploitation_probability == 0.0
        assert ACOParams(q0=0.3).exploitation_probability == pytest.approx(0.3)

    def test_invalid_q0_rejected(self):
        with pytest.raises(ValidationError):
            ACOParams(q0=1.5)
        with pytest.raises(ValidationError):
            ACOParams(q0=-0.1)

    def test_boundary_values_accepted(self):
        ACOParams(q0=0.0)
        ACOParams(q0=1.0)

    @pytest.mark.parametrize("q0", [0.0, 0.5, 1.0])
    def test_walks_valid_for_any_q0(self, q0):
        g = att_like_dag(25, seed=1)
        params = ACOParams(q0=q0, n_ants=2, n_tours=2, seed=0)
        layering = aco_layering(g, params)
        layering.validate(g)

    def test_q0_one_matches_pure_argmax(self):
        g = att_like_dag(25, seed=2)
        problem = LayeringProblem.from_graph(g)
        pheromone = PheromoneMatrix(problem.n_vertices, problem.n_layers, 1.0)
        widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
        argmax_ant = Ant(0, problem, ACOParams(selection="argmax"))
        q1_ant = Ant(0, problem, ACOParams(q0=1.0, selection="roulette"))
        s1 = argmax_ant.perform_walk(
            problem.initial_assignment, widths, pheromone, as_generator(4)
        )
        s2 = q1_ant.perform_walk(
            problem.initial_assignment, widths, pheromone, as_generator(4)
        )
        assert (s1.assignment == s2.assignment).all()

    def test_mixed_q0_deterministic_given_seed(self):
        g = att_like_dag(20, seed=3)
        params = ACOParams(q0=0.5, n_ants=2, n_tours=2, seed=9)
        assert aco_layering(g, params) == aco_layering(g, params)


class TestNormalizedEdgeDensity:
    def test_matches_raw_density_scaled(self):
        g = att_like_dag(40, seed=5)
        lay = longest_path_layering(g)
        assert edge_density_normalized(g, lay) == pytest.approx(
            edge_density(g, lay) / g.n_vertices
        )

    def test_paper_scale(self):
        # Values land on the paper's 0-2 axis for corpus-like graphs.
        for seed in range(3):
            g = att_like_dag(60, seed=seed)
            value = edge_density_normalized(g, longest_path_layering(g))
            assert 0.0 <= value <= 2.0

    def test_empty_graph(self):
        from repro.graph.digraph import DiGraph

        assert edge_density_normalized(DiGraph(), Layering({})) == 0.0
