"""Tests for topological sorting, cycle detection and cycle removal."""

from __future__ import annotations

import pytest

from repro.graph.acyclicity import (
    feedback_arc_set,
    find_cycle,
    is_acyclic,
    longest_path_lengths,
    make_acyclic,
    topological_sort,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_dag
from repro.utils.exceptions import CycleError


def cyclic_triangle() -> DiGraph:
    return DiGraph(edges=[(1, 2), (2, 3), (3, 1)])


class TestTopologicalSort:
    def test_respects_edges(self, diamond):
        order = topological_sort(diamond)
        pos = {v: i for i, v in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_all_vertices_present(self, diamond):
        assert set(topological_sort(diamond)) == set(diamond.vertices())

    def test_empty_graph(self):
        assert topological_sort(DiGraph()) == []

    def test_cycle_raises_with_witness(self):
        with pytest.raises(CycleError) as exc_info:
            topological_sort(cyclic_triangle())
        cycle = exc_info.value.cycle
        assert cycle is not None and len(cycle) == 3

    def test_random_dags_sortable(self):
        for seed in range(5):
            g = gnp_dag(30, 0.15, seed=seed)
            order = topological_sort(g)
            pos = {v: i for i, v in enumerate(order)}
            assert all(pos[u] < pos[v] for u, v in g.edges())


class TestCycleDetection:
    def test_is_acyclic_true(self, diamond):
        assert is_acyclic(diamond)

    def test_is_acyclic_false(self):
        assert not is_acyclic(cyclic_triangle())

    def test_find_cycle_none_for_dag(self, diamond):
        assert find_cycle(diamond) is None

    def test_find_cycle_returns_real_cycle(self):
        g = DiGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 1), (0, 4)])
        cycle = find_cycle(g)
        assert cycle is not None
        # consecutive pairs (and the wrap-around pair) must be edges
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert g.has_edge(a, b)

    def test_self_loop_cycle(self):
        g = DiGraph(allow_self_loops=True)
        g.add_edge("a", "a")
        assert not is_acyclic(g)


class TestFeedbackArcSet:
    def test_empty_for_dag(self, diamond):
        assert feedback_arc_set(diamond) == []

    def test_breaks_all_cycles(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4), (4, 2)])
        fas = feedback_arc_set(g)
        assert fas
        pruned = g.copy()
        for u, v in fas:
            pruned.remove_edge(u, v)
        assert is_acyclic(pruned)

    def test_fas_edges_are_graph_edges(self):
        g = cyclic_triangle()
        for u, v in feedback_arc_set(g):
            assert g.has_edge(u, v)


class TestMakeAcyclic:
    def test_dag_unchanged(self, diamond):
        acyclic, reversed_edges = make_acyclic(diamond)
        assert reversed_edges == []
        assert acyclic == diamond

    def test_result_is_acyclic(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4), (4, 2), (0, 1)])
        acyclic, reversed_edges = make_acyclic(g)
        assert is_acyclic(acyclic)
        assert reversed_edges
        assert acyclic.n_vertices == g.n_vertices

    def test_reversed_edges_were_original_edges(self):
        g = cyclic_triangle()
        _, reversed_edges = make_acyclic(g)
        for u, v in reversed_edges:
            assert g.has_edge(u, v)

    def test_attributes_preserved(self):
        g = cyclic_triangle()
        g.set_vertex_width(1, 5.0)
        acyclic, _ = make_acyclic(g)
        assert acyclic.vertex_width(1) == 5.0


class TestLongestPathLengths:
    def test_path_graph(self, path5):
        dist = longest_path_lengths(path5, from_sinks=True)
        assert dist == {0: 4, 1: 3, 2: 2, 3: 1, 4: 0}

    def test_from_sources(self, path5):
        dist = longest_path_lengths(path5, from_sinks=False)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_diamond(self, diamond):
        dist = longest_path_lengths(diamond)
        assert dist["d"] == 0
        assert dist["b"] == dist["c"] == 1
        assert dist["a"] == 2

    def test_cycle_raises(self):
        with pytest.raises(CycleError):
            longest_path_lengths(cyclic_triangle())
