"""Tests for the experiment runner and aggregation."""

from __future__ import annotations

import pytest

from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus
from repro.experiments.runner import (
    AlgorithmResult,
    ComparisonResult,
    default_algorithms,
    run_comparison,
    run_on_graph,
)
from repro.graph.generators import att_like_dag
from repro.layering.longest_path import longest_path_layering
from repro.utils.exceptions import ValidationError

SMALL_CORPUS = att_like_corpus(graphs_per_group=2, vertex_counts=(10, 20))
FAST_ACO = ACOParams(n_ants=2, n_tours=2, seed=0)


class TestDefaultAlgorithms:
    def test_contains_paper_algorithms(self):
        algs = default_algorithms(aco_params=FAST_ACO)
        assert set(algs) == {"LPL", "LPL+PL", "MinWidth", "MinWidth+PL", "AntColony"}

    def test_without_aco(self):
        algs = default_algorithms(include_aco=False)
        assert "AntColony" not in algs
        assert len(algs) == 4

    def test_all_produce_valid_layerings(self):
        g = att_like_dag(20, seed=1)
        for name, algorithm in default_algorithms(aco_params=FAST_ACO).items():
            algorithm(g).validate(g)


class TestRunOnGraph:
    def test_fields(self):
        g = att_like_dag(15, seed=2)
        result = run_on_graph("LPL", longest_path_layering, g, graph_name="x", nd_width=1.0)
        assert isinstance(result, AlgorithmResult)
        assert result.algorithm == "LPL"
        assert result.graph_name == "x"
        assert result.vertex_count == 15
        assert result.running_time >= 0
        assert result.metrics.height >= 1

    def test_metric_lookup(self):
        g = att_like_dag(15, seed=3)
        result = run_on_graph("LPL", longest_path_layering, g)
        assert result.value("height") == result.metrics.height
        assert result.value("running_time") == result.running_time
        with pytest.raises(ValidationError):
            result.value("nonsense")


class TestRunComparison:
    def test_result_shape(self):
        algorithms = default_algorithms(include_aco=False)
        comparison = run_comparison(SMALL_CORPUS, algorithms)
        assert isinstance(comparison, ComparisonResult)
        assert len(comparison.results) == len(SMALL_CORPUS) * len(algorithms)
        assert comparison.vertex_counts == [10, 20]
        assert comparison.algorithms == list(algorithms)

    def test_series_and_group_means(self):
        comparison = run_comparison(SMALL_CORPUS, default_algorithms(include_aco=False))
        series = comparison.series("LPL", "height")
        assert set(series) == {10, 20}
        assert all(v >= 1 for v in series.values())
        assert comparison.group_mean("LPL", 10, "height") == series[10]

    def test_all_series_covers_all_algorithms(self):
        comparison = run_comparison(SMALL_CORPUS, default_algorithms(include_aco=False))
        everything = comparison.all_series("width_including_dummies")
        assert set(everything) == set(comparison.algorithms)

    def test_missing_group_raises(self):
        comparison = run_comparison(SMALL_CORPUS, default_algorithms(include_aco=False))
        with pytest.raises(ValidationError):
            comparison.group_mean("LPL", 95, "height")

    def test_empty_algorithms_rejected(self):
        with pytest.raises(ValidationError):
            run_comparison(SMALL_CORPUS, {})

    def test_custom_algorithm_mapping(self):
        comparison = run_comparison(SMALL_CORPUS, {"OnlyLPL": longest_path_layering})
        assert comparison.algorithms == ["OnlyLPL"]

    def test_manually_built_results_stay_live_across_mutation(self):
        # Pre-streaming behaviour: a hand-maintained results list is
        # recomputed on every accessor call, so appends between calls are
        # always reflected.
        base = run_comparison(SMALL_CORPUS[:1], {"OnlyLPL": longest_path_layering})
        (row,) = base.results
        manual = ComparisonResult(results=[row])
        assert manual.group_mean("OnlyLPL", 10, "height") == row.metrics.height
        manual.results.append(
            AlgorithmResult("Other", "g2", 20, row.metrics, 0.5)
        )
        assert manual.algorithms == ["OnlyLPL", "Other"]
        assert manual.group_mean("Other", 20, "height") == row.metrics.height

    def test_lpl_height_never_above_minwidth_height(self):
        # Structural sanity of the aggregation: LPL gives minimum height, so
        # its group means can never exceed MinWidth's.
        comparison = run_comparison(SMALL_CORPUS, default_algorithms(include_aco=False))
        for vc in comparison.vertex_counts:
            assert comparison.group_mean("LPL", vc, "height") <= comparison.group_mean(
                "MinWidth", vc, "height"
            )
