"""Tests for graph transforms (relabeling, SCCs, condensation, transitive closure/reduction)."""

from __future__ import annotations

import pytest

from repro.graph.acyclicity import is_acyclic
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_dag
from repro.graph.transforms import (
    condensation,
    induced_subgraph,
    relabel,
    reverse,
    strongly_connected_components,
    to_integer_labels,
    transitive_closure,
    transitive_reduction,
    union,
)
from repro.utils.exceptions import GraphError


class TestRelabel:
    def test_with_mapping(self, diamond):
        out = relabel(diamond, {"a": 1, "b": 2, "c": 3, "d": 4})
        assert out.has_edge(1, 2)
        assert out.has_edge(3, 4)

    def test_with_callable(self, diamond):
        out = relabel(diamond, lambda v: v.upper())
        assert out.has_edge("A", "B")

    def test_partial_mapping_keeps_other_names(self, diamond):
        out = relabel(diamond, {"a": "root"})
        assert out.has_edge("root", "b")

    def test_non_injective_raises(self, diamond):
        with pytest.raises(GraphError):
            relabel(diamond, {"a": "x", "b": "x"})

    def test_attributes_survive(self):
        g = DiGraph()
        g.add_vertex("v", width=2.5, label="lbl")
        out = relabel(g, {"v": 0})
        assert out.vertex_width(0) == 2.5
        assert out.vertex_label(0) == "lbl"

    def test_to_integer_labels(self, diamond):
        out, mapping = to_integer_labels(diamond)
        assert sorted(out.vertices()) == [0, 1, 2, 3]
        assert set(mapping) == {"a", "b", "c", "d"}
        assert out.n_edges == diamond.n_edges


class TestSCC:
    def test_dag_has_singleton_components(self, diamond):
        comps = strongly_connected_components(diamond)
        assert len(comps) == 4
        assert all(len(c) == 1 for c in comps)

    def test_cycle_is_one_component(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4)])
        comps = strongly_connected_components(g)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 3]

    def test_two_cycles(self):
        g = DiGraph(edges=[(1, 2), (2, 1), (3, 4), (4, 3), (2, 3)])
        comps = {frozenset(c) for c in strongly_connected_components(g)}
        assert frozenset({1, 2}) in comps
        assert frozenset({3, 4}) in comps


class TestCondensation:
    def test_condensation_is_acyclic(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (5, 4)])
        dag, comp_id = condensation(g)
        assert is_acyclic(dag)
        assert comp_id[1] == comp_id[2] == comp_id[3]
        assert comp_id[4] == comp_id[5]
        assert comp_id[1] != comp_id[4]

    def test_condensation_width_is_sum(self):
        g = DiGraph(edges=[(1, 2), (2, 1)])
        g.set_vertex_width(1, 2.0)
        g.set_vertex_width(2, 3.0)
        dag, comp_id = condensation(g)
        assert dag.vertex_width(comp_id[1]) == pytest.approx(5.0)

    def test_condensation_of_dag_is_isomorphic(self, diamond):
        dag, comp_id = condensation(diamond)
        assert dag.n_vertices == diamond.n_vertices
        assert dag.n_edges == diamond.n_edges


class TestTransitiveClosureReduction:
    def test_closure_of_path(self, path5):
        closure = transitive_closure(path5)
        assert closure.n_edges == 10  # all i < j pairs
        assert closure.has_edge(0, 4)

    def test_reduction_of_closure_is_path(self, path5):
        closure = transitive_closure(path5)
        reduced = transitive_reduction(closure)
        assert set(reduced.edges()) == set(path5.edges())

    def test_reduction_removes_shortcut(self, long_edge_graph):
        reduced = transitive_reduction(long_edge_graph)
        assert not reduced.has_edge(0, 3)
        assert reduced.n_edges == 3

    def test_reduction_idempotent(self):
        g = gnp_dag(15, 0.3, seed=0)
        once = transitive_reduction(g)
        twice = transitive_reduction(once)
        assert set(once.edges()) == set(twice.edges())

    def test_closure_contains_original_edges(self):
        g = gnp_dag(12, 0.2, seed=1)
        closure = transitive_closure(g)
        for u, v in g.edges():
            assert closure.has_edge(u, v)


class TestMisc:
    def test_reverse_function(self, diamond):
        assert reverse(diamond).has_edge("d", "b")

    def test_induced_subgraph(self, diamond):
        sub = induced_subgraph(diamond, ["a", "b"])
        assert set(sub.vertices()) == {"a", "b"}

    def test_union(self):
        a = DiGraph(edges=[(1, 2)])
        b = DiGraph(edges=[(2, 3)])
        u = union(a, b)
        assert u.has_edge(1, 2) and u.has_edge(2, 3)
        assert u.n_vertices == 3
