"""Stress test: concurrent engines sharing one ``--cache-dir``.

A server replica and a CLI run (or two server replicas) may hammer the same
cache directory simultaneously — puts, gets, ``cache prune`` maintenance and
``corrupt/`` quarantine moves all racing.  Every worker below performs a
randomized mix of those operations against one shared directory; the
invariant is that *no* operation ever raises: every race (entry pruned
mid-read, quarantine dir swept mid-move, shard rmdir'd mid-write) must
degrade to a miss or a no-op, never to an exception or a hang.
"""

from __future__ import annotations

import multiprocessing
import random
import sys

import pytest

from repro.experiments.cache import CachedCell, ResultCache
from repro.layering.metrics import LayeringMetrics

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method required"
)

#: Deliberately tiny key space so processes collide on the same entries.
KEYS = [f"{i:02x}" + "ab" * 31 for i in range(16)]


def _metrics(i: int) -> LayeringMetrics:
    return LayeringMetrics(
        n_vertices=10 + i,
        n_edges=20 + i,
        height=4,
        width_including_dummies=3.0,
        width_excluding_dummies=3.0,
        dummy_vertex_count=2,
        edge_density=5,
        objective=1.0 / (7.0 + i),
        nd_width=1.0,
    )


def _hammer(directory: str, seed: int, iterations: int, errors) -> None:
    """One worker's operation mix; any exception is reported to the parent."""
    rng = random.Random(seed)
    cache = ResultCache(directory, memory_entries=4)
    try:
        for step in range(iterations):
            key = rng.choice(KEYS)
            op = rng.randrange(6)
            if op == 0:
                cache.put(key, _metrics(step % 7), running_time=0.01)
            elif op == 1:
                hit = cache.get(key)
                assert hit is None or isinstance(hit, CachedCell)
            elif op == 2:
                # Garble the entry on disk so the next reader quarantines it.
                path = cache.path_for(key)
                try:
                    path.write_bytes(b"\x00torn\x00")
                except OSError:
                    pass
                cache.get(key)
            elif op == 3:
                cache.prune(older_than_seconds=0.0)
            elif op == 4:
                cache.prune(max_size_bytes=512)
            else:
                cache.stats()
    except BaseException as exc:  # pragma: no cover - the failure we hunt
        errors.put(f"worker {seed}: {type(exc).__name__}: {exc}")


class TestConcurrentCacheMaintenance:
    def test_put_get_prune_quarantine_races_never_raise(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        errors = ctx.Queue()
        workers = [
            ctx.Process(
                target=_hammer, args=(str(tmp_path), seed, 150, errors)
            )
            for seed in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert not worker.is_alive(), "stress worker hung"
            assert worker.exitcode == 0
        failures = []
        while not errors.empty():
            failures.append(errors.get())
        assert failures == []
        # The cache must still be fully functional afterwards.
        survivor = ResultCache(tmp_path)
        survivor.put(KEYS[0], _metrics(0), running_time=0.5)
        hit = survivor.get(KEYS[0])
        assert hit is not None and hit.running_time == 0.5

    def test_quarantine_tolerates_concurrent_sweep(self, tmp_path, monkeypatch):
        """Quarantine retries when ``corrupt/`` is rmdir'd between mkdir and move."""
        import os as _os

        cache = ResultCache(tmp_path, memory_entries=0)
        cache.put(KEYS[1], _metrics(1), running_time=0.1)
        path = cache.path_for(KEYS[1])
        path.write_bytes(b"garbage")

        real_replace = _os.replace
        fired = {"n": 0}

        def racing_replace(src, dst):
            # First attempt: simulate a concurrent `prune --older-than`
            # sweeping the quarantine directory after our mkdir.
            if fired["n"] == 0 and str(dst).startswith(str(cache.quarantine_dir)):
                fired["n"] += 1
                cache.quarantine_dir.rmdir()
            return real_replace(src, dst)

        monkeypatch.setattr(_os, "replace", racing_replace)
        assert cache.get(KEYS[1]) is None  # miss, not an exception
        monkeypatch.undo()
        assert not path.exists()
        assert (cache.quarantine_dir / path.name).exists()

    def test_quarantine_source_stolen_by_other_process(self, tmp_path, monkeypatch):
        """ENOENT on the source means another reader won; silently stand down."""
        import os as _os

        cache = ResultCache(tmp_path, memory_entries=0)
        cache.put(KEYS[2], _metrics(2), running_time=0.1)
        path = cache.path_for(KEYS[2])
        path.write_bytes(b"garbage")

        real_replace = _os.replace

        def stealing_replace(src, dst):
            if str(dst).startswith(str(cache.quarantine_dir)):
                try:
                    path.unlink()  # the "other process" quarantines first
                except OSError:
                    pass
            return real_replace(src, dst)

        monkeypatch.setattr(_os, "replace", stealing_replace)
        assert cache.get(KEYS[2]) is None
        monkeypatch.undo()
        assert cache.stats().quarantined == 0
