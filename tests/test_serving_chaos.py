"""Chaos acceptance for the layout service.

The acceptance bar from the serving PR: with ``REPRO_CHAOS`` kill9/hang
rules targeting specific request cells, the *unaffected* concurrent
requests return metric tables byte-identical to a fault-free run, and the
*faulted* requests get correctly-labelled error responses (``500`` with
the injected-kill detail; ``504``/``kind=timeout`` for the hang cut by the
request deadline).  Faults ride the normal engine fault plane — the
request path *is* the engine path — so nothing serving-specific needs its
own injection hooks.
"""

from __future__ import annotations

import concurrent.futures
import json
import os

import pytest

from repro.serving import ServeConfig
from repro.utils import chaos

from serving_harness import ServerHarness, layer_payload

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="fault injection is POSIX-only"
)


@pytest.fixture(autouse=True)
def _chaos_hygiene(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SHM_MANIFEST_DIR", str(tmp_path / "shm-manifests"))
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    monkeypatch.delenv(chaos.FAIL_CELLS_ENV, raising=False)
    chaos.reset_hangs()
    yield
    # Unblock the watchdog thread an expired deadline abandoned mid-hang.
    chaos.release_hangs()


def _chain_graph(n: int) -> dict:
    edges = [[v, v + 1] for v in range(n - 1)]
    edges.append([0, n - 1])
    return {"edges": edges}


#: Four distinct unaffected requests plus the two fault victims.
OK_NAMES = [f"ok-{i}" for i in range(4)]


def _payloads() -> list[dict]:
    payloads = [
        layer_payload(name, graph=_chain_graph(5 + i), deadline_s=30.0)
        for i, name in enumerate(OK_NAMES)
    ]
    payloads.append(layer_payload("victim-kill", graph=_chain_graph(9), deadline_s=30.0))
    # The hang victim's own small budget becomes the batch's engine
    # deadline, so the 60 s hang is cut after ~1 s without stalling the
    # generously-budgeted batch-mates past their own deadlines.
    payloads.append(layer_payload("victim-hang", graph=_chain_graph(10), deadline_s=1.0))
    return payloads


def _run_all(harness: ServerHarness) -> dict[str, tuple[int, dict]]:
    payloads = _payloads()
    with concurrent.futures.ThreadPoolExecutor(max_workers=len(payloads)) as pool:
        outcomes = list(pool.map(harness.layer, payloads))
    return {p["name"]: outcome for p, outcome in zip(payloads, outcomes)}


def _metric_table(results: dict[str, tuple[int, dict]]) -> dict[str, str]:
    """The deterministic per-request table: metrics only, byte-serialised."""
    return {
        name: json.dumps(results[name][1]["metrics"], sort_keys=True)
        for name in OK_NAMES
    }


class TestServingUnderChaos:
    def test_unaffected_requests_identical_faulted_requests_labelled(
        self, monkeypatch
    ):
        config = ServeConfig(batch_window_s=0.1, prewarm=False)

        # Fault-free reference pass.
        with ServerHarness(config) as clean:
            reference = _run_all(clean)
        assert all(reference[name][0] == 200 for name in OK_NAMES)
        reference_table = _metric_table(reference)

        # Chaotic pass: SIGKILL one victim's cell, hang the other's.
        monkeypatch.setenv(
            chaos.CHAOS_ENV,
            "kill9:AntColony:victim-kill,hang@60:AntColony:victim-hang",
        )
        with ServerHarness(config) as chaotic:
            results = _run_all(chaotic)

        # Unaffected concurrent requests: same status, byte-identical tables.
        assert all(results[name][0] == 200 for name in OK_NAMES)
        assert _metric_table(results) == reference_table
        for name in OK_NAMES:
            assert results[name][1]["cached"] is False  # fresh compute, not cache luck

        # The killed cell answers 500 with the injected-kill label (kill9
        # degrades to a raise outside supervised pool workers).
        status, body = results["victim-kill"]
        assert status == 500
        assert body["error"] == "cell failed" and body["kind"] == "exception"
        assert "kill9" in body["detail"] and body["name"] == "victim-kill"

        # The hung cell is cut by its deadline and answers 504/timeout.
        status, body = results["victim-hang"]
        assert status == 504
        assert body["kind"] == "timeout" and body["name"] == "victim-hang"

    def test_corrupt_cache_rule_degrades_repeat_to_recompute(
        self, monkeypatch, tmp_path
    ):
        """A corrupt-cache fault quarantines the entry; the repeat still serves."""
        monkeypatch.setenv(chaos.CHAOS_ENV, "corrupt-cache:AntColony:poisoned")
        config = ServeConfig(
            batch_window_s=0.01, prewarm=False, cache_dir=str(tmp_path / "cache")
        )
        with ServerHarness(config) as h:
            first_status, first = h.layer(layer_payload("poisoned"))
            second_status, second = h.layer(layer_payload("poisoned"))
        assert first_status == 200 and second_status == 200
        # The poisoned write is quarantined on read, so the repeat is a
        # recompute (not a cache hit) with identical metrics.
        assert second["cached"] is False
        assert second["metrics"] == first["metrics"]
