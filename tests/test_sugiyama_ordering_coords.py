"""Tests for barycenter ordering and coordinate assignment."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag
from repro.layering.dummy import make_proper
from repro.layering.longest_path import longest_path_layering
from repro.sugiyama.coordinates import assign_coordinates
from repro.sugiyama.crossings import count_all_crossings
from repro.sugiyama.ordering import barycenter_ordering, initial_ordering
from repro.utils.exceptions import ValidationError


def proper_instance(seed=0, n=30):
    g = att_like_dag(n, seed=seed)
    lay = longest_path_layering(g)
    return make_proper(g, lay)


class TestInitialOrdering:
    def test_covers_every_vertex_once(self):
        result = proper_instance()
        orders = initial_ordering(result.graph, result.layering)
        all_vertices = [v for layer in orders.values() for v in layer]
        assert sorted(map(str, all_vertices)) == sorted(map(str, result.graph.vertices()))

    def test_vertices_on_their_layer(self):
        result = proper_instance(seed=1)
        orders = initial_ordering(result.graph, result.layering)
        for layer, vertices in orders.items():
            for v in vertices:
                assert result.layering.layer_of(v) == layer


class TestBarycenterOrdering:
    def test_never_worse_than_initial(self):
        for seed in range(3):
            result = proper_instance(seed=seed)
            initial = initial_ordering(result.graph, result.layering)
            initial_crossings = count_all_crossings(result.graph, result.layering, initial)
            _, crossings = barycenter_ordering(result.graph, result.layering)
            assert crossings <= initial_crossings

    def test_returns_consistent_count(self):
        result = proper_instance(seed=2)
        orders, crossings = barycenter_ordering(result.graph, result.layering)
        assert crossings == count_all_crossings(result.graph, result.layering, orders)

    def test_zero_sweeps_returns_initial(self):
        result = proper_instance(seed=3)
        orders, _ = barycenter_ordering(result.graph, result.layering, max_sweeps=0)
        assert orders == initial_ordering(result.graph, result.layering)

    def test_negative_sweeps_rejected(self):
        result = proper_instance(seed=4)
        with pytest.raises(ValidationError):
            barycenter_ordering(result.graph, result.layering, max_sweeps=-1)

    def test_simple_crossing_removed(self):
        # Two crossed edges: barycenter must find the crossing-free order.
        g = DiGraph(edges=[("a", "y"), ("b", "x")])
        from repro.layering.base import Layering

        lay = Layering({"a": 2, "b": 2, "x": 1, "y": 1})
        _, crossings = barycenter_ordering(g, lay)
        assert crossings == 0


class TestCoordinates:
    def test_every_vertex_has_coordinates(self):
        result = proper_instance(seed=5)
        orders, _ = barycenter_ordering(result.graph, result.layering)
        coords = assign_coordinates(result.graph, result.layering, orders)
        assert set(coords) == set(result.graph.vertices())

    def test_y_equals_layer(self):
        result = proper_instance(seed=6)
        orders, _ = barycenter_ordering(result.graph, result.layering)
        coords = assign_coordinates(result.graph, result.layering, orders)
        for v, (_, y) in coords.items():
            assert y == result.layering.layer_of(v)

    def test_order_preserved_and_separated(self):
        result = proper_instance(seed=7)
        orders, _ = barycenter_ordering(result.graph, result.layering)
        gap = 0.5
        coords = assign_coordinates(result.graph, result.layering, orders, gap=gap)
        for layer, order in orders.items():
            xs = [coords[v][0] for v in order]
            assert xs == sorted(xs)
            for a, b, xa, xb in zip(order, order[1:], xs, xs[1:]):
                min_sep = (
                    result.graph.vertex_width(a) + result.graph.vertex_width(b)
                ) / 2.0 + gap
                assert xb - xa >= min_sep - 1e-9

    def test_invalid_parameters(self):
        result = proper_instance(seed=8)
        orders, _ = barycenter_ordering(result.graph, result.layering)
        with pytest.raises(ValidationError):
            assign_coordinates(result.graph, result.layering, orders, gap=-1)
        with pytest.raises(ValidationError):
            assign_coordinates(result.graph, result.layering, orders, alignment_sweeps=-1)
