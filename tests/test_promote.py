"""Tests for the Promote Layering heuristic."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag, gnp_dag
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import dummy_vertex_count
from repro.layering.minwidth import minwidth_layering_sweep
from repro.layering.promote import (
    promote_layering,
    promotion_dummy_diff,
    promotion_round,
    promotion_set,
)
from repro.utils.exceptions import ValidationError


class TestPromotionSet:
    def test_cascades_through_whole_diamond(self, diamond):
        # In the LPL layering (a:3, b:2, c:2, d:1) every predecessor sits
        # exactly one layer above, so promoting d drags the whole diamond up.
        lay = longest_path_layering(diamond)
        assert promotion_set(diamond, lay.to_dict(), "d") == {"a", "b", "c", "d"}

    def test_single_vertex_when_no_conflict(self, diamond):
        # With a gap above d, promoting d needs no other vertex to move.
        assignment = {"a": 4, "b": 3, "c": 3, "d": 1}
        assert promotion_set(diamond, assignment, "d") == {"d"}

    def test_cascades_through_adjacent_predecessors(self):
        g = DiGraph(edges=[("a", "b"), ("b", "c")])
        assignment = {"a": 3, "b": 2, "c": 1}
        assert promotion_set(g, assignment, "c") == {"a", "b", "c"}

    def test_stops_at_gap(self):
        g = DiGraph(edges=[("a", "b"), ("b", "c")])
        assignment = {"a": 5, "b": 2, "c": 1}
        assert promotion_set(g, assignment, "c") == {"b", "c"}


class TestDummyDiff:
    def test_known_value(self, diamond):
        # Promoting d alone: out-degree 0, in-degree 2 -> diff = -2.
        assert promotion_dummy_diff(diamond, {"d"}) == -2

    def test_intra_set_edges_cancel(self):
        g = DiGraph(edges=[("a", "b"), ("b", "c")])
        # Promoting {b, c}: b (out 1 to c in-set, in 1 from a), c (out 0, in 1 from b in-set).
        # Net effect: edge (a, b) shortens by one -> diff = -1.
        assert promotion_dummy_diff(g, {"b", "c"}) == -1


class TestPromoteLayering:
    def test_never_increases_dummy_count(self, sample_graphs):
        for g in sample_graphs:
            base = longest_path_layering(g)
            promoted = promote_layering(g, base)
            assert dummy_vertex_count(g, promoted) <= dummy_vertex_count(g, base)

    def test_validity(self, sample_graphs):
        for g in sample_graphs:
            promote_layering(g, longest_path_layering(g)).validate(g)

    def test_also_improves_minwidth_layerings(self):
        for seed in range(3):
            g = att_like_dag(40, seed=seed)
            base = minwidth_layering_sweep(g)
            promoted = promote_layering(g, base)
            promoted.validate(g)
            assert dummy_vertex_count(g, promoted) <= dummy_vertex_count(g, base)

    def test_known_improvement(self, long_edge_graph):
        # LPL layers the chain 0-1-2-3 with the shortcut (0, 3) spanning 3.
        # Promoting vertex 3 (the chain's second vertex ... ) cannot help, but
        # promoting nothing keeps DVC; the heuristic must never do worse.
        base = longest_path_layering(long_edge_graph)
        promoted = promote_layering(long_edge_graph, base)
        assert dummy_vertex_count(long_edge_graph, promoted) <= dummy_vertex_count(
            long_edge_graph, base
        )

    def test_classic_promotion_case(self):
        # u has two long outgoing edges; promoting its single-successor chain
        # reduces dummies.  Graph: s -> a, s -> b, a -> t1, b -> t2, plus a
        # long edge s -> t3 ... construct a case where a vertex sits lower
        # than necessary: v -> x and w -> x with v on layer 3, w on layer 2.
        g = DiGraph(edges=[("v", "x"), ("w", "x"), ("v", "w")])
        # LPL: x:1, w:2, v:3 -> edge (v, x) spans 2 -> 1 dummy.
        base = longest_path_layering(g)
        assert dummy_vertex_count(g, base) == 1
        promoted = promote_layering(g, base)
        # Promoting x to layer 2 would make (w, x) horizontal; promoting w->x
        # chain is not possible without increasing other spans, so the only
        # guarantee is non-degradation here.
        assert dummy_vertex_count(g, promoted) <= 1

    def test_promotion_reduces_dummies_for_star(self):
        # Several sources point at one sink far below them after LPL because
        # the sink also ends a long chain; promoting the sink's other parents
        # is not applicable, but promoting the leaf parents helps:
        g = DiGraph(edges=[("c1", "c2"), ("c2", "c3"), ("p", "t"), ("c3", "t")])
        base = longest_path_layering(g)
        # p sits on layer 2 ... t on 1, chain c1..c3 on 4..2: p's edge spans 1.
        promoted = promote_layering(g, base)
        assert dummy_vertex_count(g, promoted) <= dummy_vertex_count(g, base)

    def test_max_rounds_zero_returns_normalized_input(self, diamond):
        base = longest_path_layering(diamond)
        result = promote_layering(diamond, base, max_rounds=0)
        assert result == base.normalized()

    def test_negative_max_rounds_rejected(self, diamond):
        with pytest.raises(ValidationError):
            promote_layering(diamond, longest_path_layering(diamond), max_rounds=-1)

    def test_result_is_normalized(self):
        g = gnp_dag(25, 0.15, seed=5)
        promoted = promote_layering(g, longest_path_layering(g))
        used = promoted.used_layers()
        assert used[0] == 1 and used == list(range(1, len(used) + 1))


class TestPromotionRound:
    def test_returns_zero_when_nothing_to_do(self):
        g = DiGraph(edges=[("a", "b")])
        assignment = {"a": 2, "b": 1}
        assert promotion_round(g, assignment) == 0
        assert assignment == {"a": 2, "b": 1}

    def test_mutates_assignment_when_improving(self):
        # b -> c where b also has an in-edge from far above: promoting c is
        # never useful (in-degree 1 == out-degree ... ), craft a clear win:
        # two parents point at v from 2 layers above; v has no out-edges.
        g = DiGraph(edges=[("p1", "v"), ("p2", "v"), ("p1", "m"), ("m", "s")])
        assignment = {"p1": 3, "p2": 3, "m": 2, "s": 1, "v": 1}
        # v at layer 1 with both parents at 3 -> 2 dummies; promoting v to 2 removes both.
        rounds = promotion_round(g, assignment)
        assert rounds >= 1
        assert assignment["v"] == 2
