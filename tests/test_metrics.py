"""Tests for the layering-quality metrics, checked against hand-computed values."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.metrics import (
    aco_objective,
    dummy_vertex_count,
    edge_density,
    evaluate_layering,
    layer_widths,
    layering_height,
    real_layer_widths,
    total_edge_span,
    width_excluding_dummies,
    width_including_dummies,
)
from repro.utils.exceptions import LayeringError, ValidationError


@pytest.fixture
def shortcut_graph() -> DiGraph:
    """Chain 3 -> 2 -> 1 -> 0 plus a shortcut 3 -> 0 (spans 3 layers)."""
    return DiGraph(edges=[(3, 2), (2, 1), (1, 0), (3, 0)])


@pytest.fixture
def shortcut_layering() -> Layering:
    return Layering({3: 4, 2: 3, 1: 2, 0: 1})


class TestBasicMetrics:
    def test_height_counts_nonempty_layers(self):
        assert layering_height(Layering({"a": 1, "b": 5})) == 2

    def test_real_layer_widths(self, shortcut_graph, shortcut_layering):
        widths = real_layer_widths(shortcut_graph, shortcut_layering)
        assert widths == {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}

    def test_layer_widths_with_dummies(self, shortcut_graph, shortcut_layering):
        widths = layer_widths(shortcut_graph, shortcut_layering, nd_width=1.0)
        # Edge (3, 0) crosses layers 2 and 3, adding one dummy to each.
        assert widths == {1: 1.0, 2: 2.0, 3: 2.0, 4: 1.0}

    def test_layer_widths_respects_nd_width(self, shortcut_graph, shortcut_layering):
        widths = layer_widths(shortcut_graph, shortcut_layering, nd_width=0.5)
        assert widths[2] == pytest.approx(1.5)

    def test_layer_widths_zero_nd(self, shortcut_graph, shortcut_layering):
        widths = layer_widths(shortcut_graph, shortcut_layering, nd_width=0.0)
        assert widths == {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}

    def test_width_including_vs_excluding(self, shortcut_graph, shortcut_layering):
        assert width_including_dummies(shortcut_graph, shortcut_layering) == 2.0
        assert width_excluding_dummies(shortcut_graph, shortcut_layering) == 1.0

    def test_vertex_widths_used(self):
        g = DiGraph()
        g.add_vertex("a", width=3.0)
        g.add_vertex("b", width=2.0)
        g.add_edge("a", "b")
        lay = Layering({"a": 2, "b": 1})
        assert width_excluding_dummies(g, lay) == 3.0

    def test_empty_layering(self):
        g = DiGraph()
        lay = Layering({})
        assert layer_widths(g, lay) == {}
        assert width_including_dummies(g, lay) == 0.0
        assert width_excluding_dummies(g, lay) == 0.0

    def test_negative_nd_width_rejected(self, shortcut_graph, shortcut_layering):
        with pytest.raises(ValidationError):
            layer_widths(shortcut_graph, shortcut_layering, nd_width=-1)


class TestDummyAndSpan:
    def test_dummy_vertex_count(self, shortcut_graph, shortcut_layering):
        assert dummy_vertex_count(shortcut_graph, shortcut_layering) == 2

    def test_total_edge_span(self, shortcut_graph, shortcut_layering):
        assert total_edge_span(shortcut_graph, shortcut_layering) == 1 + 1 + 1 + 3

    def test_proper_layering_has_no_dummies(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        assert dummy_vertex_count(diamond, lay) == 0


class TestEdgeDensity:
    def test_chain_plus_shortcut(self, shortcut_graph, shortcut_layering):
        # Gap 1-2: edges (1,0) and (3,0) -> 2; gap 2-3: (2,1), (3,0) -> 2;
        # gap 3-4: (3,2), (3,0) -> 2.
        assert edge_density(shortcut_graph, shortcut_layering) == 2

    def test_diamond(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        assert edge_density(diamond, lay) == 2

    def test_single_layer(self):
        g = DiGraph(vertices=["a", "b"])
        assert edge_density(g, Layering({"a": 1, "b": 1})) == 0

    def test_no_edges(self):
        g = DiGraph(vertices=["a", "b"])
        assert edge_density(g, Layering({"a": 1, "b": 2})) == 0


class TestEvaluate:
    def test_objective_formula(self, shortcut_graph, shortcut_layering):
        metrics = evaluate_layering(shortcut_graph, shortcut_layering)
        assert metrics.height == 4
        assert metrics.width_including_dummies == 2.0
        assert metrics.objective == pytest.approx(1.0 / 6.0)
        assert metrics.objective == pytest.approx(
            aco_objective(shortcut_graph, shortcut_layering)
        )

    def test_as_dict_round_trip(self, shortcut_graph, shortcut_layering):
        metrics = evaluate_layering(shortcut_graph, shortcut_layering, nd_width=0.5)
        d = metrics.as_dict()
        assert d["nd_width"] == 0.5
        assert d["n_vertices"] == 4
        assert d["n_edges"] == 4

    def test_invalid_layering_rejected(self, diamond):
        bad = Layering({"a": 1, "b": 1, "c": 1, "d": 1})
        with pytest.raises(LayeringError):
            evaluate_layering(diamond, bad)

    def test_validation_can_be_skipped(self, diamond):
        bad = Layering({"a": 1, "b": 1, "c": 1, "d": 1})
        metrics = evaluate_layering(diamond, bad, validate=False)
        assert metrics.height == 1

    def test_negative_nd_width_rejected(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        with pytest.raises(ValidationError):
            evaluate_layering(diamond, lay, nd_width=-0.1)
