"""Tests for the Longest-Path Layering algorithm."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag, gnp_dag, longest_path_dag
from repro.layering.longest_path import longest_path_layering, minimum_height
from repro.utils.exceptions import CycleError, GraphError


class TestLongestPathLayering:
    def test_diamond(self, diamond):
        lay = longest_path_layering(diamond)
        assert lay["d"] == 1
        assert lay["b"] == lay["c"] == 2
        assert lay["a"] == 3

    def test_sinks_on_layer_one(self):
        for seed in range(3):
            g = att_like_dag(30, seed=seed)
            lay = longest_path_layering(g)
            for v in g.sinks():
                assert lay[v] == 1

    def test_validity_on_random_graphs(self, sample_graphs):
        for g in sample_graphs:
            lay = longest_path_layering(g)
            lay.validate(g)

    def test_height_is_minimum(self, sample_graphs):
        # LPL is known to use the minimum possible number of layers.
        for g in sample_graphs:
            lay = longest_path_layering(g)
            assert lay.height == minimum_height(g)

    def test_path_graph_height_equals_n(self):
        g = longest_path_dag(7)
        assert longest_path_layering(g).height == 7

    def test_every_nonsink_one_above_some_successor(self):
        # LPL places v exactly one layer above its highest successor.
        g = gnp_dag(25, 0.15, seed=3)
        lay = longest_path_layering(g)
        for v in g.vertices():
            succs = g.successors(v)
            if succs:
                assert lay[v] == 1 + max(lay[w] for w in succs)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            longest_path_layering(DiGraph())

    def test_cyclic_graph_rejected(self):
        with pytest.raises(CycleError):
            longest_path_layering(DiGraph(edges=[(1, 2), (2, 1)]))

    def test_isolated_vertices_on_layer_one(self):
        g = DiGraph(vertices=["x", "y"], edges=[("a", "b")])
        lay = longest_path_layering(g)
        assert lay["x"] == lay["y"] == 1


class TestMinimumHeight:
    def test_single_vertex(self):
        assert minimum_height(DiGraph(vertices=["v"])) == 1

    def test_path(self):
        assert minimum_height(longest_path_dag(10)) == 10

    def test_diamond(self, diamond):
        assert minimum_height(diamond) == 3
