"""Memory-ceiling regression test for the CSR-only kernel data path.

The historical padded-neighbour stacks (``succ_pad``/``pred_pad``) are
O(V·max_degree): on a star-heavy 10⁵-vertex graph with hubs of degree 10³
they alone would cost ~800 MB.  The CSR-only path keeps problem build,
packing, shared-memory publish and a full packed tour at O(V+E) — this test
pins that with a ``tracemalloc`` peak assertion (NumPy registers its data
allocations with tracemalloc, so the kernel state arrays are counted).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.aco.params import ACOParams
from repro.aco.problem import LayeringProblem, PackedProblems
from repro.aco.runtime import run_packed_colonies
from repro.graph.digraph import DiGraph

#: 100 hubs × 1000 leaves: |V| just over 10⁵, |E| = 10⁵, max degree 10³.
N_HUBS = 100
LEAVES_PER_HUB = 1000

#: O(V+E) working set measured at ~60 MB (dominated by the Python-level
#: adjacency lists and the LPL/stretch dicts).  The padded stacks alone
#: would add ~2 × 800 MB, so the ceiling separates the regimes by >10x.
PEAK_CEILING_BYTES = 200 * 1024 * 1024


def _star_heavy_graph() -> DiGraph:
    graph = DiGraph()
    edges = []
    for h in range(N_HUBS):
        hub = ("hub", h)
        for leaf in range(LEAVES_PER_HUB):
            edges.append((hub, ("leaf", h, leaf)))
    graph.add_edges(edges)
    return graph


@pytest.mark.slow
def test_giant_star_graph_stays_linear_memory():
    graph = _star_heavy_graph()  # the label-level graph is not under test
    n_vertices = graph.n_vertices
    assert n_vertices > 100_000

    tracemalloc.start()
    try:
        # n_layers must be bounded explicitly: the paper's default stretches
        # to |V| layers, which makes the (dense, unavoidable) pheromone
        # matrix quadratic regardless of the adjacency representation.
        problem = LayeringProblem.from_graph(graph, n_layers=8)
        packed = PackedProblems.pack([problem])
        outcomes = run_packed_colonies(
            packed, ACOParams(n_ants=1, n_tours=1, seed=5), [[5]]
        )
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()

    assert len(outcomes) == 1 and len(outcomes[0]) == 1
    assert outcomes[0][0].assignment.shape == (n_vertices,)
    # The quadratic stacks must never have been materialised…
    assert problem._succ_pad_cache is None
    assert packed._succ_pad_cache is None
    # …and the whole build + pack + tour stays well under the padded regime.
    assert peak < PEAK_CEILING_BYTES, f"peak {peak / 1e6:.0f} MB exceeds ceiling"
