"""Tests for the ant-walk vertex-ordering options (random / BFS / topological)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams, VERTEX_ORDERS
from repro.aco.problem import LayeringProblem
from repro.graph.generators import att_like_dag, gnp_dag
from repro.utils.exceptions import ValidationError
from repro.utils.rng import as_generator


class TestOrderGenerators:
    @pytest.fixture(scope="class")
    def problem(self):
        return LayeringProblem.from_graph(att_like_dag(30, seed=1))

    def test_random_order_is_permutation(self, problem):
        order = problem.random_order(as_generator(0))
        assert sorted(order.tolist()) == list(range(problem.n_vertices))

    def test_bfs_order_is_permutation(self, problem):
        order = problem.random_bfs_order(as_generator(0))
        assert sorted(order.tolist()) == list(range(problem.n_vertices))

    def test_bfs_handles_disconnected_graphs(self):
        g = gnp_dag(12, 0.0, seed=0)  # no edges: 12 components
        problem = LayeringProblem.from_graph(g)
        order = problem.random_bfs_order(as_generator(3))
        assert sorted(order.tolist()) == list(range(12))

    def test_topological_order_respects_edges(self, problem):
        order = problem.random_topological_order(as_generator(0))
        assert sorted(order.tolist()) == list(range(problem.n_vertices))
        pos = {int(v): i for i, v in enumerate(order)}
        for v in range(problem.n_vertices):
            for w in problem.succ[v]:
                assert pos[v] < pos[w]

    def test_orders_are_deterministic_given_seed(self, problem):
        a = problem.random_bfs_order(as_generator(7))
        b = problem.random_bfs_order(as_generator(7))
        assert np.array_equal(a, b)
        c = problem.random_topological_order(as_generator(7))
        d = problem.random_topological_order(as_generator(7))
        assert np.array_equal(c, d)


class TestParamsAndEndToEnd:
    def test_supported_orders_constant(self):
        assert set(VERTEX_ORDERS) == {"random", "bfs", "topological"}

    def test_invalid_order_rejected(self):
        with pytest.raises(ValidationError):
            ACOParams(vertex_order="spiral")

    @pytest.mark.parametrize("order", VERTEX_ORDERS)
    def test_layering_valid_for_every_order(self, order):
        g = att_like_dag(25, seed=2)
        params = ACOParams(vertex_order=order, n_ants=2, n_tours=2, seed=0)
        layering = aco_layering(g, params)
        layering.validate(g)

    @pytest.mark.parametrize("order", VERTEX_ORDERS)
    def test_deterministic_per_order(self, order):
        g = att_like_dag(20, seed=3)
        params = ACOParams(vertex_order=order, n_ants=2, n_tours=2, seed=5)
        assert aco_layering(g, params) == aco_layering(g, params)
