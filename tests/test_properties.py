"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aco.heuristic import LayerWidths, evaluate_assignment, evaluate_with_widths
from repro.aco.problem import LayeringProblem
from repro.graph.acyclicity import is_acyclic, topological_sort
from repro.graph.digraph import DiGraph
from repro.graph.transforms import transitive_reduction
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering, minimum_height
from repro.layering.metrics import (
    dummy_vertex_count,
    edge_density,
    evaluate_layering,
    width_excluding_dummies,
    width_including_dummies,
)
from repro.layering.minwidth import minwidth_layering
from repro.layering.promote import promote_layering
from repro.layering.stretch import stretch_between


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #


@st.composite
def random_dags(draw, max_vertices: int = 14, max_extra_edges: int = 25) -> DiGraph:
    """Random DAGs: edges always point from a lower to a higher vertex id."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    g = DiGraph(vertices=range(n))
    if n >= 2:
        n_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
        pairs = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 2),
                    st.integers(min_value=1, max_value=n - 1),
                ),
                max_size=n_edges,
            )
        )
        for a, b in pairs:
            if a < b:
                g.add_edge(a, b)
    return g


@st.composite
def dags_with_widths(draw) -> DiGraph:
    """Random DAGs whose vertices carry non-unit widths."""
    g = draw(random_dags())
    for v in g.vertices():
        g.set_vertex_width(v, draw(st.floats(min_value=0.25, max_value=4.0)))
    return g


# --------------------------------------------------------------------------- #
# graph-level properties
# --------------------------------------------------------------------------- #


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_generated_graphs_are_acyclic(g):
    assert is_acyclic(g)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_topological_sort_respects_all_edges(g):
    order = topological_sort(g)
    pos = {v: i for i, v in enumerate(order)}
    assert all(pos[u] < pos[v] for u, v in g.edges())


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_transitive_reduction_preserves_reachability_of_direct_edges(g):
    reduced = transitive_reduction(g)
    # every removed edge must still be realisable as a path in the reduction
    order = topological_sort(reduced)
    pos = {v: i for i, v in enumerate(order)}
    reach = {v: {v} for v in reduced.vertices()}
    for v in reversed(order):
        for w in reduced.successors(v):
            reach[v] |= reach[w]
    for u, v in g.edges():
        assert v in reach[u]
    del pos


# --------------------------------------------------------------------------- #
# layering properties
# --------------------------------------------------------------------------- #


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_lpl_is_valid_and_minimum_height(g):
    lay = longest_path_layering(g)
    lay.validate(g)
    assert lay.height == minimum_height(g)


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_minwidth_is_valid(g):
    minwidth_layering(g).validate(g)


@given(dags_with_widths())
@settings(max_examples=40, deadline=None)
def test_promotion_never_increases_dummies(g):
    base = longest_path_layering(g)
    promoted = promote_layering(g, base)
    promoted.validate(g)
    assert dummy_vertex_count(g, promoted) <= dummy_vertex_count(g, base)


@given(random_dags(), st.integers(min_value=0, max_value=30))
@settings(max_examples=40, deadline=None)
def test_stretch_between_compacts_back_to_original(g, extra):
    lay = longest_path_layering(g)
    stretched, n_layers = stretch_between(lay, lay.height + extra)
    assert n_layers == lay.height + extra
    stretched.validate(g)
    assert stretched.normalized() == lay


@given(dags_with_widths(), st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=40, deadline=None)
def test_width_metrics_relation(g, nd_width):
    lay = longest_path_layering(g)
    incl = width_including_dummies(g, lay, nd_width=nd_width)
    excl = width_excluding_dummies(g, lay)
    assert incl >= excl - 1e-9
    assert excl <= g.total_vertex_width() + 1e-9


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_edge_density_bounds(g):
    lay = longest_path_layering(g)
    density = edge_density(g, lay)
    assert 0 <= density <= g.n_edges
    if lay.height > 1 and g.n_edges > 0:
        assert density >= 1


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_normalized_layering_is_idempotent_and_valid(g):
    lay = longest_path_layering(g).shifted(3).normalized()
    assert lay.normalized() == lay
    lay.validate(g)


@given(dags_with_widths())
@settings(max_examples=40, deadline=None)
def test_evaluate_layering_objective_consistency(g):
    lay = longest_path_layering(g)
    metrics = evaluate_layering(g, lay)
    denom = metrics.height + metrics.width_including_dummies
    assert metrics.objective == (1.0 / denom if denom else 0.0)


# --------------------------------------------------------------------------- #
# ACO bookkeeping properties
# --------------------------------------------------------------------------- #


@given(random_dags(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_incremental_layer_widths_match_recompute(g, seed):
    problem = LayeringProblem.from_graph(g)
    rng = np.random.default_rng(seed)
    assignment = problem.initial_assignment.copy()
    widths = LayerWidths.from_assignment(problem, assignment)
    for _ in range(40):
        v = int(rng.integers(0, problem.n_vertices))
        lo, hi = problem.layer_span(assignment, v)
        new = int(rng.integers(lo, hi + 1))
        old = int(assignment[v])
        if new != old:
            widths.apply_move(v, old, new, assignment)
            assignment[v] = new
    fresh = LayerWidths.from_assignment(problem, assignment)
    assert np.allclose(widths.real, fresh.real)
    assert np.array_equal(widths.crossing, fresh.crossing)
    assert np.array_equal(widths.occupancy, fresh.occupancy)
    fast = evaluate_with_widths(problem, assignment, widths)
    slow = evaluate_assignment(problem, assignment)
    assert fast.height == slow.height
    assert abs(fast.width_including_dummies - slow.width_including_dummies) < 1e-9
    assert fast.dummy_vertex_count == slow.dummy_vertex_count


@given(random_dags())
@settings(max_examples=30, deadline=None)
def test_aco_score_matches_public_metrics(g):
    problem = LayeringProblem.from_graph(g)
    score = evaluate_assignment(problem, problem.initial_assignment)
    layering = problem.assignment_to_layering(problem.initial_assignment)
    metrics = evaluate_layering(g, layering)
    assert score.height == metrics.height
    assert abs(score.width_including_dummies - metrics.width_including_dummies) < 1e-9
    assert score.dummy_vertex_count == metrics.dummy_vertex_count
