"""Tests for the multi-colony parallel driver."""

from __future__ import annotations

import pytest

from repro.aco.parallel import ParallelAcoResult, parallel_aco_layering, run_single_colony
from repro.aco.params import ACOParams
from repro.graph.generators import att_like_dag
from repro.graph.io import to_json_dict
from repro.utils.exceptions import ValidationError

FAST = ACOParams(n_ants=2, n_tours=2, seed=5)


class TestSerialBackend:
    def test_basic_run(self):
        g = att_like_dag(20, seed=1)
        result = parallel_aco_layering(g, FAST, n_colonies=3, executor="serial")
        assert isinstance(result, ParallelAcoResult)
        assert len(result.colonies) == 3
        result.layering.validate(g)
        assert result.objective == max(c.objective for c in result.colonies)

    def test_deterministic(self):
        g = att_like_dag(20, seed=2)
        a = parallel_aco_layering(g, FAST, n_colonies=3, executor="serial")
        b = parallel_aco_layering(g, FAST, n_colonies=3, executor="serial")
        assert a.layering == b.layering
        assert [c.seed for c in a.colonies] == [c.seed for c in b.colonies]

    def test_single_colony(self):
        g = att_like_dag(15, seed=3)
        result = parallel_aco_layering(g, FAST, n_colonies=1, executor="serial")
        assert len(result.colonies) == 1

    def test_best_at_least_single_colony_quality(self):
        g = att_like_dag(25, seed=4)
        multi = parallel_aco_layering(g, FAST, n_colonies=4, executor="serial")
        assert multi.objective >= min(c.objective for c in multi.colonies)

    def test_invalid_arguments(self):
        g = att_like_dag(10, seed=5)
        with pytest.raises(ValidationError):
            parallel_aco_layering(g, FAST, n_colonies=0)
        with pytest.raises(ValidationError):
            parallel_aco_layering(g, FAST, executor="gpu")


class TestThreadBackend:
    def test_matches_serial(self):
        g = att_like_dag(18, seed=6)
        serial = parallel_aco_layering(g, FAST, n_colonies=3, executor="serial")
        threaded = parallel_aco_layering(g, FAST, n_colonies=3, executor="thread", max_workers=2)
        assert threaded.layering == serial.layering
        assert [c.objective for c in threaded.colonies] == [c.objective for c in serial.colonies]


class TestWorkerFunction:
    def test_run_single_colony_roundtrip(self):
        g = att_like_dag(15, seed=7)
        summary = run_single_colony(to_json_dict(g), FAST.as_dict(), colony_index=2, seed=99)
        assert summary.colony_index == 2
        assert summary.seed == 99
        assert summary.objective > 0
        assert set(summary.assignment) == set(g.vertices())


@pytest.mark.slow
class TestProcessBackend:
    def test_matches_serial(self):
        g = att_like_dag(15, seed=8)
        serial = parallel_aco_layering(g, FAST, n_colonies=2, executor="serial")
        procs = parallel_aco_layering(g, FAST, n_colonies=2, executor="process", max_workers=2)
        assert procs.layering == serial.layering
