"""Tests for graph serialisation and networkx interoperability."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_dag
from repro.graph.io import (
    from_json_dict,
    from_networkx,
    read_edgelist,
    read_json,
    to_json_dict,
    to_networkx,
    write_dot,
    write_edgelist,
    write_json,
)
from repro.utils.exceptions import GraphError


class TestNetworkxInterop:
    def test_round_trip_structure(self):
        g = gnp_dag(15, 0.3, seed=0)
        back = from_networkx(to_networkx(g))
        assert set(back.vertices()) == set(g.vertices())
        assert set(back.edges()) == set(g.edges())

    def test_attributes_carried(self):
        g = DiGraph()
        g.add_vertex("v", width=2.0, label="two")
        nxg = to_networkx(g)
        assert nxg.nodes["v"]["width"] == 2.0
        assert nxg.nodes["v"]["label"] == "two"
        back = from_networkx(nxg)
        assert back.vertex_width("v") == 2.0
        assert back.vertex_label("v") == "two"

    def test_from_networkx_rejects_undirected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.Graph([(1, 2)]))

    def test_from_networkx_skips_self_loops(self):
        nxg = nx.DiGraph([(1, 1), (1, 2)])
        g = from_networkx(nxg)
        assert g.n_edges == 1

    def test_from_networkx_default_width(self):
        g = from_networkx(nx.DiGraph([(1, 2)]))
        assert g.vertex_width(1) == 1.0


class TestEdgelist:
    def test_round_trip(self, tmp_path):
        g = DiGraph()
        g.add_vertex("a", width=2.0, label="alpha")
        g.add_vertex("b")
        g.add_edge("a", "b")
        path = tmp_path / "graph.edgelist"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert set(back.vertices()) == {"a", "b"}
        assert back.has_edge("a", "b")
        assert back.vertex_width("a") == 2.0
        assert back.vertex_label("a") == "alpha"
        assert back.vertex_label("b") is None

    def test_integer_ids_become_strings(self, tmp_path):
        g = gnp_dag(8, 0.3, seed=1)
        path = tmp_path / "g.edgelist"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert back.n_vertices == g.n_vertices
        assert back.n_edges == g.n_edges
        assert all(isinstance(v, str) for v in back.vertices())

    def test_malformed_lines_raise(self, tmp_path):
        path = tmp_path / "bad.edgelist"
        path.write_text("V a\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edgelist(path)
        path.write_text("E a\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edgelist(path)
        path.write_text("X a b\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edgelist(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.edgelist"
        path.write_text("# comment\n\nV a 1.0 -\nV b 1.0 -\nE a b\n", encoding="utf-8")
        g = read_edgelist(path)
        assert g.has_edge("a", "b")


class TestJson:
    def test_dict_round_trip(self):
        g = gnp_dag(10, 0.3, seed=2)
        back = from_json_dict(to_json_dict(g))
        assert back == g

    def test_file_round_trip(self, tmp_path):
        g = DiGraph()
        g.add_vertex("x", width=3.0, label="ex")
        g.add_edge("x", "y")
        path = tmp_path / "g.json"
        write_json(g, path)
        back = read_json(path)
        assert back.has_edge("x", "y")
        assert back.vertex_width("x") == 3.0

    def test_wrong_format_rejected(self):
        with pytest.raises(GraphError):
            from_json_dict({"format": "something-else", "vertices": [], "edges": []})

    def test_tuple_vertex_ids_survive_as_tuples(self):
        g = DiGraph()
        g.add_edge(("a", 1), ("b", 2))
        back = from_json_dict(to_json_dict(g))
        assert back.has_edge(("a", 1), ("b", 2))


class TestDot:
    def test_write_dot(self, tmp_path, diamond):
        path = tmp_path / "g.dot"
        write_dot(diamond, path, name="Diamond")
        text = path.read_text(encoding="utf-8")
        assert text.startswith("digraph Diamond {")
        assert '"a" -> "b";' in text
        assert text.rstrip().endswith("}")
