"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import att_like_dag
from repro.graph.io import write_edgelist, write_json


@pytest.fixture
def graph_file(tmp_path):
    g = att_like_dag(18, seed=3)
    path = tmp_path / "graph.edgelist"
    write_edgelist(g, path)
    return path


@pytest.fixture
def graph_json_file(tmp_path):
    g = att_like_dag(15, seed=4)
    path = tmp_path / "graph.json"
    write_json(g, path)
    return path


FAST_ACO = ["--ants", "2", "--tours", "2", "--seed", "0"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("layer", "draw", "compare", "figures", "corpus"):
            args = parser.parse_args(
                [command, "x"] if command in ("layer", "draw", "corpus") else [command]
            )
            assert args.command == command


class TestLayerCommand:
    def test_layer_with_lpl(self, graph_file, capsys):
        assert main(["layer", str(graph_file), "--method", "lpl"]) == 0
        out = capsys.readouterr().out
        assert "height" in out and "width_including_dummies" in out

    def test_layer_with_aco_and_output(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "layers.json"
        code = main(
            ["layer", str(graph_file), "--method", "aco", "--output", str(out_file), *FAST_ACO]
        )
        assert code == 0
        data = json.loads(out_file.read_text(encoding="utf-8"))
        assert len(data) == 18
        assert all(isinstance(layer, int) for layer in data.values())

    def test_layer_json_input(self, graph_json_file):
        assert main(["layer", str(graph_json_file), "--method", "minwidth"]) == 0

    def test_missing_file_is_an_error(self, capsys):
        assert main(["layer", "no-such-file.edgelist", "--method", "lpl"]) == 2
        assert "error" in capsys.readouterr().err


class TestDrawCommand:
    def test_ascii_and_svg(self, graph_file, tmp_path, capsys):
        svg = tmp_path / "out.svg"
        code = main(["draw", str(graph_file), "--method", "lpl", "--svg", str(svg)])
        assert code == 0
        assert svg.exists()
        out = capsys.readouterr().out
        assert "crossings=" in out
        assert "L" in out  # ascii layer rows

    def test_no_ascii_flag(self, graph_file, capsys):
        assert main(["draw", str(graph_file), "--method", "lpl", "--no-ascii"]) == 0
        out = capsys.readouterr().out
        assert "L  1 |" not in out


class TestCompareCommand:
    def test_small_comparison(self, capsys):
        code = main(
            [
                "compare",
                "--graphs-per-group",
                "1",
                "--vertex-counts",
                "10",
                "20",
                *FAST_ACO,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MinWidth" in out and "AntColony" in out
        assert "(running_time)" in out

    def test_no_aco_flag(self, capsys):
        code = main(
            ["compare", "--graphs-per-group", "1", "--vertex-counts", "10", "--no-aco"]
        )
        assert code == 0
        assert "AntColony" not in capsys.readouterr().out


class TestFiguresCommand:
    def test_single_figure(self, capsys, monkeypatch):
        # Shrink the corpus the figure uses by limiting groups via a tiny
        # graphs-per-group; fig4 runs LPL, LPL+PL and the ACO.
        code = main(["figures", "--figure", "fig4", "--graphs-per-group", "1", *FAST_ACO])
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG4" in out
        assert "AntColony" in out


class TestCorpusCommand:
    def test_writes_graph_files(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        code = main(["corpus", str(out_dir), "--graphs-per-group", "1"])
        assert code == 0
        files = list(out_dir.glob("*.json"))
        assert len(files) == 19
        assert "19 graphs written" in capsys.readouterr().out
