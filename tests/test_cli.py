"""Tests for the command-line interface."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import att_like_dag
from repro.graph.io import write_edgelist, write_json


def _load_resume_smoke():
    """Import the CI smoke script so its helpers are shared, not duplicated."""
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "resume_smoke.py"
    spec = importlib.util.spec_from_file_location("resume_smoke", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


#: The single definition of "which compare tables are deterministic" lives
#: in the smoke script; reusing it keeps this test and CI asserting the
#: same byte-identity contract.
deterministic_tables = _load_resume_smoke().deterministic_tables


@pytest.fixture
def graph_file(tmp_path):
    g = att_like_dag(18, seed=3)
    path = tmp_path / "graph.edgelist"
    write_edgelist(g, path)
    return path


@pytest.fixture
def graph_json_file(tmp_path):
    g = att_like_dag(15, seed=4)
    path = tmp_path / "graph.json"
    write_json(g, path)
    return path


FAST_ACO = ["--ants", "2", "--tours", "2", "--seed", "0"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("layer", "draw", "compare", "figures", "corpus"):
            args = parser.parse_args(
                [command, "x"] if command in ("layer", "draw", "corpus") else [command]
            )
            assert args.command == command


class TestLayerCommand:
    def test_layer_with_lpl(self, graph_file, capsys):
        assert main(["layer", str(graph_file), "--method", "lpl"]) == 0
        out = capsys.readouterr().out
        assert "height" in out and "width_including_dummies" in out

    def test_layer_with_aco_and_output(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "layers.json"
        code = main(
            ["layer", str(graph_file), "--method", "aco", "--output", str(out_file), *FAST_ACO]
        )
        assert code == 0
        data = json.loads(out_file.read_text(encoding="utf-8"))
        assert len(data) == 18
        assert all(isinstance(layer, int) for layer in data.values())

    def test_layer_json_input(self, graph_json_file):
        assert main(["layer", str(graph_json_file), "--method", "minwidth"]) == 0

    def test_missing_file_is_an_error(self, capsys):
        assert main(["layer", "no-such-file.edgelist", "--method", "lpl"]) == 2
        assert "error" in capsys.readouterr().err


class TestDrawCommand:
    def test_ascii_and_svg(self, graph_file, tmp_path, capsys):
        svg = tmp_path / "out.svg"
        code = main(["draw", str(graph_file), "--method", "lpl", "--svg", str(svg)])
        assert code == 0
        assert svg.exists()
        out = capsys.readouterr().out
        assert "crossings=" in out
        assert "L" in out  # ascii layer rows

    def test_no_ascii_flag(self, graph_file, capsys):
        assert main(["draw", str(graph_file), "--method", "lpl", "--no-ascii"]) == 0
        out = capsys.readouterr().out
        assert "L  1 |" not in out


class TestCompareCommand:
    def test_small_comparison(self, capsys):
        code = main(
            [
                "compare",
                "--graphs-per-group",
                "1",
                "--vertex-counts",
                "10",
                "20",
                *FAST_ACO,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MinWidth" in out and "AntColony" in out
        assert "(running_time)" in out

    def test_no_aco_flag(self, capsys):
        code = main(
            ["compare", "--graphs-per-group", "1", "--vertex-counts", "10", "--no-aco"]
        )
        assert code == 0
        assert "AntColony" not in capsys.readouterr().out

    def test_full_announces_thread_count(self, capsys, monkeypatch):
        # --full is where the walk kernel dominates, so the resolved thread
        # count is announced up front.  Shrink the corpus so the test stays
        # fast: the announce path is identical for any corpus size.
        import repro.cli as cli

        real_corpus = cli.att_like_corpus
        monkeypatch.setattr(
            cli,
            "att_like_corpus",
            lambda graphs_per_group=None, vertex_counts=None: real_corpus(
                graphs_per_group=1, vertex_counts=(10,)
            ),
        )
        monkeypatch.setenv("REPRO_ACO_THREADS", "2")
        assert main(["compare", "--full", "--no-aco"]) == 0
        assert "walk kernel: 2 thread(s)" in capsys.readouterr().out

    def test_full_rejects_invalid_thread_env(self, capsys, monkeypatch):
        import repro.cli as cli

        real_corpus = cli.att_like_corpus
        monkeypatch.setattr(
            cli,
            "att_like_corpus",
            lambda graphs_per_group=None, vertex_counts=None: real_corpus(
                graphs_per_group=1, vertex_counts=(10,)
            ),
        )
        monkeypatch.setenv("REPRO_ACO_THREADS", "bogus")
        assert main(["compare", "--full", "--no-aco"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_ACO_THREADS must be an integer, got 'bogus'" in err


class TestFiguresCommand:
    def test_single_figure(self, capsys, monkeypatch):
        # Shrink the corpus the figure uses by limiting groups via a tiny
        # graphs-per-group; fig4 runs LPL, LPL+PL and the ACO.
        code = main(["figures", "--figure", "fig4", "--graphs-per-group", "1", *FAST_ACO])
        assert code == 0
        out = capsys.readouterr().out
        assert "FIG4" in out
        assert "AntColony" in out


class TestCorpusCommand:
    def test_writes_graph_files(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        code = main(["corpus", str(out_dir), "--graphs-per-group", "1"])
        assert code == 0
        files = list(out_dir.glob("*.json"))
        assert len(files) == 19
        assert "19 graphs written" in capsys.readouterr().out


SMALL_COMPARE = [
    "compare",
    "--graphs-per-group",
    "1",
    "--vertex-counts",
    "10",
    "20",
    *FAST_ACO,
]


class TestRunLifecycleOptions:
    def test_full_conflicts_with_graphs_per_group(self, capsys):
        assert main(["compare", "--full", "--graphs-per-group", "2"]) == 2
        assert "--full" in capsys.readouterr().err

    def test_resume_requires_run_dir(self, capsys):
        assert main([*SMALL_COMPARE, "--resume"]) == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_default_run_isolates_injected_failure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FAIL", "AntColony:att-like-n10-*")
        assert main(SMALL_COMPARE) == 0
        out = capsys.readouterr().out
        assert "1 of 10 cells failed" in out

    def test_strict_run_fails_fast_on_injected_failure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FAIL", "AntColony:att-like-n10-*")
        assert main([*SMALL_COMPARE, "--strict"]) == 2
        assert "failed" in capsys.readouterr().err

    def test_progress_flag_writes_progress_and_summary(self, capsys):
        assert main([*SMALL_COMPARE, "--progress"]) == 0
        err = capsys.readouterr().err
        assert "cells 10/10" in err
        assert "run: 10/10 cells" in err

    def test_interrupt_then_resume_replays_journal(self, tmp_path, capsys, monkeypatch):
        run_dir = tmp_path / "run"
        monkeypatch.setenv("REPRO_ENGINE_MAX_CELLS", "4")
        assert main([*SMALL_COMPARE, "--run-dir", str(run_dir)]) == 2
        assert "interrupted" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_ENGINE_MAX_CELLS")
        code = main([*SMALL_COMPARE, "--run-dir", str(run_dir), "--resume"])
        captured = capsys.readouterr()
        assert code == 0
        assert "4 replayed" in captured.err
        # The resumed aggregate tables match an uninterrupted run on every
        # deterministic metric.
        plain = main(SMALL_COMPARE)
        assert plain == 0
        reference = capsys.readouterr().out
        assert deterministic_tables(captured.out) == deterministic_tables(reference)


class TestCacheCommand:
    def _warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main([*SMALL_COMPARE, "--cache-dir", str(cache_dir)]) == 0
        return cache_dir

    def test_stats(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries: 10" in out
        assert "total size:" in out

    def test_prune_by_size(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", str(cache_dir), "--max-size", "0"]) == 0
        assert "pruned 10 entries" in capsys.readouterr().out
        assert main(["cache", "stats", str(cache_dir)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_prune_by_age_keeps_fresh_entries(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", str(cache_dir), "--older-than", "1h"]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out

    def test_prune_requires_criterion(self, tmp_path, capsys):
        assert main(["cache", "prune", str(tmp_path)]) == 2
        assert "--max-size" in capsys.readouterr().err

    def test_stats_output_units_round_trip_into_prune(self, tmp_path, capsys):
        # `cache stats` prints sizes as KiB/MiB; prune must accept them back.
        cache_dir = self._warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", str(cache_dir), "--max-size", "1.5KiB"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out

    def test_bad_size_and_duration_are_errors(self, tmp_path, capsys):
        assert main(["cache", "prune", str(tmp_path), "--max-size", "lots"]) == 2
        assert "invalid size" in capsys.readouterr().err
        assert main(["cache", "prune", str(tmp_path), "--older-than", "soon"]) == 2
        assert "invalid duration" in capsys.readouterr().err
