"""Regression tests: ``run_with_deadline`` context selection.

PR 6 introduced two deadline mechanisms — an inline ``SIGALRM`` interval
timer (POSIX main thread only) and a pooled watchdog thread (everywhere
else).  A long-lived server drives deadline-bounded work from executor
threads and from asyncio loop callbacks, where the alarm path would either
raise ``ValueError`` (``signal.signal`` outside the main thread) or
interrupt the event loop's own machinery.  These tests pin down that the
watchdog fallback is picked automatically in both contexts — previously it
was only exercised incidentally through the engine's retry path.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.utils import pool
from repro.utils.pool import run_with_deadline


def _block(seconds: float):
    def fn():
        time.sleep(seconds)
        return "done"

    return fn


class TestNonMainThread:
    """Calls from worker threads must use the watchdog, not SIGALRM."""

    def _call_in_thread(self, fn, timeout):
        box = {}

        def runner():
            try:
                box["result"] = run_with_deadline(fn, timeout)
            except BaseException as exc:  # pragma: no cover - the regression
                box["error"] = exc

        thread = threading.Thread(target=runner)
        thread.start()
        thread.join(10)
        assert not thread.is_alive()
        if "error" in box:
            raise box["error"]
        return box["result"]

    def test_fast_call_completes(self):
        assert self._call_in_thread(lambda: 42, timeout=5.0) == (True, 42)

    def test_hang_times_out(self):
        completed, value = self._call_in_thread(_block(10.0), timeout=0.1)
        assert completed is False and value is None

    def test_alarm_path_never_engaged(self, monkeypatch):
        def forbidden(fn, timeout):  # pragma: no cover - the regression
            raise AssertionError("SIGALRM path used outside the main thread")

        monkeypatch.setattr(pool, "_run_with_alarm", forbidden)
        assert self._call_in_thread(lambda: "ok", timeout=1.0) == (True, "ok")


class TestRunningEventLoop:
    """Calls from a thread running an asyncio loop must use the watchdog.

    The serving front end's loop thread may make synchronous
    deadline-bounded calls (cache verification, admission-time checks); an
    inline ``_DeadlineAlarm`` there could land inside the loop's dispatch
    machinery instead of the bounded work.
    """

    def test_alarm_path_skipped_inside_loop(self, monkeypatch):
        engaged = []

        real = pool._run_with_alarm

        def spy(fn, timeout):  # pragma: no cover - the regression
            engaged.append(True)
            return real(fn, timeout)

        monkeypatch.setattr(pool, "_run_with_alarm", spy)

        async def main():
            # Synchronous call from a loop callback context.
            return run_with_deadline(lambda: "served", 1.0)

        assert asyncio.run(main()) == (True, "served")
        assert engaged == []

    def test_timeout_still_enforced_inside_loop(self):
        async def main():
            return run_with_deadline(_block(10.0), 0.1)

        completed, value = asyncio.run(main())
        assert completed is False and value is None

    def test_exceptions_propagate_inside_loop(self):
        async def main():
            return run_with_deadline(
                lambda: (_ for _ in ()).throw(RuntimeError("boom")), 1.0
            )

        with pytest.raises(RuntimeError, match="boom"):
            asyncio.run(main())

    def test_main_thread_without_loop_still_uses_alarm(self, monkeypatch):
        """The fast inline path stays the default for plain CLI runs."""
        import signal

        if not hasattr(signal, "setitimer"):  # pragma: no cover - non-POSIX
            pytest.skip("SIGALRM path is POSIX-only")
        engaged = []
        real = pool._run_with_alarm

        def spy(fn, timeout):
            engaged.append(True)
            return real(fn, timeout)

        monkeypatch.setattr(pool, "_run_with_alarm", spy)
        assert run_with_deadline(lambda: 7, 1.0) == (True, 7)
        assert engaged == [True]
