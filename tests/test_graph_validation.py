"""Tests for graph invariant checks."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_dag
from repro.graph.validation import check_consistency, require_dag, require_nonempty
from repro.utils.exceptions import CycleError, GraphError


def test_require_nonempty_passes_for_nonempty(diamond):
    require_nonempty(diamond)


def test_require_nonempty_raises_for_empty():
    with pytest.raises(GraphError):
        require_nonempty(DiGraph())


def test_require_dag_passes(diamond):
    require_dag(diamond)


def test_require_dag_raises_with_cycle():
    g = DiGraph(edges=[(1, 2), (2, 1)])
    with pytest.raises(CycleError) as exc_info:
        require_dag(g)
    assert exc_info.value.cycle is not None


def test_check_consistency_on_random_graphs():
    for seed in range(3):
        check_consistency(gnp_dag(20, 0.2, seed=seed))


def test_check_consistency_after_mutations(diamond):
    diamond.remove_vertex("b")
    diamond.add_edge("a", "d")
    check_consistency(diamond)
