"""Tests for ACOParams validation and helpers."""

from __future__ import annotations

import pytest

from repro.aco.params import ACOParams, SELECTION_RULES
from repro.utils.exceptions import ValidationError


class TestDefaults:
    def test_default_construction(self):
        p = ACOParams()
        assert p.n_ants == 10
        assert p.n_tours == 10
        assert p.selection in SELECTION_RULES

    def test_paper_defaults(self):
        p = ACOParams.paper_defaults()
        assert (p.alpha, p.beta) == (1.0, 3.0)
        assert p.n_tours == 10
        assert p.nd_width == 1.0

    def test_paper_best_quality(self):
        p = ACOParams.paper_best_quality()
        assert (p.alpha, p.beta) == (3.0, 5.0)
        assert p.nd_width == pytest.approx(1.1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_ants": 0},
            {"n_tours": 0},
            {"alpha": -1},
            {"beta": -0.5},
            {"rho": 1.5},
            {"rho": -0.1},
            {"tau0": 0},
            {"tau_min": -1},
            {"tau0": 0.5, "tau_min": 1.0},
            {"deposit": -1},
            {"nd_width": -0.1},
            {"node_width_default": 0},
            {"selection": "tournament"},
            {"eta_epsilon": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ACOParams(**kwargs)

    def test_boundary_values_accepted(self):
        ACOParams(rho=0.0)
        ACOParams(rho=1.0)
        ACOParams(nd_width=0.0)
        ACOParams(alpha=0.0, beta=0.0)


class TestHelpers:
    def test_replace_creates_new_validated_instance(self):
        p = ACOParams()
        q = p.replace(alpha=2.0, seed=42)
        assert q.alpha == 2.0 and q.seed == 42
        assert p.alpha == 1.0  # original untouched
        with pytest.raises(ValidationError):
            p.replace(rho=2.0)

    def test_as_dict_round_trip(self):
        p = ACOParams(alpha=2.5, seed=3)
        q = ACOParams(**p.as_dict())
        assert p == q

    def test_frozen(self):
        p = ACOParams()
        with pytest.raises(AttributeError):
            p.alpha = 9.0  # type: ignore[misc]
