"""Tests for the ACO analysis utilities."""

from __future__ import annotations

import pytest

from repro.aco.analysis import (
    ImprovementReport,
    RunStatistics,
    convergence_curve,
    improvement_over_baseline,
    run_statistics,
    tours_to_convergence,
)
from repro.aco.layering_aco import aco_layering_detailed
from repro.aco.params import ACOParams
from repro.graph.generators import att_like_dag
from repro.layering.minwidth import minwidth_layering_sweep
from repro.utils.exceptions import ValidationError

FAST = ACOParams(n_ants=3, n_tours=4, seed=0)


@pytest.fixture(scope="module")
def result():
    return aco_layering_detailed(att_like_dag(30, seed=1), FAST)


class TestConvergence:
    def test_curve_is_monotone_and_matches_history_length(self, result):
        curve = convergence_curve(result)
        assert len(curve) == FAST.n_tours
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_curve_ends_at_or_below_final_best(self, result):
        curve = convergence_curve(result)
        # The global best also considers the seed layering, so the curve's
        # final value can never exceed the reported objective.
        assert curve[-1] <= result.metrics.objective + 1e-12

    def test_tours_to_convergence_in_range(self, result):
        t = tours_to_convergence(result)
        assert 1 <= t <= FAST.n_tours


class TestImprovement:
    def test_report_fields(self):
        g = att_like_dag(30, seed=2)
        report = improvement_over_baseline(g, FAST)
        assert isinstance(report, ImprovementReport)
        assert report.baseline_name == "LPL"
        assert report.width_ratio > 0
        assert report.height_ratio >= 1.0  # LPL is height-optimal
        # Seeded with LPL, the ACO can never have a worse objective.
        assert report.objective_gain >= -1e-12

    def test_custom_baseline(self):
        g = att_like_dag(25, seed=3)
        report = improvement_over_baseline(
            g, FAST, baseline=minwidth_layering_sweep, baseline_name="MinWidth"
        )
        assert report.baseline_name == "MinWidth"
        # MinWidth stacks many narrow layers, so the ACO is much flatter.
        assert report.height_ratio <= 1.0


class TestRunStatistics:
    def test_summary_consistency(self):
        g = att_like_dag(25, seed=4)
        stats = run_statistics(g, FAST, n_runs=3, base_seed=10)
        assert isinstance(stats, RunStatistics)
        assert stats.n_runs == 3
        assert stats.worst <= stats.mean <= stats.best
        assert stats.spread == pytest.approx(stats.best - stats.worst)
        assert stats.std >= 0
        assert 1 <= stats.mean_tours_to_convergence <= FAST.n_tours

    def test_single_run(self):
        g = att_like_dag(20, seed=5)
        stats = run_statistics(g, FAST, n_runs=1)
        assert stats.std == 0.0
        assert stats.best == stats.worst == stats.mean

    def test_invalid_n_runs(self):
        g = att_like_dag(15, seed=6)
        with pytest.raises(ValidationError):
            run_statistics(g, FAST, n_runs=0)
