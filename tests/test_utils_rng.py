"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, random_permutation, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=10)
        b = as_generator(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=10)
        b = as_generator(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_existing_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert as_generator(rng) is rng


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(3, 5)) == 5

    def test_zero_children(self):
        assert spawn_generators(3, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(3, -1)

    def test_children_are_independent_and_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_generators(11, 4)]
        second = [g.integers(0, 10**9) for g in spawn_generators(11, 4)]
        assert first == second
        assert len(set(first)) == 4  # overwhelmingly likely to be distinct

    def test_spawn_from_generator_instance(self):
        rng = np.random.default_rng(5)
        children = spawn_generators(rng, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.Generator) for c in children)


class TestRandomPermutation:
    def test_is_permutation(self):
        items = list("abcdefgh")
        result = random_permutation(items, as_generator(0))
        assert sorted(result) == sorted(items)

    def test_deterministic_given_seed(self):
        items = list(range(20))
        a = random_permutation(items, as_generator(9))
        b = random_permutation(items, as_generator(9))
        assert a == b

    def test_accepts_iterables(self):
        result = random_permutation((i for i in range(5)), as_generator(0))
        assert sorted(result) == [0, 1, 2, 3, 4]

    def test_empty(self):
        assert random_permutation([], as_generator(0)) == []
