"""Tests for LayerWidths bookkeeping and assignment scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aco.heuristic import (
    LayerWidths,
    evaluate_assignment,
    evaluate_with_widths,
)
from repro.aco.problem import LayeringProblem
from repro.graph.generators import att_like_dag, gnp_dag
from repro.layering.metrics import evaluate_layering
from repro.utils.exceptions import ValidationError
from repro.utils.rng import as_generator


def random_walk_moves(problem: LayeringProblem, assignment: np.ndarray, rng, n_moves: int):
    """Yield (vertex, old_layer, new_layer) random feasible moves, applying them."""
    for _ in range(n_moves):
        v = int(rng.integers(0, problem.n_vertices))
        lo, hi = problem.layer_span(assignment, v)
        new = int(rng.integers(lo, hi + 1))
        old = int(assignment[v])
        yield v, old, new
        assignment[v] = new


class TestLayerWidthsConstruction:
    def test_real_widths_and_occupancy(self, diamond):
        problem = LayeringProblem.from_graph(diamond)
        widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
        assert widths.real[1:].sum() == pytest.approx(problem.widths.sum())
        assert widths.occupancy[1:].sum() == problem.n_vertices

    def test_crossing_counts(self, long_edge_graph):
        problem = LayeringProblem.from_graph(long_edge_graph, n_layers=4)
        # Initial stretched layering equals LPL (heights match), so the
        # shortcut edge (0, 3) crosses layers 2 and 3.
        widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
        assert widths.crossing[2] == 1
        assert widths.crossing[3] == 1
        assert widths.crossing[1] == 0

    def test_width_of_includes_dummies(self, long_edge_graph):
        problem = LayeringProblem.from_graph(long_edge_graph, n_layers=4, nd_width=0.5)
        widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
        assert widths.width_of(2) == pytest.approx(1.5)

    def test_totals_shape(self):
        g = att_like_dag(20, seed=0)
        problem = LayeringProblem.from_graph(g)
        widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
        assert widths.totals().shape == (problem.n_layers + 1,)


class TestIncrementalMoves:
    @pytest.mark.parametrize("seed", range(5))
    def test_apply_move_matches_recompute(self, seed):
        g = att_like_dag(30, seed=seed)
        problem = LayeringProblem.from_graph(g)
        rng = as_generator(seed)
        assignment = problem.initial_assignment.copy()
        widths = LayerWidths.from_assignment(problem, assignment)
        for v, old, new in random_walk_moves(problem, assignment, rng, n_moves=200):
            if old != new:
                widths.apply_move(v, old, new, assignment)
        fresh = LayerWidths.from_assignment(problem, assignment)
        assert np.allclose(widths.real, fresh.real)
        assert np.array_equal(widths.crossing, fresh.crossing)
        assert np.array_equal(widths.occupancy, fresh.occupancy)

    def test_same_layer_move_is_noop(self, diamond):
        problem = LayeringProblem.from_graph(diamond)
        assignment = problem.initial_assignment.copy()
        widths = LayerWidths.from_assignment(problem, assignment)
        before = widths.totals().copy()
        widths.apply_move(0, int(assignment[0]), int(assignment[0]), assignment)
        assert np.allclose(widths.totals(), before)

    def test_copy_independent(self, diamond):
        problem = LayeringProblem.from_graph(diamond)
        widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
        clone = widths.copy()
        clone.real[1] += 10
        assert widths.real[1] != clone.real[1]


class TestEta:
    def test_eta_is_reciprocal_of_projected_width(self, diamond):
        problem = LayeringProblem.from_graph(diamond)
        assignment = problem.initial_assignment
        widths = LayerWidths.from_assignment(problem, assignment)
        idx_a = problem.vertices.index("a")
        lo, hi = problem.layer_span(assignment, idx_a)
        current = int(assignment[idx_a])
        eta = widths.eta(idx_a, lo, hi, current, epsilon=1e-9)
        # The current layer's value is 1 / (its existing width, already
        # containing the vertex); other layers add the vertex's width.
        assert eta[current - lo] == pytest.approx(1.0 / widths.width_of(current))

    def test_epsilon_must_be_positive(self, diamond):
        problem = LayeringProblem.from_graph(diamond)
        widths = LayerWidths.from_assignment(problem, problem.initial_assignment)
        with pytest.raises(ValidationError):
            widths.eta(0, 1, 2, 1, epsilon=0.0)


class TestScoring:
    @pytest.mark.parametrize("seed", range(4))
    def test_evaluate_assignment_matches_metrics_module(self, seed):
        g = gnp_dag(25, 0.15, seed=seed)
        problem = LayeringProblem.from_graph(g, nd_width=1.0)
        score = evaluate_assignment(problem, problem.initial_assignment)
        layering = problem.assignment_to_layering(problem.initial_assignment, normalize=True)
        metrics = evaluate_layering(g, layering, nd_width=1.0)
        assert score.height == metrics.height
        assert score.width_including_dummies == pytest.approx(metrics.width_including_dummies)
        assert score.dummy_vertex_count == metrics.dummy_vertex_count
        assert score.objective == pytest.approx(metrics.objective)

    @pytest.mark.parametrize("seed", range(4))
    def test_evaluate_with_widths_matches_from_scratch(self, seed):
        g = att_like_dag(30, seed=seed)
        problem = LayeringProblem.from_graph(g)
        rng = as_generator(seed + 100)
        assignment = problem.initial_assignment.copy()
        widths = LayerWidths.from_assignment(problem, assignment)
        for v, old, new in random_walk_moves(problem, assignment, rng, n_moves=150):
            if old != new:
                widths.apply_move(v, old, new, assignment)
        fast = evaluate_with_widths(problem, assignment, widths)
        slow = evaluate_assignment(problem, assignment)
        assert fast.height == slow.height
        assert fast.width_including_dummies == pytest.approx(slow.width_including_dummies)
        assert fast.dummy_vertex_count == slow.dummy_vertex_count
        assert fast.objective == pytest.approx(slow.objective)

    def test_nd_width_zero(self):
        g = att_like_dag(20, seed=1)
        problem = LayeringProblem.from_graph(g, nd_width=0.0)
        score = evaluate_assignment(problem, problem.initial_assignment)
        layering = problem.assignment_to_layering(problem.initial_assignment)
        metrics = evaluate_layering(g, layering, nd_width=0.0)
        assert score.width_including_dummies == pytest.approx(metrics.width_including_dummies)
