"""Cross-module integration tests: every algorithm, end to end, on shared graphs."""

from __future__ import annotations

import pytest

from repro import (
    ACOParams,
    aco_layering,
    coffman_graham_layering,
    evaluate_layering,
    longest_path_layering,
    make_proper,
    minimum_dummy_layering,
    minwidth_layering_sweep,
    promote_layering,
    sugiyama_layout,
)
from repro.aco.parallel import parallel_aco_layering
from repro.graph.generators import att_like_dag, gnp_dag, series_parallel_dag
from repro.layering.metrics import dummy_vertex_count, total_edge_span

FAST = ACOParams(n_ants=3, n_tours=3, seed=0)


def all_algorithms():
    return {
        "LPL": longest_path_layering,
        "LPL+PL": lambda g: promote_layering(g, longest_path_layering(g)),
        "MinWidth": minwidth_layering_sweep,
        "MinWidth+PL": lambda g: promote_layering(g, minwidth_layering_sweep(g)),
        "CoffmanGraham": lambda g: coffman_graham_layering(g, 4),
        "MinDummy": minimum_dummy_layering,
        "AntColony": lambda g: aco_layering(g, FAST),
    }


GRAPHS = [
    att_like_dag(20, seed=0),
    att_like_dag(45, seed=1),
    gnp_dag(25, 0.12, seed=2),
    series_parallel_dag(25, seed=3),
]


class TestAllAlgorithmsOnSharedGraphs:
    @pytest.mark.parametrize("graph_index", range(len(GRAPHS)))
    def test_all_layerings_valid(self, graph_index):
        g = GRAPHS[graph_index]
        for name, algorithm in all_algorithms().items():
            layering = algorithm(g)
            layering.validate(g)
            metrics = evaluate_layering(g, layering)
            assert metrics.height >= 1
            assert metrics.width_including_dummies >= 1

    @pytest.mark.parametrize("graph_index", range(len(GRAPHS)))
    def test_lpl_has_minimum_height(self, graph_index):
        g = GRAPHS[graph_index]
        algorithms = all_algorithms()
        lpl_height = algorithms["LPL"](g).height
        for name, algorithm in algorithms.items():
            assert algorithm(g).height >= lpl_height

    @pytest.mark.parametrize("graph_index", range(len(GRAPHS)))
    def test_min_dummy_truly_minimises_span(self, graph_index):
        g = GRAPHS[graph_index]
        algorithms = all_algorithms()
        optimal_span = total_edge_span(g, algorithms["MinDummy"](g))
        for name, algorithm in algorithms.items():
            assert total_edge_span(g, algorithm(g)) >= optimal_span

    def test_promotion_improves_or_preserves_dummies_everywhere(self):
        for g in GRAPHS:
            lpl = longest_path_layering(g)
            assert dummy_vertex_count(g, promote_layering(g, lpl)) <= dummy_vertex_count(g, lpl)


class TestAcoAgainstBaselines:
    def test_aco_objective_at_least_lpl(self):
        for g in GRAPHS:
            aco_metrics = evaluate_layering(g, aco_layering(g, FAST))
            lpl_metrics = evaluate_layering(g, longest_path_layering(g))
            assert aco_metrics.objective >= lpl_metrics.objective - 1e-12

    def test_parallel_colonies_at_least_single(self):
        g = att_like_dag(25, seed=5)
        single = evaluate_layering(g, aco_layering(g, FAST)).objective
        multi = parallel_aco_layering(g, FAST, n_colonies=3, executor="serial").objective
        assert multi >= single - 1e-12


class TestDrawingPipelineIntegration:
    def test_pipeline_with_every_named_method(self):
        g = att_like_dag(22, seed=6)
        for method in ("lpl", "lpl+pl", "minwidth", "minwidth+pl", "min-dummy"):
            drawing = sugiyama_layout(g, layering_method=method)
            assert drawing.proper.layering.is_proper(drawing.proper.graph)

    def test_proper_graph_consistency(self):
        g = att_like_dag(30, seed=7)
        layering = aco_layering(g, FAST)
        proper = make_proper(g, layering)
        assert proper.n_dummies == dummy_vertex_count(g, layering)
        assert proper.layering.is_proper(proper.graph)
