"""Tests for the Layering value type."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.utils.exceptions import LayeringError


class TestConstruction:
    def test_basic(self):
        lay = Layering({"a": 2, "b": 1})
        assert lay["a"] == 2
        assert lay.layer_of("b") == 1
        assert len(lay) == 2
        assert "a" in lay and "z" not in lay

    def test_float_integral_layers_accepted(self):
        lay = Layering({"a": 2.0})
        assert lay["a"] == 2

    def test_non_integral_layer_rejected(self):
        with pytest.raises(LayeringError):
            Layering({"a": 1.5})

    def test_layer_below_one_rejected(self):
        with pytest.raises(LayeringError):
            Layering({"a": 0})

    def test_missing_vertex_lookup_raises(self):
        with pytest.raises(LayeringError):
            Layering({})["missing"]


class TestDerivedStructure:
    def test_height_and_min_layer(self):
        lay = Layering({"a": 3, "b": 7})
        assert lay.height == 7
        assert lay.min_layer == 3

    def test_empty_layering(self):
        lay = Layering({})
        assert lay.height == 0
        assert lay.min_layer == 0
        assert lay.used_layers() == []

    def test_layers_mapping_covers_gaps(self):
        lay = Layering({"a": 1, "b": 3})
        layers = lay.layers()
        assert layers[1] == ["a"]
        assert layers[2] == []
        assert layers[3] == ["b"]

    def test_vertices_on(self):
        lay = Layering({"a": 1, "b": 1, "c": 2})
        assert set(lay.vertices_on(1)) == {"a", "b"}
        assert lay.vertices_on(5) == []

    def test_edge_span(self):
        lay = Layering({"u": 4, "v": 1})
        assert lay.edge_span("u", "v") == 3

    def test_items_and_to_dict(self):
        lay = Layering({"a": 1})
        assert dict(lay.items()) == {"a": 1}
        d = lay.to_dict()
        d["a"] = 99
        assert lay["a"] == 1  # to_dict returns a copy


class TestTransformations:
    def test_normalized_removes_gaps(self):
        lay = Layering({"a": 2, "b": 5, "c": 9}).normalized()
        assert lay["a"] == 1 and lay["b"] == 2 and lay["c"] == 3

    def test_normalized_preserves_order(self):
        lay = Layering({"a": 4, "b": 2, "c": 2}).normalized()
        assert lay["b"] == lay["c"] == 1
        assert lay["a"] == 2

    def test_normalized_idempotent(self):
        lay = Layering({"a": 3, "b": 8})
        assert lay.normalized().normalized() == lay.normalized()

    def test_shifted(self):
        lay = Layering({"a": 1, "b": 2}).shifted(3)
        assert lay["a"] == 4 and lay["b"] == 5

    def test_shift_below_one_rejected(self):
        with pytest.raises(LayeringError):
            Layering({"a": 2}).shifted(-2)

    def test_copy_is_equal_but_independent(self):
        lay = Layering({"a": 1})
        c = lay.copy()
        assert c == lay
        assert c is not lay

    def test_equality_with_mapping(self):
        assert Layering({"a": 1}) == {"a": 1}
        assert Layering({"a": 1}) != {"a": 2}
        assert Layering({"a": 1}) != 17


class TestValidity:
    def test_valid_layering(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        lay.validate(diamond)
        assert lay.is_valid(diamond)

    def test_missing_vertex(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2})
        assert not lay.is_valid(diamond)
        with pytest.raises(LayeringError, match="without a layer"):
            lay.validate(diamond)

    def test_extra_vertex(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1, "zzz": 1})
        with pytest.raises(LayeringError, match="not in the graph"):
            lay.validate(diamond)

    def test_edge_not_pointing_down(self, diamond):
        lay = Layering({"a": 1, "b": 2, "c": 2, "d": 3})
        with pytest.raises(LayeringError, match="does not point downwards"):
            lay.validate(diamond)

    def test_horizontal_edge_invalid(self):
        g = DiGraph(edges=[("u", "v")])
        lay = Layering({"u": 1, "v": 1})
        assert not lay.is_valid(g)

    def test_is_proper(self, long_edge_graph):
        proper = Layering({0: 4, 1: 3, 2: 2, 3: 1})
        assert not proper.is_proper(long_edge_graph)  # edge (0, 3) spans 3
        g = DiGraph(edges=[(0, 1), (1, 2)])
        assert Layering({0: 3, 1: 2, 2: 1}).is_proper(g)

    def test_repr(self):
        assert "height=2" in repr(Layering({"a": 2, "b": 1}))
