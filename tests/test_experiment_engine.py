"""Tests for the shared parallel experiment engine and its result cache."""

from __future__ import annotations

import pytest

from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus
from repro.experiments.cache import ResultCache, cache_key, canonical_json, content_digest
from repro.experiments.engine import (
    BUILTIN_METHODS,
    CellResult,
    ExperimentEngine,
    MethodSpec,
    WorkUnit,
    default_method_specs,
)
from repro.experiments.figures import figure4
from repro.experiments.runner import run_comparison
from repro.experiments.tuning import alpha_beta_sweep, nd_width_sweep
from repro.graph.generators import att_like_dag
from repro.layering.longest_path import longest_path_layering
from repro.utils.exceptions import ValidationError

CORPUS = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20))
FAST_ACO = ACOParams(n_ants=2, n_tours=2, seed=0)


def _comparison_key(comparison):
    """The deterministic part of a comparison (everything but running_time)."""
    return [
        (r.algorithm, r.graph_name, r.vertex_count, r.metrics) for r in comparison.results
    ]


def _run(engine=None):
    return run_comparison(CORPUS, default_method_specs(aco_params=FAST_ACO), engine=engine)


class TestMethodSpec:
    def test_builtin_resolves_registry_function(self):
        spec = MethodSpec.builtin("LPL")
        assert spec.resolve() is BUILTIN_METHODS["LPL"]
        assert spec.shippable and spec.cacheable

    def test_unknown_builtin_rejected(self):
        with pytest.raises(ValidationError):
            MethodSpec.builtin("NoSuchMethod")

    def test_ant_colony_carries_params(self):
        spec = MethodSpec.ant_colony(FAST_ACO)
        assert spec.aco_params["n_ants"] == 2
        assert spec.aco_params["seed"] == 0

    def test_dict_round_trip(self):
        for spec in (MethodSpec.builtin("MinWidth+PL"), MethodSpec.ant_colony(FAST_ACO)):
            back = MethodSpec.from_dict(spec.to_dict())
            assert back == spec

    def test_callable_spec_not_shippable(self):
        spec = MethodSpec.from_callable("Custom", longest_path_layering)
        assert not spec.shippable and not spec.cacheable
        with pytest.raises(ValidationError):
            spec.to_dict()
        with pytest.raises(ValidationError):
            spec.cache_token()

    def test_resolved_methods_produce_valid_layerings(self):
        g = att_like_dag(20, seed=1)
        for name, spec in default_method_specs(aco_params=FAST_ACO).items():
            spec.resolve()(g).validate(g)

    def test_default_specs_match_default_algorithm_names(self):
        assert set(default_method_specs()) == {
            "LPL",
            "LPL+PL",
            "MinWidth",
            "MinWidth+PL",
            "AntColony",
        }
        assert "AntColony" not in default_method_specs(include_aco=False)


class TestEngineValidation:
    def test_bad_executor_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentEngine(executor="gpu")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentEngine(jobs=0)

    def test_from_options_defaults(self, tmp_path):
        engine = ExperimentEngine.from_options()
        assert engine.executor == "serial" and engine.cache is None
        engine = ExperimentEngine.from_options(
            executor="thread", jobs=2, cache_dir=str(tmp_path)
        )
        assert engine.executor == "thread"
        assert engine.cache is not None


class TestEngineDeterminism:
    def test_thread_matches_serial(self):
        serial = _run(ExperimentEngine(executor="serial"))
        threaded = _run(ExperimentEngine(executor="thread", jobs=3))
        assert _comparison_key(serial) == _comparison_key(threaded)

    @pytest.mark.slow
    def test_process_matches_serial(self):
        serial = _run(ExperimentEngine(executor="serial"))
        procs = _run(ExperimentEngine(executor="process", jobs=2))
        assert _comparison_key(serial) == _comparison_key(procs)

    def test_result_order_is_submission_order(self):
        units = [
            WorkUnit(graph=entry.graph, method=spec, graph_name=entry.name, label=name)
            for entry in CORPUS
            for name, spec in default_method_specs(aco_params=FAST_ACO).items()
        ]
        results = ExperimentEngine(executor="thread", jobs=4).run(units)
        assert [(r.graph_name, r.algorithm) for r in results] == [
            (u.graph_name, u.algorithm) for u in units
        ]

    def test_default_engine_matches_legacy_run_comparison(self):
        # The spec path must reproduce the historical callable path exactly.
        from repro.experiments.runner import default_algorithms

        legacy = run_comparison(CORPUS, default_algorithms(aco_params=FAST_ACO))
        specs = _run()
        assert _comparison_key(legacy) == _comparison_key(specs)

    def test_callable_methods_work_on_every_executor(self):
        algorithms = {"OnlyLPL": longest_path_layering}
        serial = run_comparison(CORPUS, algorithms)
        for executor in ("thread", "process"):
            other = run_comparison(
                CORPUS, algorithms, engine=ExperimentEngine(executor=executor, jobs=2)
            )
            assert _comparison_key(serial) == _comparison_key(other)


class TestResultCache:
    def test_cache_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        units = [
            WorkUnit(graph=CORPUS[0].graph, method=MethodSpec.builtin("LPL")),
            WorkUnit(graph=CORPUS[0].graph, method=MethodSpec.ant_colony(FAST_ACO)),
        ]
        cold = engine.run(units)
        assert [r.cached for r in cold] == [False, False]
        assert len(cache) == 2
        warm = engine.run(units)
        assert [r.cached for r in warm] == [True, True]
        assert [r.metrics for r in warm] == [r.metrics for r in cold]
        assert [r.running_time for r in warm] == [r.running_time for r in cold]

    def test_warm_cache_skips_recomputation(self, tmp_path, monkeypatch):
        import repro.experiments.engine as engine_module

        cache = ResultCache(tmp_path)
        calls = []
        real_execute = engine_module._execute_unit
        monkeypatch.setattr(
            engine_module,
            "_execute_unit",
            lambda unit: calls.append(unit) or real_execute(unit),
        )
        comparison = _run(ExperimentEngine(cache=cache))
        assert len(calls) == len(comparison.results)
        calls.clear()
        warm = _run(ExperimentEngine(cache=cache))
        assert calls == []  # every cell served from the cache
        assert _comparison_key(comparison) == _comparison_key(warm)

    def test_key_depends_on_graph_method_and_nd_width(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        base = WorkUnit(graph=CORPUS[0].graph, method=MethodSpec.ant_colony(FAST_ACO))
        engine.run([base])
        variants = [
            WorkUnit(graph=CORPUS[1].graph, method=MethodSpec.ant_colony(FAST_ACO)),
            WorkUnit(
                graph=CORPUS[0].graph,
                method=MethodSpec.ant_colony(FAST_ACO.replace(seed=7)),
            ),
            WorkUnit(
                graph=CORPUS[0].graph, method=MethodSpec.ant_colony(FAST_ACO), nd_width=0.5
            ),
        ]
        results = engine.run(variants)
        assert [r.cached for r in results] == [False, False, False]
        assert engine.run([base])[0].cached is True

    def test_callable_methods_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        unit = WorkUnit(
            graph=CORPUS[0].graph,
            method=MethodSpec.from_callable("Custom", longest_path_layering),
        )
        assert engine.run([unit])[0].cached is False
        assert engine.run([unit])[0].cached is False
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(content_digest({"x": 1}), {"name": "LPL", "aco_params": None}, 1.0)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("not json", encoding="utf-8")
        assert cache.get(key) is None
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        assert cache.get(key) is None

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert content_digest({"b": 1, "a": 2}) == content_digest({"a": 2, "b": 1})

    def test_key_depends_on_package_version(self, monkeypatch):
        # A release that changes an algorithm's behaviour must orphan every
        # cached entry rather than serve stale metrics.
        import repro

        token = {"name": "LPL", "aco_params": None}
        before = cache_key(content_digest({"x": 1}), token, 1.0)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert cache_key(content_digest({"x": 1}), token, 1.0) != before


class TestCacheMaintenance:
    def _fill(self, tmp_path, *, ages=(0, 0, 0)):
        """A cache with one LPL entry per corpus graph, mtimes staggered by *ages* (s)."""
        import os
        import time as time_module

        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20, 30))
        units = [
            WorkUnit(graph=e.graph, method=MethodSpec.builtin("LPL"), graph_name=e.name)
            for e in corpus[: len(ages)]
        ]
        engine.run(units)
        now = time_module.time()
        paths = sorted(tmp_path.glob("??/*.json"))
        for path, age in zip(paths, ages):
            os.utime(path, (now - age, now - age))
        return cache

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = self._fill(tmp_path)
        stats = cache.stats()
        assert stats.entries == len(cache) == 3
        assert stats.total_bytes > 0
        assert stats.oldest_mtime is not None

    def test_stats_on_missing_directory(self, tmp_path):
        stats = ResultCache(tmp_path / "nope").stats()
        assert stats.entries == 0 and stats.total_bytes == 0
        assert stats.oldest_mtime is None

    def test_prune_by_age(self, tmp_path):
        cache = self._fill(tmp_path, ages=(7200, 7200, 0))
        result = cache.prune(older_than_seconds=3600)
        assert result.removed == 2 and result.kept == 1
        assert len(cache) == 1

    def test_prune_by_size_evicts_oldest_first(self, tmp_path):
        cache = self._fill(tmp_path, ages=(300, 200, 100))
        # A budget of one (largest) entry keeps exactly the newest file.
        largest = max(p.stat().st_size for p in tmp_path.glob("??/*.json"))
        result = cache.prune(max_size_bytes=largest)
        assert result.removed == 2
        # The newest entry (age 100 s) survives the size squeeze.
        import time as time_module

        survivors = [p.stat().st_mtime for p in tmp_path.glob("??/*.json")]
        assert len(survivors) == 1
        assert survivors[0] > time_module.time() - 150

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = self._fill(tmp_path)
        result = cache.prune(max_size_bytes=0)
        assert result.kept == 0 and len(cache) == 0
        # Shard directories left empty were removed too.
        assert list(tmp_path.glob("??")) == []

    def test_pruned_entries_are_cache_misses_not_errors(self, tmp_path):
        cache = self._fill(tmp_path)
        cache.prune(max_size_bytes=0)
        corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(10,))
        unit = WorkUnit(graph=corpus[0].graph, method=MethodSpec.builtin("LPL"))
        (cell,) = ExperimentEngine(cache=cache).run([unit])
        assert cell.cached is False and cell.ok

    def test_prune_requires_a_criterion(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultCache(tmp_path).prune()

    def test_prune_rejects_negative_values(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultCache(tmp_path).prune(max_size_bytes=-1)
        with pytest.raises(ValidationError):
            ResultCache(tmp_path).prune(older_than_seconds=-1)


class TestSweepAndFigureDispatch:
    def test_alpha_beta_sweep_engine_invariant(self):
        serial = alpha_beta_sweep(CORPUS, alphas=(1, 2), betas=(1,), base_params=FAST_ACO)
        threaded = alpha_beta_sweep(
            CORPUS,
            alphas=(1, 2),
            betas=(1,),
            base_params=FAST_ACO,
            engine=ExperimentEngine(executor="thread", jobs=2),
        )
        assert [p.setting for p in serial.points] == [p.setting for p in threaded.points]
        assert [p.mean_objective for p in serial.points] == [
            p.mean_objective for p in threaded.points
        ]

    def test_nd_width_sweep_warm_cache(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        cold = nd_width_sweep(CORPUS, nd_widths=(0.5, 1.0), base_params=FAST_ACO, engine=engine)
        warm = nd_width_sweep(CORPUS, nd_widths=(0.5, 1.0), base_params=FAST_ACO, engine=engine)
        assert [p.mean_objective for p in cold.points] == [
            p.mean_objective for p in warm.points
        ]
        # The cache returns the originally measured running times verbatim.
        assert [p.mean_running_time for p in cold.points] == [
            p.mean_running_time for p in warm.points
        ]

    def test_figure_engine_invariant(self):
        default = figure4(corpus=CORPUS, aco_params=FAST_ACO)
        threaded = figure4(
            corpus=CORPUS,
            aco_params=FAST_ACO,
            engine=ExperimentEngine(executor="thread", jobs=2),
        )
        assert default.panels == threaded.panels

    def test_cell_results_carry_metadata(self):
        results = ExperimentEngine().run(
            [
                WorkUnit(
                    graph=CORPUS[0].graph,
                    method=MethodSpec.builtin("LPL"),
                    graph_name=CORPUS[0].name,
                    vertex_count=CORPUS[0].vertex_count,
                    nd_width=0.8,
                )
            ]
        )
        (cell,) = results
        assert isinstance(cell, CellResult)
        assert cell.algorithm == "LPL"
        assert cell.graph_name == CORPUS[0].name
        assert cell.vertex_count == 10
        assert cell.nd_width == 0.8
        assert cell.metrics.nd_width == 0.8
        assert cell.running_time >= 0
