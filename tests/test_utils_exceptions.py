"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.utils.exceptions import (
    CycleError,
    GraphError,
    LayeringError,
    ReproError,
    ValidationError,
)


def test_all_derive_from_repro_error():
    for exc in (GraphError, CycleError, LayeringError, ValidationError):
        assert issubclass(exc, ReproError)


def test_cycle_error_is_graph_error():
    assert issubclass(CycleError, GraphError)


def test_cycle_error_carries_cycle():
    err = CycleError("boom", cycle=[1, 2, 3])
    assert err.cycle == [1, 2, 3]
    err2 = CycleError("boom")
    assert err2.cycle is None


def test_catching_base_class():
    with pytest.raises(ReproError):
        raise LayeringError("nope")
