"""Tests for the exact minimum-dummy (network-simplex equivalent) layering."""

from __future__ import annotations

import itertools

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag, gnp_dag, longest_path_dag
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import dummy_vertex_count, total_edge_span
from repro.layering.network_simplex import (
    minimum_dummy_layering,
    minimum_dummy_layering_longest_path,
    minimum_total_span,
)
from repro.layering.promote import promote_layering


def brute_force_minimum_span(graph: DiGraph, max_height: int) -> int:
    """Exhaustive minimum total edge span over all layerings up to max_height layers."""
    vertices = list(graph.vertices())
    best = None
    for assignment in itertools.product(range(1, max_height + 1), repeat=len(vertices)):
        lay = dict(zip(vertices, assignment))
        if all(lay[u] > lay[v] for u, v in graph.edges()):
            span = sum(lay[u] - lay[v] for u, v in graph.edges())
            best = span if best is None else min(best, span)
    assert best is not None
    return best


class TestMinimumDummyLayering:
    def test_validity(self, sample_graphs):
        for g in sample_graphs:
            minimum_dummy_layering(g).validate(g)

    def test_matches_brute_force_on_small_graphs(self):
        graphs = [
            DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]),
            DiGraph(edges=[(0, 1), (1, 2), (0, 2)]),
            DiGraph(edges=[(0, 1), (1, 2), (2, 3), (0, 3)]),
            gnp_dag(6, 0.4, seed=1),
            gnp_dag(6, 0.5, seed=2),
        ]
        for g in graphs:
            exact = minimum_total_span(g)
            brute = brute_force_minimum_span(g, max_height=g.n_vertices)
            assert exact == brute

    def test_never_worse_than_lpl_or_promotion(self, sample_graphs):
        for g in sample_graphs:
            optimal = minimum_dummy_layering(g)
            lpl = longest_path_layering(g)
            promoted = promote_layering(g, lpl)
            assert total_edge_span(g, optimal) <= total_edge_span(g, lpl)
            assert total_edge_span(g, optimal) <= total_edge_span(g, promoted)
            assert dummy_vertex_count(g, optimal) <= dummy_vertex_count(g, promoted)

    def test_path_graph_needs_no_dummies(self):
        g = longest_path_dag(8)
        assert dummy_vertex_count(g, minimum_dummy_layering(g)) == 0

    def test_edgeless_graph(self):
        g = DiGraph(vertices=["a", "b", "c"])
        lay = minimum_dummy_layering(g)
        assert lay.height == 1

    def test_result_is_normalized(self):
        g = att_like_dag(30, seed=9)
        lay = minimum_dummy_layering(g)
        used = lay.used_layers()
        assert used[0] == 1 and used == list(range(1, len(used) + 1))


class TestCombinationalFallback:
    def test_fallback_is_valid_and_reasonable(self, sample_graphs):
        for g in sample_graphs:
            lay = minimum_dummy_layering_longest_path(g)
            lay.validate(g)
            assert total_edge_span(g, lay) <= total_edge_span(g, longest_path_layering(g))
