"""Tests for dummy-vertex insertion (proper layering)."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.dummy import DummyVertex, make_proper
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import dummy_vertex_count
from repro.graph.generators import att_like_dag, gnp_dag
from repro.utils.exceptions import LayeringError, ValidationError


class TestMakeProper:
    def test_short_edges_untouched(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        result = make_proper(diamond, lay)
        assert result.n_dummies == 0
        assert result.graph.n_vertices == 4
        assert result.graph.n_edges == 4

    def test_long_edge_subdivided(self, long_edge_graph):
        lay = Layering({0: 4, 1: 3, 2: 2, 3: 1})
        result = make_proper(long_edge_graph, lay)
        assert result.n_dummies == 2
        chain = result.dummy_chains[(0, 3)]
        assert len(chain) == 2
        assert {d.layer for d in chain} == {2, 3}
        assert result.layering.is_proper(result.graph)

    def test_dummy_width_applied(self, long_edge_graph):
        lay = Layering({0: 4, 1: 3, 2: 2, 3: 1})
        result = make_proper(long_edge_graph, lay, dummy_width=0.25)
        for chain in result.dummy_chains.values():
            for d in chain:
                assert result.graph.vertex_width(d) == 0.25

    def test_dummy_count_matches_metric(self):
        for seed in range(3):
            g = att_like_dag(30, seed=seed)
            lay = longest_path_layering(g)
            result = make_proper(g, lay)
            assert result.n_dummies == dummy_vertex_count(g, lay)

    def test_proper_graph_edge_count(self):
        g = gnp_dag(20, 0.2, seed=1)
        lay = longest_path_layering(g)
        result = make_proper(g, lay)
        # Each original edge of span s becomes s edges in the proper graph.
        expected = sum(lay.edge_span(u, v) for u, v in g.edges())
        assert result.graph.n_edges == expected

    def test_original_attributes_preserved(self):
        g = DiGraph()
        g.add_vertex("a", width=2.0, label="A")
        g.add_vertex("b")
        g.add_edge("a", "b")
        lay = Layering({"a": 2, "b": 1})
        result = make_proper(g, lay)
        assert result.graph.vertex_width("a") == 2.0
        assert result.graph.vertex_label("a") == "A"

    def test_invalid_layering_rejected(self, diamond):
        with pytest.raises(LayeringError):
            make_proper(diamond, Layering({"a": 1, "b": 1, "c": 1, "d": 1}))

    def test_nonpositive_dummy_width_rejected(self, diamond):
        lay = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        with pytest.raises(ValidationError):
            make_proper(diamond, lay, dummy_width=0.0)


class TestDummyVertex:
    def test_hashable_and_distinct(self):
        d1 = DummyVertex("u", "v", 0, 2)
        d2 = DummyVertex("u", "v", 1, 3)
        assert d1 != d2
        assert len({d1, d2}) == 2

    def test_repr_mentions_edge(self):
        d = DummyVertex("u", "v", 0, 2)
        assert "u" in repr(d) and "v" in repr(d)


class TestDummyEngines:
    """The array-driven expansion must reproduce the per-edge reference exactly."""

    def test_engines_identical(self):
        from repro.graph.generators import att_like_dag
        from repro.layering.longest_path import longest_path_layering

        for seed in range(4):
            g = att_like_dag(40, seed=seed)
            lay = longest_path_layering(g)
            ref = make_proper(g, lay, engine="python")
            vec = make_proper(g, lay, engine="vectorized")
            assert vec.graph == ref.graph
            assert list(vec.graph.edges()) == list(ref.graph.edges())
            assert vec.layering == ref.layering
            assert vec.dummy_chains == ref.dummy_chains

    def test_unknown_engine_rejected(self, diamond):
        from repro.layering.longest_path import longest_path_layering

        with pytest.raises(ValidationError):
            make_proper(diamond, longest_path_layering(diamond), engine="gpu")
