"""End-to-end tests for the ACO layering driver."""

from __future__ import annotations

import pytest

from repro.aco.layering_aco import AcoLayeringResult, aco_layering, aco_layering_detailed
from repro.aco.params import ACOParams
from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag, gnp_dag, longest_path_dag
from repro.layering.longest_path import longest_path_layering, minimum_height
from repro.layering.metrics import evaluate_layering, width_including_dummies
from repro.utils.exceptions import CycleError, GraphError


FAST = ACOParams(n_ants=4, n_tours=4, seed=0)


class TestAcoLayering:
    def test_returns_valid_layering(self, sample_graphs):
        for g in sample_graphs:
            layering = aco_layering(g, FAST)
            layering.validate(g)

    def test_result_is_normalized(self):
        g = att_like_dag(30, seed=1)
        layering = aco_layering(g, FAST)
        used = layering.used_layers()
        assert used == list(range(1, len(used) + 1))

    def test_never_wider_than_lpl(self):
        # The colony's global best is seeded with the LPL layering, so the
        # objective (and therefore H + W) can never be worse than LPL's.
        for seed in range(4):
            g = att_like_dag(40, seed=seed)
            aco = aco_layering(g, ACOParams(n_ants=5, n_tours=5, seed=seed))
            lpl = longest_path_layering(g)
            aco_metrics = evaluate_layering(g, aco)
            lpl_metrics = evaluate_layering(g, lpl)
            assert aco_metrics.objective >= lpl_metrics.objective - 1e-12

    def test_deterministic_given_seed(self):
        g = att_like_dag(30, seed=2)
        a = aco_layering(g, ACOParams(n_ants=3, n_tours=3, seed=11))
        b = aco_layering(g, ACOParams(n_ants=3, n_tours=3, seed=11))
        assert a == b

    def test_height_at_least_minimum(self):
        g = att_like_dag(30, seed=3)
        layering = aco_layering(g, FAST)
        assert layering.height >= minimum_height(g)

    def test_single_vertex_graph(self):
        g = DiGraph(vertices=["v"])
        layering = aco_layering(g, FAST)
        assert layering["v"] == 1

    def test_path_graph(self):
        g = longest_path_dag(6)
        layering = aco_layering(g, FAST)
        layering.validate(g)
        assert layering.height == 6

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            aco_layering(DiGraph(), FAST)

    def test_cyclic_graph_rejected(self):
        with pytest.raises(CycleError):
            aco_layering(DiGraph(edges=[(1, 2), (2, 1)]), FAST)

    def test_default_params_used_when_none(self):
        g = gnp_dag(10, 0.2, seed=1)
        layering = aco_layering(g)
        layering.validate(g)


class TestAcoLayeringDetailed:
    def test_result_fields(self):
        g = att_like_dag(25, seed=4)
        result = aco_layering_detailed(g, FAST)
        assert isinstance(result, AcoLayeringResult)
        assert result.layering.is_valid(g)
        assert result.metrics.height == result.layering.height
        assert result.colony.n_tours == FAST.n_tours
        assert result.problem.n_layers == g.n_vertices
        assert result.params == FAST

    def test_metrics_match_layering(self):
        g = att_like_dag(25, seed=5)
        result = aco_layering_detailed(g, FAST)
        recomputed = evaluate_layering(g, result.layering, nd_width=FAST.nd_width)
        assert result.metrics == recomputed

    def test_nd_width_propagates(self):
        g = att_like_dag(25, seed=6)
        params = FAST.replace(nd_width=0.4)
        result = aco_layering_detailed(g, params)
        assert result.metrics.nd_width == pytest.approx(0.4)

    def test_stretch_strategy_option(self):
        g = att_like_dag(20, seed=7)
        for strategy in ("between", "split"):
            result = aco_layering_detailed(g, FAST, stretch_strategy=strategy)
            result.layering.validate(g)

    def test_custom_layer_budget(self):
        g = att_like_dag(20, seed=8)
        result = aco_layering_detailed(g, FAST, n_layers=25)
        assert result.problem.n_layers == 25
        result.layering.validate(g)

    def test_vertex_widths_respected(self):
        g = DiGraph()
        g.add_vertex("big", width=5.0)
        g.add_vertex("small")
        g.add_edge("big", "small")
        result = aco_layering_detailed(g, FAST)
        assert result.metrics.width_including_dummies >= 5.0
