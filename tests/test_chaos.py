"""Chaos-injection matrix for the hardened execution layer.

Every executor must finish a run with *correct* aggregate tables while
faults are injected through ``REPRO_CHAOS`` (:mod:`repro.utils.chaos`):
transient raises recover via ``--retries``, hangs are cut by ``--timeout``
and recorded as ``kind="timeout"``, a SIGKILL'd pool worker is respawned
and only its in-flight cell is marked ``kind="crash"``, corrupted cache
entries are quarantined and treated as misses, and an interrupted chaotic
run finishes under ``--resume`` with tables identical to a fault-free run.

The deterministic-table comparison (everything except the wall-clock
``running_time`` table) is shared with the CI resume smoke.
"""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

import pytest

from repro.aco.params import ACOParams
from repro.cli import main
from repro.datasets.corpus import att_like_corpus
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, default_method_specs
from repro.experiments.runner import run_comparison
from repro.utils import chaos

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="fault injection (kill -9, signals) is POSIX-only"
)


def _load_resume_smoke():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "resume_smoke.py"
    spec = importlib.util.spec_from_file_location("resume_smoke_for_chaos", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


deterministic_tables = _load_resume_smoke().deterministic_tables

FAST_ACO = ["--ants", "2", "--tours", "2", "--seed", "0"]
SMALL_COMPARE = [
    "compare",
    "--graphs-per-group",
    "1",
    "--vertex-counts",
    "10",
    "20",
    *FAST_ACO,
]

#: One ``main()`` argv suffix per executor; pools get two workers so the
#: 1-CPU CI box does not silently downgrade them to the serial path.
EXECUTORS = [
    pytest.param([], id="serial"),
    pytest.param(["--executor", "thread", "--jobs", "2"], id="thread"),
    pytest.param(
        ["--executor", "process", "--jobs", "2"],
        marks=pytest.mark.slow,
        id="process",
    ),
    pytest.param(
        ["--executor", "colonies", "--jobs", "2", "--colonies", "2"],
        marks=pytest.mark.slow,
        id="colonies",
    ),
    pytest.param(["--executor", "batched", "--jobs", "2"], id="batched"),
]


@pytest.fixture(autouse=True)
def _chaos_hygiene(monkeypatch, tmp_path):
    """Isolated shm manifests, clean rule env, armed+released hang valve."""
    monkeypatch.setenv("REPRO_SHM_MANIFEST_DIR", str(tmp_path / "shm-manifests"))
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    monkeypatch.delenv(chaos.FAIL_CELLS_ENV, raising=False)
    chaos.reset_hangs()
    yield
    # Unblock any thread an expired deadline abandoned mid-hang so it cannot
    # outlive its test.
    chaos.release_hangs()


def _tables(capsys, argv, expect: int = 0) -> str:
    assert main(argv) == expect
    return deterministic_tables(capsys.readouterr().out)


class TestTransientFaultsRecover:
    """Retries make chaotic runs byte-identical to fault-free ones."""

    @pytest.mark.parametrize("executor_args", EXECUTORS)
    def test_transient_raise_with_retries(self, capsys, monkeypatch, executor_args):
        reference = _tables(capsys, [*SMALL_COMPARE, *executor_args])
        assert "cells failed" not in reference
        # Attempt 1 of every AntColony cell raises; attempt 2 runs clean.
        monkeypatch.setenv(chaos.CHAOS_ENV, "raise:AntColony:*")
        chaotic = _tables(capsys, [*SMALL_COMPARE, *executor_args, "--retries", "2"])
        assert chaotic == reference

    def test_transient_hang_cut_by_deadline_then_retried(self, capsys, monkeypatch):
        reference = _tables(capsys, SMALL_COMPARE)
        monkeypatch.setenv(chaos.CHAOS_ENV, "hang@30:AntColony:att-like-n10-*")
        chaotic = _tables(
            capsys, [*SMALL_COMPARE, "--timeout", "0.5", "--retries", "1"]
        )
        assert chaotic == reference

    @pytest.mark.slow
    def test_transient_kill9_worker_respawned_and_retried(
        self, capsys, monkeypatch
    ):
        executor = ["--executor", "process", "--jobs", "2"]
        reference = _tables(capsys, [*SMALL_COMPARE, *executor])
        # The first attempt SIGKILLs its worker mid-cell: the supervised pool
        # must respawn the worker, fail only the in-flight cell, and the
        # engine's retry must then produce a fault-free table.
        monkeypatch.setenv(chaos.CHAOS_ENV, "kill9:AntColony:att-like-n10-*")
        chaotic = _tables(capsys, [*SMALL_COMPARE, *executor, "--retries", "1"])
        assert chaotic == reference


class TestPermanentFaultsAreIsolated:
    """Unrecoverable faults cost exactly their own cell, correctly labelled."""

    def test_permanent_hang_recorded_as_timeout(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "hang@30@*:AntColony:att-like-n10-*")
        corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20))
        engine = ExperimentEngine(cell_timeout=0.5, retries=1)
        comparison = run_comparison(
            corpus,
            default_method_specs(aco_params=ACOParams(n_ants=2, n_tours=2, seed=0)),
            engine=engine,
        )
        assert len(comparison.failures) == 1
        failed = comparison.failures[0]
        assert failed.error is not None and failed.error.kind == "timeout"
        assert failed.attempts == 2  # the retry was spent before giving up
        assert comparison.cells_total == 10

    @pytest.mark.slow
    def test_permanent_kill9_marks_only_inflight_cell_as_crash(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv(chaos.CHAOS_ENV, "kill9@*:AntColony:att-like-n10-*")
        assert (
            main([*SMALL_COMPARE, "--executor", "process", "--jobs", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "1 of 10 cells failed" in out
        assert "1 crash" in out


class TestCacheChaos:
    def test_corrupted_entries_quarantined_and_recomputed(
        self, capsys, monkeypatch, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        reference = _tables(capsys, SMALL_COMPARE)
        # Every AntColony cache write is garbled after the result is computed
        # (the run's own tables come from the in-memory results, not disk).
        monkeypatch.setenv(chaos.CHAOS_ENV, "corrupt-cache@*:AntColony:*")
        first = _tables(capsys, [*SMALL_COMPARE, "--cache-dir", str(cache_dir)])
        assert first == reference
        monkeypatch.delenv(chaos.CHAOS_ENV)
        # The re-run must detect the bit-rot, treat the entries as misses and
        # recompute — never replay garbage into the tables.
        second = _tables(capsys, [*SMALL_COMPARE, "--cache-dir", str(cache_dir)])
        assert second == reference
        cache = ResultCache(cache_dir)
        assert cache.stats().quarantined == 2  # one AntColony cell per graph
        assert main(["cache", "stats", str(cache_dir)]) == 0
        assert "quarantined (corrupt/): 2" in capsys.readouterr().out

    def test_timed_out_cells_are_never_cached(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.CHAOS_ENV, "hang@30@*:AntColony:att-like-n10-*")
        corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20))
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(cell_timeout=0.5, cache=cache)
        run_comparison(
            corpus,
            default_method_specs(aco_params=ACOParams(n_ants=2, n_tours=2, seed=0)),
            engine=engine,
        )
        # 10 cells, one timed out: every cell lands in the cache except it.
        assert cache.stats().entries == 9


class TestInterruptResumeUnderChaos:
    def test_interrupted_chaotic_run_resumes_to_reference_tables(
        self, capsys, monkeypatch, tmp_path
    ):
        reference = _tables(capsys, SMALL_COMPARE)
        run_dir = tmp_path / "run"
        argv = [*SMALL_COMPARE, "--run-dir", str(run_dir), "--retries", "2"]
        monkeypatch.setenv(chaos.CHAOS_ENV, "raise:AntColony:*")
        monkeypatch.setenv("REPRO_ENGINE_MAX_CELLS", "4")
        assert main(argv) == 2
        assert "interrupted" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_ENGINE_MAX_CELLS")
        resumed = _tables(capsys, [*argv, "--resume"])
        assert resumed == reference

    def test_summary_line_reports_retry_and_timeout_counts(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv(chaos.CHAOS_ENV, "raise:AntColony:att-like-n10-*")
        assert main([*SMALL_COMPARE, "--retries", "1", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "0 failures, 1 retried, 0 timed out" in err
