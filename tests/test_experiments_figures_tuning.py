"""Tests for the figure regeneration functions, tuning sweeps and reporting."""

from __future__ import annotations

import pytest

from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus
from repro.experiments.figures import (
    FIGURES,
    FigureData,
    figure4,
    figure6,
    figure8,
)
from repro.experiments.reporting import (
    format_comparison,
    format_figure,
    format_series_table,
    format_sweep,
)
from repro.experiments.runner import default_algorithms, run_comparison
from repro.experiments.tuning import alpha_beta_sweep, best_sweep_setting, nd_width_sweep
from repro.utils.exceptions import ValidationError

TINY_CORPUS = att_like_corpus(graphs_per_group=1, vertex_counts=(10, 20))
FAST_ACO = ACOParams(n_ants=2, n_tours=2, seed=0)


class TestFigures:
    def test_registry_contains_all_six_figures(self):
        assert set(FIGURES) == {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}

    def test_figure4_structure(self):
        fig = figure4(corpus=TINY_CORPUS, aco_params=FAST_ACO)
        assert isinstance(fig, FigureData)
        assert fig.figure_id == "fig4"
        assert len(fig.panels) == 2
        metrics = {p.metric for p in fig.panels}
        assert metrics == {"width_including_dummies", "width_excluding_dummies"}
        for panel in fig.panels:
            assert set(panel.series) == {"LPL", "LPL+PL", "AntColony"}
            for series in panel.series.values():
                assert set(series) == {10, 20}

    def test_figure6_metrics(self):
        fig = figure6(corpus=TINY_CORPUS, aco_params=FAST_ACO)
        assert {p.metric for p in fig.panels} == {"height", "dummy_vertex_count"}

    def test_figure8_includes_runtime(self):
        fig = figure8(corpus=TINY_CORPUS, aco_params=FAST_ACO)
        panel = fig.panel("running_time")
        assert all(v >= 0 for series in panel.series.values() for v in series.values())

    def test_panel_lookup_unknown_metric(self):
        fig = figure4(corpus=TINY_CORPUS, aco_params=FAST_ACO)
        with pytest.raises(KeyError):
            fig.panel("nonexistent")


class TestTuning:
    def test_alpha_beta_sweep_shape(self):
        sweep = alpha_beta_sweep(
            TINY_CORPUS, alphas=(1, 3), betas=(1, 3), base_params=FAST_ACO
        )
        assert sweep.parameter_names == ("alpha", "beta")
        assert len(sweep.points) == 4
        settings = {p.setting for p in sweep.points}
        assert (1.0, 3.0) in settings
        best = best_sweep_setting(sweep)
        assert best in settings

    def test_nd_width_sweep_shape(self):
        sweep = nd_width_sweep(TINY_CORPUS, nd_widths=(0.5, 1.0), base_params=FAST_ACO)
        assert sweep.parameter_names == ("nd_width",)
        assert len(sweep.points) == 2
        assert all(p.mean_running_time >= 0 for p in sweep.points)

    def test_best_has_max_objective(self):
        sweep = nd_width_sweep(TINY_CORPUS, nd_widths=(0.5, 1.0), base_params=FAST_ACO)
        best = sweep.best()
        assert best.mean_objective == max(p.mean_objective for p in sweep.points)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            alpha_beta_sweep([], base_params=FAST_ACO)
        with pytest.raises(ValidationError):
            nd_width_sweep([], base_params=FAST_ACO)


class TestReporting:
    def test_series_table_contains_values(self):
        table = format_series_table({"LPL": {10: 3.0, 20: 4.5}}, value_header="height")
        assert "LPL" in table
        assert "3.00" in table and "4.50" in table
        assert "(height)" in table

    def test_missing_cells_rendered_as_dash(self):
        table = format_series_table({"A": {10: 1.0}, "B": {20: 2.0}})
        assert "-" in table

    def test_format_figure_mentions_all_algorithms(self):
        fig = figure4(corpus=TINY_CORPUS, aco_params=FAST_ACO)
        text = format_figure(fig)
        assert "FIG4" in text
        for name in ("LPL", "LPL+PL", "AntColony"):
            assert name in text

    def test_format_comparison(self):
        comparison = run_comparison(TINY_CORPUS, default_algorithms(include_aco=False))
        text = format_comparison(comparison, "height")
        assert "MinWidth" in text

    def test_format_sweep_marks_best(self):
        sweep = nd_width_sweep(TINY_CORPUS, nd_widths=(0.5, 1.0), base_params=FAST_ACO)
        text = format_sweep(sweep)
        assert "*" in text
        assert "nd_width" in text
