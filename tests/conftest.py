"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag, gnp_dag, random_tree_dag
from repro.utils import resources


@pytest.fixture(autouse=True)
def _reset_resource_governor():
    """Breaker state is process-global; no test may leak trips into the next."""
    resources.governor().reset()
    yield
    resources.governor().reset()


@pytest.fixture
def diamond() -> DiGraph:
    """The smallest interesting DAG: a -> b -> d, a -> c -> d."""
    return DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


@pytest.fixture
def long_edge_graph() -> DiGraph:
    """A DAG with one edge that must span several layers: chain plus a shortcut."""
    g = DiGraph(edges=[(0, 1), (1, 2), (2, 3), (0, 3)])
    return g


@pytest.fixture
def path5() -> DiGraph:
    """Simple path 0 -> 1 -> 2 -> 3 -> 4."""
    g = DiGraph(vertices=range(5))
    for i in range(4):
        g.add_edge(i, i + 1)
    return g


@pytest.fixture
def wide_graph() -> DiGraph:
    """One source fanning out to eight sinks (very wide, height 2)."""
    g = DiGraph()
    g.add_vertex("root")
    for i in range(8):
        g.add_edge("root", f"leaf{i}")
    return g


@pytest.fixture
def sample_graphs() -> list[DiGraph]:
    """A small, varied collection of DAGs used by cross-algorithm tests."""
    return [
        gnp_dag(12, 0.2, seed=1),
        gnp_dag(20, 0.1, seed=2),
        att_like_dag(25, seed=3),
        att_like_dag(40, seed=4),
        random_tree_dag(18, seed=5),
    ]
