"""Tests for crossing counting."""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.sugiyama.crossings import (
    count_all_crossings,
    count_crossings_between,
    count_inversions,
)


class TestInversions:
    def test_sorted_has_none(self):
        assert count_inversions([1, 2, 3, 4]) == 0

    def test_reverse_sorted(self):
        assert count_inversions([4, 3, 2, 1]) == 6

    def test_mixed(self):
        assert count_inversions([2, 1, 3]) == 1
        assert count_inversions([3, 1, 2]) == 2

    def test_duplicates_not_counted(self):
        assert count_inversions([1, 1, 1]) == 0

    def test_empty_and_single(self):
        assert count_inversions([]) == 0
        assert count_inversions([5]) == 0


class TestCrossingsBetween:
    def test_parallel_edges_no_crossing(self):
        g = DiGraph(edges=[("u1", "v1"), ("u2", "v2")])
        assert count_crossings_between(g, ["u1", "u2"], ["v1", "v2"]) == 0

    def test_crossed_pair(self):
        g = DiGraph(edges=[("u1", "v2"), ("u2", "v1")])
        assert count_crossings_between(g, ["u1", "u2"], ["v1", "v2"]) == 1

    def test_complete_bipartite_k22(self):
        g = DiGraph(edges=[("u1", "v1"), ("u1", "v2"), ("u2", "v1"), ("u2", "v2")])
        assert count_crossings_between(g, ["u1", "u2"], ["v1", "v2"]) == 1

    def test_order_matters(self):
        g = DiGraph(edges=[("u1", "v2"), ("u2", "v1")])
        # Swapping the lower order removes the crossing.
        assert count_crossings_between(g, ["u1", "u2"], ["v2", "v1"]) == 0


class TestAllCrossings:
    def test_three_layer_graph(self):
        g = DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        layering = Layering({"a": 3, "b": 2, "c": 2, "d": 1})
        orders = {3: ["a"], 2: ["b", "c"], 1: ["d"]}
        assert count_all_crossings(g, layering, orders) == 0

    def test_crossing_in_middle_gap(self):
        g = DiGraph(edges=[("a", "x"), ("b", "y")])
        layering = Layering({"a": 2, "b": 2, "x": 1, "y": 1})
        assert count_all_crossings(g, layering, {2: ["a", "b"], 1: ["y", "x"]}) == 1
        assert count_all_crossings(g, layering, {2: ["a", "b"], 1: ["x", "y"]}) == 0
