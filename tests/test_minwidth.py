"""Tests for the MinWidth heuristic."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag, gnp_dag
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import width_excluding_dummies, width_including_dummies
from repro.layering.minwidth import minwidth_layering, minwidth_layering_sweep
from repro.utils.exceptions import CycleError, GraphError, ValidationError


class TestMinWidthLayering:
    def test_validity(self, sample_graphs):
        for g in sample_graphs:
            lay = minwidth_layering(g)
            lay.validate(g)

    def test_validity_across_parameters(self):
        g = att_like_dag(40, seed=7)
        for ubw in (1, 2, 4):
            for c in (1, 2):
                minwidth_layering(g, ubw=ubw, c=c).validate(g)

    def test_diamond(self, diamond):
        lay = minwidth_layering(diamond, ubw=1, c=1)
        lay.validate(diamond)

    def test_narrow_layers_for_small_ubw(self):
        # With UBW=1 the heuristic aggressively opens new layers, producing
        # narrow (real-vertex) layerings on wide graphs.
        g = att_like_dag(60, seed=1)
        narrow = minwidth_layering(g, ubw=1, c=1)
        wide = longest_path_layering(g)
        assert width_excluding_dummies(g, narrow) <= width_excluding_dummies(g, wide)

    def test_layers_start_at_one_and_contiguous(self):
        g = gnp_dag(30, 0.15, seed=2)
        lay = minwidth_layering(g)
        used = lay.used_layers()
        assert used[0] == 1
        assert used == list(range(1, len(used) + 1))

    def test_single_vertex(self):
        g = DiGraph(vertices=["v"])
        assert minwidth_layering(g)["v"] == 1

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            minwidth_layering(DiGraph())

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            minwidth_layering(DiGraph(edges=[(1, 2), (2, 1)]))

    def test_invalid_parameters(self, diamond):
        with pytest.raises(ValidationError):
            minwidth_layering(diamond, ubw=0)
        with pytest.raises(ValidationError):
            minwidth_layering(diamond, c=0)
        with pytest.raises(ValidationError):
            minwidth_layering(diamond, nd_width=-1)

    def test_respects_vertex_widths(self):
        g = DiGraph()
        for name in "abcd":
            g.add_vertex(name, width=3.0)
        lay = minwidth_layering(g, ubw=3, c=1)
        lay.validate(g)


class TestMinWidthSweep:
    def test_sweep_no_worse_than_any_single_setting(self):
        for seed in range(3):
            g = att_like_dag(35, seed=seed)
            best = minwidth_layering_sweep(g)
            best_width = width_including_dummies(g, best)
            for ubw, c in ((1, 1), (2, 2), (4, 2)):
                single = minwidth_layering(g, ubw=ubw, c=c)
                assert best_width <= width_including_dummies(g, single) + 1e-9

    def test_sweep_validity(self, sample_graphs):
        for g in sample_graphs:
            minwidth_layering_sweep(g).validate(g)

    def test_empty_grid_rejected(self, diamond):
        with pytest.raises(ValidationError):
            minwidth_layering_sweep(diamond, grid=())

    def test_custom_grid(self, diamond):
        lay = minwidth_layering_sweep(diamond, grid=((2, 1),))
        lay.validate(diamond)


class TestMinWidthEngines:
    """The vectorized candidate scan must reproduce the reference exactly."""

    def test_engines_identical_on_sample_graphs(self, sample_graphs):
        for g in sample_graphs:
            for ubw, c in ((1, 1), (2, 2), (4, 2)):
                ref = minwidth_layering(g, ubw=ubw, c=c, engine="python")
                vec = minwidth_layering(g, ubw=ubw, c=c, engine="vectorized")
                assert vec == ref

    def test_engines_identical_over_grid_and_nd_width(self):
        for seed in range(4):
            g = att_like_dag(40, seed=seed)
            for nd_width in (0.0, 0.5, 1.0):
                ref = minwidth_layering(g, nd_width=nd_width, engine="python")
                vec = minwidth_layering(g, nd_width=nd_width, engine="vectorized")
                assert vec == ref

    def test_sweep_engines_identical(self):
        g = att_like_dag(45, seed=9)
        assert minwidth_layering_sweep(g, engine="vectorized") == minwidth_layering_sweep(
            g, engine="python"
        )

    def test_unknown_engine_rejected(self, diamond):
        with pytest.raises(ValidationError):
            minwidth_layering(diamond, engine="gpu")
