"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` also works on
environments whose pip/setuptools/wheel combination cannot build PEP 660
editable wheels (e.g. offline machines without the ``wheel`` package).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
