"""Micro-benchmarks of the individual layering algorithms.

These are conventional pytest-benchmark measurements (multiple rounds) of
each algorithm on a single 100-vertex corpus graph — the per-algorithm cost
that the running-time panels of Figures 8 and 9 aggregate over the corpus.
They also serve as a regression guard for the library's own performance.
"""

from __future__ import annotations

import pytest

from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus
from repro.layering.longest_path import longest_path_layering
from repro.layering.minwidth import minwidth_layering_sweep
from repro.layering.network_simplex import minimum_dummy_layering
from repro.layering.promote import promote_layering


@pytest.fixture(scope="module")
def graph100():
    return att_like_corpus(graphs_per_group=1, vertex_counts=(100,))[0].graph


def test_runtime_lpl(benchmark, graph100):
    layering = benchmark(longest_path_layering, graph100)
    layering.validate(graph100)


def test_runtime_lpl_plus_pl(benchmark, graph100):
    layering = benchmark(lambda g: promote_layering(g, longest_path_layering(g)), graph100)
    layering.validate(graph100)


def test_runtime_minwidth(benchmark, graph100):
    layering = benchmark(minwidth_layering_sweep, graph100)
    layering.validate(graph100)


def test_runtime_minwidth_plus_pl(benchmark, graph100):
    layering = benchmark(lambda g: promote_layering(g, minwidth_layering_sweep(g)), graph100)
    layering.validate(graph100)


def test_runtime_min_dummy(benchmark, graph100):
    layering = benchmark(minimum_dummy_layering, graph100)
    layering.validate(graph100)


def test_runtime_ant_colony(benchmark, graph100):
    params = ACOParams(n_ants=10, n_tours=10, seed=0)
    layering = benchmark.pedantic(
        lambda: aco_layering(graph100, params), rounds=3, iterations=1
    )
    layering.validate(graph100)
