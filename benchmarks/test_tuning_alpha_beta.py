"""Section VIII(a) — tuning the pheromone/heuristic exponents α and β.

The paper sweeps α, β ∈ {1..5} and reports (3, 5) as the best setting with
(1, 3) a close runner-up that it adopts because it is faster.  Sweeping the
full 25-point grid over even a reduced corpus is expensive in pure Python, so
by default this benchmark sweeps the four corners the paper discusses —
(1, 3), (3, 5), (1, 1) and (5, 1) — which is enough to reproduce the
qualitative conclusion that a heuristic-dominant setting (β > α) beats a
pheromone-dominant one (β = 1 ≪ α).  Set ``REPRO_BENCH_FULL_SWEEP=1`` to run
the complete 5×5 grid.
"""

from __future__ import annotations

import os

from benchmarks.shape import print_series
from repro.experiments.reporting import format_sweep
from repro.experiments.tuning import alpha_beta_sweep

FULL = os.environ.get("REPRO_BENCH_FULL_SWEEP", "0") == "1"
ALPHAS = (1, 2, 3, 4, 5) if FULL else (1, 3, 5)
BETAS = (1, 2, 3, 4, 5) if FULL else (1, 3, 5)


def test_tuning_alpha_beta(benchmark, small_corpus, aco_params):
    sweep = benchmark.pedantic(
        lambda: alpha_beta_sweep(
            small_corpus, alphas=ALPHAS, betas=BETAS, base_params=aco_params
        ),
        rounds=1,
        iterations=1,
    )
    print_series("Section VIII — alpha/beta sweep", format_sweep(sweep))

    points = sweep.as_dict()
    adopted = points[(1.0, 3.0)]
    pheromone_only = points[(5.0, 1.0)]
    # Heuristic-dominant settings must not lose to the pheromone-dominant
    # corner (the paper: "the absence of heuristic bias generally leads to
    # rather poor results").
    assert adopted.mean_objective >= pheromone_only.mean_objective - 1e-9
    # The best setting of the sweep has beta >= alpha, as in the paper.
    best = sweep.best()
    assert best.setting[1] >= best.setting[0]
