"""Measure the cost of the hardened execution layer on the batched fast path.

The hardening added for crash-safe full-corpus runs is only free if the
fault-free fast path stays fast.  Two costs are measured on the cross-graph
batched executor (the configuration ``repro-dag compare --full --executor
batched`` uses):

* ``watchdog_overhead_pct`` — the same workload run twice, with and without
  a (never-firing) ``cell_timeout`` + ``retries`` budget: the delta is the
  per-cell deadline machinery (pooled watchdog threads, retry bookkeeping).
  Both runs' aggregate series are asserted identical before the record is
  written.  Each configuration is timed three times interleaved and the
  best time kept, so scheduler noise does not masquerade as overhead.
* ``checksum_s`` / ``checksum_overhead_pct`` — the SHA-256 integrity
  checksums the cache and journal now embed, measured directly on a
  representative record and scaled to two writes per cell (one cache entry,
  one journal line) — the worst case of a fully cached + journaled run.
* ``governance`` — the resource governor's fault-free cost, measured
  directly (run-to-run scheduler noise dwarfs it as a wall-clock delta):
  the greedy budget planner timed on full corpus-graph chunks and scaled
  as if every cell were packed, plus one circuit-breaker
  ``allow``/``record_success`` pair scaled to a deliberately generous
  per-cell call ceiling — both upper bounds.  A run with a generous
  (never-splitting) ``memory_budget`` armed is also executed and asserted
  bit-identical.  Its ``governance_overhead_pct`` carries its own 5%
  acceptance bar.

``overhead_pct`` is the sum of the first two, against the plain batched
wall-clock — the number the acceptance bar caps at 5%.  Results land in
``BENCH_robustness.json`` at the repository root (refresh with
``PYTHONPATH=src python benchmarks/emit_robustness_bench.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus
from repro.experiments.cache import content_digest
from repro.experiments.engine import ExperimentEngine, default_method_specs
from repro.experiments.runner import run_comparison

try:
    from benchmarks.bench_history import load_previous, with_history
except ImportError:  # run directly: python benchmarks/emit_*.py
    from bench_history import load_previous, with_history

__all__ = ["BENCH_PATH", "measure_robustness_overhead", "write_bench_json"]

#: Where the benchmark record is checked in (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"

#: The deterministic comparison series (everything except measured wall-clock).
DETERMINISTIC_METRICS = (
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "objective",
)

#: A deadline no fault-free cell approaches: the watchdog always arms and
#: never fires, so the measurement isolates the machinery itself.
NEVER_FIRING_TIMEOUT_S = 600.0

#: A memory budget no pack in the bench corpus approaches: the cost model
#: prices every planned pack but never splits one, so the governed run's
#: delta is pure governance machinery.
NEVER_SPLITTING_BUDGET = 1 << 34  # 16 GiB

#: Deliberately generous ceiling on breaker ``allow``/``record_success``
#: pairs billed per cell.  Measured on this workload the batched path makes
#: ~0.1 ``allow`` calls per cell (kernel/batched/cache/journal checkpoints
#: are per pack sweep, not per cell), so 8 is close to two orders of
#: magnitude of headroom — the scaled cost is a firm upper bound.
BREAKER_PAIRS_PER_CELL = 8


def _timed_run(corpus, specs, engine) -> tuple[float, object]:
    start = time.perf_counter()
    comparison = run_comparison(corpus, specs, engine=engine, keep_results=False)
    elapsed = time.perf_counter() - start
    if comparison.cells_failed:
        first = comparison.failures[0]
        raise RuntimeError(
            f"{comparison.cells_failed} cells failed mid-bench "
            f"(first: {first.algorithm} on {first.graph_name}: {first.error})"
        )
    return elapsed, comparison


def _checksum_cost_s(cells: int) -> float:
    """Direct cost of the integrity checksums for *cells* completed cells.

    Each completed cell costs two digests on the write side (its cache
    entry and its journal line); the representative record mirrors a real
    journal line's shape and size.
    """
    record = {
        "key": "0" * 64,
        "algorithm": "AntColony",
        "graph_name": "att-like-n100-0042",
        "vertex_count": 100,
        "nd_width": 1.0,
        "metrics": {
            "n_vertices": 100.0,
            "n_edges": 250.0,
            "height": 12.0,
            "width_including_dummies": 14.5,
            "width_excluding_dummies": 12.0,
            "dummy_vertex_count": 37.0,
            "edge_density": 21.0,
            "objective": 26.5,
            "nd_width": 1.0,
        },
        "error": None,
        "running_time": 0.0123,
        "attempts": 1,
    }
    reps = 2000
    for _ in range(100):
        content_digest(record)
    start = time.perf_counter()
    for _ in range(reps):
        content_digest(record)
    per_digest = (time.perf_counter() - start) / reps
    return per_digest * cells * 2


def _budget_planning_cost_s(graphs, cells: int) -> float:
    """Direct cost of pricing packs under an armed memory budget.

    Times one full planner chunk — per-graph :func:`problem_stats` plus the
    greedy loop's prefix estimates — on real corpus graphs, then scales as
    if *every* cell were packed (non-ACO cells are never priced, so this is
    an upper bound, matching the breaker measurement's convention).
    """
    from repro.experiments.engine import DEFAULT_BATCH_SIZE
    from repro.utils import resources

    chunk = [graphs[i % len(graphs)] for i in range(DEFAULT_BATCH_SIZE)]
    reps = 20

    def plan_one_chunk() -> None:
        stats = [resources.problem_stats(g) for g in chunk]
        for k in range(1, len(stats) + 1):
            resources.pack_cost_from_stats(stats[:k])

    plan_one_chunk()
    start = time.perf_counter()
    for _ in range(reps):
        plan_one_chunk()
    per_chunk = (time.perf_counter() - start) / reps
    n_chunks = -(-cells // DEFAULT_BATCH_SIZE)  # ceil
    return per_chunk * n_chunks


def _breaker_cost_s(cells: int) -> float:
    """Direct cost of the circuit-breaker checkpoints for *cells* cells.

    One ``allow`` + ``record_success`` pair is timed on a private governor
    (the process-global one must not accumulate bench state) and scaled by
    :data:`BREAKER_PAIRS_PER_CELL` — an intentional over-count, so the
    reported governance overhead is an upper bound.
    """
    from repro.utils.resources import ResourceGovernor

    governor = ResourceGovernor()
    reps = 5000
    for _ in range(100):
        governor.allow("native-kernel")
        governor.record_success("native-kernel")
    start = time.perf_counter()
    for _ in range(reps):
        governor.allow("native-kernel")
        governor.record_success("native-kernel")
    per_pair = (time.perf_counter() - start) / reps
    return per_pair * cells * BREAKER_PAIRS_PER_CELL


def measure_robustness_overhead(*, graphs_per_group: int | None = None) -> dict:
    """Time the batched workload with hardening off vs. on and summarise."""
    corpus = att_like_corpus(graphs_per_group=graphs_per_group)
    specs = default_method_specs(aco_params=ACOParams(seed=0))
    cells = len(corpus) * len(specs)

    def plain_engine():
        return ExperimentEngine(executor="batched")

    def hardened_engine():
        return ExperimentEngine(
            executor="batched", cell_timeout=NEVER_FIRING_TIMEOUT_S, retries=2
        )

    def governed_engine():
        return ExperimentEngine(
            executor="batched", memory_budget=NEVER_SPLITTING_BUDGET
        )

    # One untimed warmup first — the process's first pass pays allocator and
    # page-fault costs that would otherwise be billed to whichever
    # configuration happens to run first.
    _timed_run(corpus, specs, plain_engine())
    # Interleave and keep the best of three so a noisy neighbour during one
    # pass does not get billed to the other configuration.  Arming the
    # deadline is a variable write, so the real per-pass delta is tiny and
    # a single bad pass easily swamps it.
    plain_s, plain = _timed_run(corpus, specs, plain_engine())
    hardened_s, hardened = _timed_run(corpus, specs, hardened_engine())
    # Interleaved best-of-five: on a busy 1-CPU box a single noisy pass is
    # worth several percent, easily swamping the real (sub-1%) delta.
    for _ in range(4):
        plain_s = min(plain_s, _timed_run(corpus, specs, plain_engine())[0])
        hardened_s = min(
            hardened_s, _timed_run(corpus, specs, hardened_engine())[0]
        )
    # The governed run is for bit-identity, not timing: run-to-run
    # scheduler noise on a shared box dwarfs the planner's real cost, so
    # that cost is measured directly below instead of as a wall-clock
    # delta.
    governed_s, governed = _timed_run(corpus, specs, governed_engine())

    for metric in DETERMINISTIC_METRICS:
        if hardened.all_series(metric) != plain.all_series(metric):
            raise RuntimeError(f"hardened batched run diverged on {metric}")
        if governed.all_series(metric) != plain.all_series(metric):
            raise RuntimeError(f"governed batched run diverged on {metric}")

    watchdog_s = max(0.0, hardened_s - plain_s)
    checksum_s = _checksum_cost_s(cells)
    overhead_pct = (watchdog_s + checksum_s) / plain_s * 100.0

    budget_planning_s = _budget_planning_cost_s(
        [entry.graph for entry in corpus], cells
    )
    breaker_s = _breaker_cost_s(cells)
    governance_overhead_pct = (budget_planning_s + breaker_s) / plain_s * 100.0

    return {
        "benchmark": "robustness_overhead",
        "description": (
            "Fault-free cost of the hardened execution layer on the batched "
            "executor (%d corpus graphs x %d algorithms = %d cells): "
            "wall-clock with a never-firing cell_timeout=%gs + retries=2 "
            "versus no hardening, plus the directly measured SHA-256 "
            "cache/journal checksum cost (2 digests per cell)."
            % (len(corpus), len(specs), cells, NEVER_FIRING_TIMEOUT_S)
        ),
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "graphs": len(corpus),
        "plain_batched_s": round(plain_s, 6),
        "hardened_batched_s": round(hardened_s, 6),
        "watchdog_s": round(watchdog_s, 6),
        "watchdog_overhead_pct": round(watchdog_s / plain_s * 100.0, 2),
        "checksum_s": round(checksum_s, 6),
        "checksum_overhead_pct": round(checksum_s / plain_s * 100.0, 2),
        "overhead_pct": round(overhead_pct, 2),
        "acceptance_max_pct": 5.0,
        "tables_identical": True,
        "governance": {
            "description": (
                "Fault-free cost of the resource governor, measured "
                "directly: the greedy budget planner timed on full "
                "corpus-graph chunks and scaled as if every cell were "
                "packed, plus one breaker allow/record_success pair scaled "
                "to %d checkpoints per cell — both upper bounds.  A run "
                "with a never-splitting memory_budget=%d armed is also "
                "executed and asserted bit-identical to the plain run."
                % (BREAKER_PAIRS_PER_CELL, NEVER_SPLITTING_BUDGET)
            ),
            "governed_batched_s": round(governed_s, 6),
            "budget_planning_s": round(budget_planning_s, 6),
            "budget_planning_overhead_pct": round(
                budget_planning_s / plain_s * 100.0, 2
            ),
            "breaker_pairs_per_cell": BREAKER_PAIRS_PER_CELL,
            "breaker_s": round(breaker_s, 6),
            "breaker_overhead_pct": round(breaker_s / plain_s * 100.0, 2),
            "governance_overhead_pct": round(governance_overhead_pct, 2),
            "acceptance_max_pct": 5.0,
            "tables_identical": True,
        },
    }


def _history_metrics(record: dict) -> dict | None:
    out = {}
    for key in ("cells", "plain_batched_s", "hardened_batched_s", "overhead_pct"):
        if key in record:
            out[key] = record[key]
    governance = record.get("governance")
    if isinstance(governance, dict) and "governance_overhead_pct" in governance:
        out["governance_overhead_pct"] = governance["governance_overhead_pct"]
    return out or None


def write_bench_json(results: dict, path: Path = BENCH_PATH) -> Path:
    """Write the record with the capped per-PR ``history`` trajectory."""
    results = with_history(results, load_previous(path), _history_metrics)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="refresh BENCH_robustness.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny CI-sized run (one graph per corpus group) written to a "
            "temporary file instead of the checked-in record"
        ),
    )
    args = parser.parse_args(argv)
    # The smoke corpus finishes in ~0.1s, where scheduler noise alone is
    # worth several percent; the strict bar is for the checked-in
    # full-corpus record, the smoke gate only catches order-of-magnitude
    # regressions.
    bar_scale = 3.0 if args.smoke else 1.0
    if args.smoke:
        results = measure_robustness_overhead(graphs_per_group=1)
        path = write_bench_json(
            results, Path(tempfile.gettempdir()) / "BENCH_robustness.smoke.json"
        )
    else:
        results = measure_robustness_overhead()
        path = write_bench_json(results)
    print(f"wrote {path}")
    print(f"  cells={results['cells']} (cpu_count={results['cpu_count']})")
    print(f"  plain batched     {results['plain_batched_s']:8.3f} s")
    print(f"  hardened batched  {results['hardened_batched_s']:8.3f} s")
    print(
        f"  watchdog overhead {results['watchdog_s']*1e3:8.1f} ms "
        f"({results['watchdog_overhead_pct']:.2f}%)"
    )
    print(
        f"  checksum overhead {results['checksum_s']*1e3:8.1f} ms "
        f"({results['checksum_overhead_pct']:.2f}%)"
    )
    print(
        f"  total             {results['overhead_pct']:.2f}% "
        f"(acceptance <= {results['acceptance_max_pct']:.0f}%)"
    )
    governance = results["governance"]
    print(
        f"  governance        {governance['governance_overhead_pct']:.2f}% "
        f"(budget planning {governance['budget_planning_overhead_pct']:.2f}% "
        f"+ breakers {governance['breaker_overhead_pct']:.2f}%; "
        f"acceptance <= {governance['acceptance_max_pct']:.0f}%)"
    )
    if results["overhead_pct"] > results["acceptance_max_pct"] * bar_scale:
        raise SystemExit(
            f"hardening overhead {results['overhead_pct']:.2f}% exceeds the "
            f"{results['acceptance_max_pct'] * bar_scale:.0f}% acceptance bar"
        )
    if (
        governance["governance_overhead_pct"]
        > governance["acceptance_max_pct"] * bar_scale
    ):
        raise SystemExit(
            f"governance overhead {governance['governance_overhead_pct']:.2f}% "
            f"exceeds the {governance['acceptance_max_pct'] * bar_scale:.0f}% "
            "acceptance bar"
        )


if __name__ == "__main__":
    main()
