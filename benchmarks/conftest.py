"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one figure (or tuning table) of the paper
on the synthetic AT&T-like corpus and prints the reproduced series so the
numbers are visible in the pytest output alongside the pytest-benchmark
timings.

Scaling knobs (environment variables):

``REPRO_BENCH_GRAPHS_PER_GROUP``
    Graphs per vertex-count group (default 3).  The paper uses the full
    corpus (~67 per group); raising this brings the reproduction closer to
    the paper at a proportional cost in wall-clock time.
``REPRO_BENCH_ANTS`` / ``REPRO_BENCH_TOURS``
    Colony size and tour count for the Ant Colony entries (default 10/10,
    the paper's configuration).
"""

from __future__ import annotations

import os

import pytest

from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus

GRAPHS_PER_GROUP = int(os.environ.get("REPRO_BENCH_GRAPHS_PER_GROUP", "3"))
N_ANTS = int(os.environ.get("REPRO_BENCH_ANTS", "10"))
N_TOURS = int(os.environ.get("REPRO_BENCH_TOURS", "10"))


@pytest.fixture(scope="session")
def bench_corpus():
    """The corpus subset shared by all figure benchmarks."""
    return att_like_corpus(graphs_per_group=GRAPHS_PER_GROUP)


@pytest.fixture(scope="session")
def small_corpus():
    """A smaller subset for the parameter sweeps (which multiply the work)."""
    return att_like_corpus(graphs_per_group=1, vertex_counts=(20, 40, 60))


@pytest.fixture(scope="session")
def aco_params():
    """The paper's adopted ACO configuration (α=1, β=3, 10 tours)."""
    return ACOParams(alpha=1.0, beta=3.0, n_ants=N_ANTS, n_tours=N_TOURS, seed=0)
