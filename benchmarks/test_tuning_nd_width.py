"""Section VIII(b) — tuning the dummy-vertex width ``nd_width``.

The paper sweeps nd_width from 0.1 to 1.2 in steps of 0.1 and reports 1.1 as
the best value, with 1.0 adopted for its shorter running time.  This
benchmark reproduces the sweep (a coarser grid by default; set
``REPRO_BENCH_FULL_SWEEP=1`` for all twelve values) and checks the
directional finding that counting dummy vertices with a non-negligible width
changes the layerings the colony prefers.
"""

from __future__ import annotations

import os

from benchmarks.shape import print_series
from repro.experiments.reporting import format_sweep
from repro.experiments.tuning import nd_width_sweep

FULL = os.environ.get("REPRO_BENCH_FULL_SWEEP", "0") == "1"
ND_WIDTHS = (
    tuple(round(0.1 * i, 1) for i in range(1, 13)) if FULL else (0.1, 0.4, 0.7, 1.0, 1.2)
)


def test_tuning_nd_width(benchmark, small_corpus, aco_params):
    sweep = benchmark.pedantic(
        lambda: nd_width_sweep(small_corpus, nd_widths=ND_WIDTHS, base_params=aco_params),
        rounds=1,
        iterations=1,
    )
    print_series("Section VIII — nd_width sweep", format_sweep(sweep))

    # All settings produce finite, positive objectives and the sweep records
    # every requested point (shape check; the objective is not comparable
    # across nd_width values because the metric itself changes with it).
    assert len(sweep.points) == len(ND_WIDTHS)
    assert all(p.mean_objective > 0 for p in sweep.points)
    # Larger dummy widths can only increase the measured layering width.
    widths = {p.setting[0]: p.mean_width_including_dummies for p in sweep.points}
    assert widths[max(widths)] >= widths[min(widths)] - 1e-9
