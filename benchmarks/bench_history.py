"""Per-PR perf trajectory entries inside the checked-in ``BENCH_*.json`` files.

Each ``emit_*`` benchmark script historically *overwrote* its record, so the
only way to see whether a PR made things faster was git archaeology.  Now
every write appends a small ``{version, date, metrics}`` entry to a
``history`` list inside the record (oldest-first, capped), and a record
written before this scheme existed is backfilled as the first entry — so the
trajectory starts from the pre-history numbers instead of losing them.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path
from typing import Any, Callable

import repro

__all__ = ["HISTORY_CAP", "load_previous", "with_history"]

#: Maximum number of history entries kept per record (oldest dropped first).
HISTORY_CAP = 20


def load_previous(path: Path) -> dict[str, Any] | None:
    """The existing record at *path*, or ``None`` when absent/unreadable."""
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return previous if isinstance(previous, dict) else None


def with_history(
    results: dict[str, Any],
    previous: dict[str, Any] | None,
    select: Callable[[dict[str, Any]], dict[str, Any] | None],
    *,
    cap: int = HISTORY_CAP,
) -> dict[str, Any]:
    """Return *results* plus an updated capped ``history`` list.

    *select* extracts the record's key metrics (a small flat dict); it is
    applied to the fresh *results* for the new entry and — when the previous
    record predates the history scheme — to *previous* for the backfill
    entry (stamped ``version: "pre-history"`` since old records carried no
    version).  Entries are oldest-first; the list is truncated to the newest
    *cap* entries.
    """
    history: list[dict[str, Any]] = []
    if previous is not None:
        prior = previous.get("history")
        if isinstance(prior, list):
            history = list(prior)
        else:
            backfill = select(previous)
            if backfill:
                history = [
                    {"version": "pre-history", "date": None, "metrics": backfill}
                ]
    entry_metrics = select(results)
    if entry_metrics:
        history.append(
            {
                "version": repro.__version__,
                "date": date.today().isoformat(),
                "metrics": entry_metrics,
            }
        )
    return {**results, "history": history[-cap:]}
