"""CI smoke for the resource governor (no thresholds, loud failures).

Drives the real CLI end to end under ``REPRO_CHAOS`` resource faults and
asserts the governance contract the chaos test matrix checks in-process:

* an injected allocation blow-up is recorded as an *oom* failure — never a
  generic crash — and the run completes with every other cell intact;
* under an armed ``--memory-budget`` the same blow-up dies inside the
  worker's ``RLIMIT_AS`` cap and the pool still labels the death *oom*
  (process executor, POSIX only);
* a full disk (``ENOSPC`` on every cache write) degrades the result cache
  to memory-only with a single governor note and byte-identical tables;
* a tiny ``--memory-budget`` splits planned packs on the batched executor
  — noted once on stderr, tables byte-identical to the unbudgeted run;
* a crash storm (every cell kills its worker) trips the respawn breaker
  and collapses the pool to in-parent serial execution instead of
  respawning forever — the run still exits 0.

Run from the repository root: ``python benchmarks/resource_smoke.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

COMPARE = [
    sys.executable,
    "-m",
    "repro",
    "compare",
    "--graphs-per-group",
    "1",
    "--vertex-counts",
    "10",
    "20",
    "--ants",
    "2",
    "--tours",
    "2",
    "--seed",
    "0",
]


def run(extra: list[str], env_extra: dict[str, str] | None = None, expect: int = 0):
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.pop("REPRO_CHAOS", None)
    env.update(env_extra or {})
    proc = subprocess.run([*COMPARE, *extra], env=env, capture_output=True, text=True)
    if proc.returncode != expect:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(
            f"expected exit {expect}, got {proc.returncode} for {extra!r}"
        )
    return proc


def deterministic_tables(stdout: str) -> str:
    """Every aggregate table except (running_time), which is wall-clock."""
    keep: list[str] = []
    skip = False
    for line in stdout.splitlines():
        if line.startswith("(running_time)"):
            skip = True
        elif line.startswith("("):
            skip = False
        if not skip:
            keep.append(line)
    return "\n".join(keep)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-resource-smoke-") as tmp:
        env_base = {"REPRO_SHM_MANIFEST_DIR": os.path.join(tmp, "shm-manifests")}
        reference = deterministic_tables(run([], env_base).stdout)

        # 1. An in-process allocation blow-up is labelled oom, not crash,
        # and poisons only its own cell.
        oomed = run(
            [],
            {**env_base, "REPRO_CHAOS": "oom@8388608@*:AntColony:att-like-n10-*"},
        )
        if "1 of 10 cells failed" not in oomed.stdout or "1 oom" not in oomed.stdout:
            sys.stderr.write(oomed.stdout)
            raise SystemExit("injected oom was not isolated and labelled 'oom'")
        print("resource smoke OK (serial): oom labelled and isolated")

        # 2. The same blow-up sized against an armed RLIMIT_AS cap: the
        # worker dies inside the kernel's limit and the pool labels the
        # death oom (an unarmed budget would have called it a crash).
        if os.name == "posix":
            capped = run(
                ["--executor", "process", "--jobs", "2", "--memory-budget", "64M"],
                {
                    **env_base,
                    "REPRO_CHAOS": "oom@2147483648@*:AntColony:att-like-n10-*",
                },
            )
            if (
                "1 of 10 cells failed" not in capped.stdout
                or "1 oom" not in capped.stdout
            ):
                sys.stderr.write(capped.stdout + capped.stderr)
                raise SystemExit("worker death under --memory-budget not labelled oom")
            print("resource smoke OK (process): RLIMIT_AS death labelled oom")

        # 3. ENOSPC on every cache write: the cache degrades to memory-only
        # with one governor note and the tables do not change.
        cache_dir = os.path.join(tmp, "cache")
        full_disk = run(
            ["--cache-dir", cache_dir],
            {**env_base, "REPRO_CHAOS": "enospc@*:AntColony:*"},
        )
        if deterministic_tables(full_disk.stdout) != reference:
            raise SystemExit("enospc-degraded tables diverge from fault-free run")
        if "memory-only result cache" not in full_disk.stderr:
            sys.stderr.write(full_disk.stderr)
            raise SystemExit("cache did not report degradation to memory-only")
        print("resource smoke OK (enospc): cache degraded to memory-only, tables identical")

        # 4. A budget between one graph's estimate and the pack's forces
        # the batched planner to split — noted once, results unchanged.
        split = run(
            ["--executor", "batched", "--jobs", "2", "--memory-budget", "8K"],
            env_base,
        )
        if deterministic_tables(split.stdout) != reference:
            raise SystemExit("budget-split tables diverge from the unbudgeted run")
        if "splits planned packs" not in split.stderr:
            sys.stderr.write(split.stderr)
            raise SystemExit("pack splitting was not announced on stderr")
        print("resource smoke OK (batched): memory budget split packs, tables identical")

        # 5. Crash storm: every cell SIGKILLs its worker; the respawn
        # breaker must collapse the pool to in-parent serial execution
        # instead of respawning forever.
        if os.name == "posix":
            storm = run(
                ["--executor", "process", "--jobs", "2"],
                {**env_base, "REPRO_CHAOS": "kill9@*:*"},
            )
            if "in-parent serial execution" not in storm.stderr:
                sys.stderr.write(storm.stderr)
                raise SystemExit("crash storm did not trip the respawn breaker")
            print("resource smoke OK (storm): respawn breaker collapsed pool to serial")

    print("resource smoke OK: budgets, breakers and disk-full degradation hold")


if __name__ == "__main__":
    main()
