"""Measure layout-service throughput and latency, with and without faults.

The serving PR's acceptance bar asks for an open-loop load test against a
real :class:`repro.serving.LayoutServer` — loop thread, admission queue,
megabatch worker and two-layer cache all live — recording:

* ``fault_free`` — requests/sec and p50/p99 latency for a mixed workload:
  a set of distinct small DAGs (cache misses that the batch window
  coalesces into ``PackedProblems`` megabatches) cycled past its own size
  so later arrivals repeat earlier graphs and are answered from the
  ``ResultCache``.  The generator is open-loop (request ``i`` launches at
  ``i/rate`` regardless of completions), so a slow server shows up as
  honest tail latency rather than a self-throttled arrival rate.
* ``with_faults`` — the same workload plus a slice of requests whose cells
  a ``REPRO_CHAOS`` kill9 rule targets.  The point of the record is the
  *blast radius*: faulted requests answer labelled ``500``s while the
  surviving requests' throughput and tail stay in the same regime — the
  graceful-degradation story, as a number.

Results land in ``BENCH_serving.json`` at the repository root with the
capped per-PR history trajectory (refresh with ``PYTHONPATH=src python
benchmarks/emit_serving_bench.py``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
import threading
from pathlib import Path

from repro.serving import LayoutServer, ServeConfig
from repro.serving.loadgen import run_load_sync
from repro.utils import chaos

try:
    from benchmarks.bench_history import load_previous, with_history
except ImportError:  # run directly: python benchmarks/emit_*.py
    from bench_history import load_previous, with_history

__all__ = ["BENCH_PATH", "measure_serving", "write_bench_json"]

#: Where the benchmark record is checked in (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Fast deterministic Ant Colony parameters for request payloads.
FAST_ACO = {"n_ants": 2, "n_tours": 2, "seed": 0}

#: Chaos rule for the faulted pass: SIGKILL the cells of every request
#: named ``serve-fault-*`` (degrades to a labelled 500 on the in-parent
#: batched path), leaving the rest of the workload untouched.
FAULT_RULE = "kill9:AntColony:serve-fault-*"


def _chain_graph(n: int) -> dict:
    """A length-*n* chain with one long edge (produces dummy vertices)."""
    edges = [[v, v + 1] for v in range(n - 1)]
    edges.append([0, n - 1])
    return {"edges": edges}


def _payloads(distinct: int, *, faulted: bool) -> list[dict]:
    """The request mix the generator cycles through.

    *distinct* unique graphs (misses on first sight, cache hits on every
    later cycle); when *faulted*, every eighth slot is replaced by a
    request the chaos rule targets.
    """
    payloads = [
        {
            "graph": _chain_graph(5 + i),
            "method": "AntColony",
            "aco": dict(FAST_ACO),
            "name": f"serve-bench-{i}",
            "deadline_s": 30.0,
        }
        for i in range(distinct)
    ]
    if faulted:
        for slot in range(0, distinct, 8):
            payloads[slot] = {
                **payloads[slot],
                "name": f"serve-fault-{slot}",
            }
    return payloads


class _ServerThread:
    """Run one in-process server on a daemon thread for the duration."""

    def __init__(self, config: ServeConfig) -> None:
        self.server = LayoutServer(config)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            task = asyncio.ensure_future(self.server.run())
            while self.server.port is None and not task.done():
                await asyncio.sleep(0.005)
            self._ready.set()
            await task

        asyncio.run(main())

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        if not self._ready.wait(60.0) or self.server.port is None:
            raise RuntimeError("benchmark server failed to start")
        return self

    def __exit__(self, *exc: object) -> None:
        loop = self.server._loop
        if loop is not None and self._thread.is_alive():
            try:
                loop.call_soon_threadsafe(self.server.initiate_drain)
            except RuntimeError:
                pass
        self._thread.join(30.0)

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port


def _one_pass(
    *, total: int, rate_per_s: float, distinct: int, faulted: bool
) -> dict:
    payloads = _payloads(distinct, faulted=faulted)
    config = ServeConfig(
        port=0,
        announce=False,
        prewarm=False,
        exit_on_drain_timeout=False,
        batch_window_s=0.02,
    )
    previous_rule = os.environ.get(chaos.CHAOS_ENV)
    if faulted:
        os.environ[chaos.CHAOS_ENV] = FAULT_RULE
    try:
        with _ServerThread(config) as running:
            # One untimed request first: the first cell pays the engine's
            # import and allocator costs, which are startup — not serving —
            # latency.
            run_load_sync(
                "127.0.0.1",
                running.port,
                [
                    {
                        "graph": _chain_graph(4),
                        "method": "AntColony",
                        "aco": dict(FAST_ACO),
                        "name": "serve-warmup",
                    }
                ],
                total=1,
                rate_per_s=100.0,
            )
            report = run_load_sync(
                "127.0.0.1",
                running.port,
                payloads,
                total=total,
                rate_per_s=rate_per_s,
            )
    finally:
        if faulted:
            if previous_rule is None:
                os.environ.pop(chaos.CHAOS_ENV, None)
            else:
                os.environ[chaos.CHAOS_ENV] = previous_rule
    summary = report.as_dict()
    if report.connect_errors:
        raise RuntimeError(
            f"{report.connect_errors} connections failed mid-bench: {summary}"
        )
    ok = int(summary["by_status"].get("200", 0))
    failed = report.completed - ok
    expected_failures = (
        sum(1 for i in range(total) if "fault" in payloads[i % distinct]["name"])
        if faulted
        else 0
    )
    if failed != expected_failures:
        raise RuntimeError(
            f"expected {expected_failures} labelled failures, saw {failed}: "
            f"{summary['by_status']}"
        )
    summary["ok"] = ok
    summary["labelled_failures"] = failed
    return summary


def measure_serving(
    *, total: int = 160, rate_per_s: float = 50.0, distinct: int = 16
) -> dict:
    """Run the fault-free and faulted passes and summarise both."""
    fault_free = _one_pass(
        total=total, rate_per_s=rate_per_s, distinct=distinct, faulted=False
    )
    with_faults = _one_pass(
        total=total, rate_per_s=rate_per_s, distinct=distinct, faulted=True
    )
    return {
        "benchmark": "serving_load",
        "description": (
            "Open-loop load against an in-process repro-dag serve instance: "
            "%d requests at %g/s cycling %d distinct small DAGs (repeats hit "
            "the two-layer cache, concurrent misses coalesce into "
            "megabatches).  The faulted pass adds a REPRO_CHAOS kill9 rule "
            "(%r) so a slice of requests fail with labelled 500s while the "
            "rest keep serving." % (total, rate_per_s, distinct, FAULT_RULE)
        ),
        "cpu_count": os.cpu_count(),
        "total_requests": total,
        "offered_rate_per_s": rate_per_s,
        "distinct_graphs": distinct,
        "fault_free": fault_free,
        "with_faults": with_faults,
    }


def _history_metrics(record: dict) -> dict | None:
    out = {}
    for side in ("fault_free", "with_faults"):
        pass_record = record.get(side)
        if not isinstance(pass_record, dict):
            continue
        latency = pass_record.get("latency_ms", {})
        out[side] = {
            "requests_per_s": pass_record.get("requests_per_s"),
            "p50_ms": latency.get("p50"),
            "p99_ms": latency.get("p99"),
        }
    return out or None


def write_bench_json(results: dict, path: Path = BENCH_PATH) -> Path:
    """Write the record with the capped per-PR ``history`` trajectory."""
    results = with_history(results, load_previous(path), _history_metrics)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="refresh BENCH_serving.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny CI-sized run (fewer requests at a lower rate) written to "
            "a throwaway file — exercises the full path without committing "
            "shared-runner timings"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = measure_serving(total=32, rate_per_s=25.0, distinct=8)
        out = Path(tempfile.gettempdir()) / "BENCH_serving.smoke.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"smoke OK -> {out}")
    else:
        results = measure_serving()
        path = write_bench_json(results)
        print(f"wrote {path}")
    for side in ("fault_free", "with_faults"):
        summary = results[side]
        latency = summary["latency_ms"]
        print(
            "%s: %.1f req/s, p50 %.1f ms, p99 %.1f ms, %d ok, %d labelled "
            "failures"
            % (
                side,
                summary["requests_per_s"],
                latency["p50"],
                latency["p99"],
                summary["ok"],
                summary["labelled_failures"],
            )
        )


if __name__ == "__main__":
    main()
