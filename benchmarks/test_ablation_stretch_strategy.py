"""Ablation A — where should the extra layers be inserted before the ants start?

Section V-A of the paper argues for inserting the new layers *between* the
LPL layers (Fig. 2) instead of piling them above/below the layering (Fig. 1),
because the former enlarges every vertex's layer span uniformly.  This
ablation runs the colony with both strategies on the same graphs and
compares the resulting objectives, reproducing the design argument
quantitatively.
"""

from __future__ import annotations

from statistics import fmean

from benchmarks.shape import print_series
from repro.aco.layering_aco import aco_layering_detailed
from repro.aco.problem import LayeringProblem


def _mean_objective(corpus, params, strategy):
    values = []
    for entry in corpus:
        result = aco_layering_detailed(entry.graph, params, stretch_strategy=strategy)
        values.append(result.metrics.objective)
    return fmean(values)


def _mean_span_width(corpus, strategy):
    """Average layer-span width of the stretched starting layering."""
    spans = []
    for entry in corpus:
        problem = LayeringProblem.from_graph(entry.graph, stretch_strategy=strategy)
        assignment = problem.initial_assignment
        for v in range(problem.n_vertices):
            lo, hi = problem.layer_span(assignment, v)
            spans.append(hi - lo + 1)
    return fmean(spans)


def test_ablation_stretch_strategy(benchmark, small_corpus, aco_params):
    objectives = benchmark.pedantic(
        lambda: {
            strategy: _mean_objective(small_corpus, aco_params, strategy)
            for strategy in ("between", "split")
        },
        rounds=1,
        iterations=1,
    )
    span_widths = {
        strategy: _mean_span_width(small_corpus, strategy)
        for strategy in ("between", "split")
    }
    print_series(
        "Ablation A — stretch strategy",
        "mean objective per strategy: "
        + ", ".join(f"{k}={v:.4f}" for k, v in objectives.items())
        + "\nmean layer-span size per strategy: "
        + ", ".join(f"{k}={v:.1f}" for k, v in span_widths.items()),
    )

    # The design argument of Section V-A: stretching between the LPL layers
    # gives the inner (non source/sink) vertices room to move, which shows up
    # as a larger average layer span ...
    assert span_widths["between"] >= span_widths["split"] * 0.9
    # ... and the resulting layerings are at least as good.
    assert objectives["between"] >= objectives["split"] - 1e-6
