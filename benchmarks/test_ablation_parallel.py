"""Ablation C — single colony vs several independent colonies.

The paper frames each tour as emulating a parallel work environment for the
ants; the natural coarse-grained parallelisation of the whole algorithm is to
run independent colonies with different seeds and keep the best layering.
This ablation quantifies the quality gain of a 4-colony portfolio over a
single colony at equal per-colony budget (the wall-clock cost is what the
process/thread back ends parallelise away on multi-core machines).
"""

from __future__ import annotations

from statistics import fmean

from benchmarks.shape import print_series
from repro.aco.layering_aco import aco_layering_detailed
from repro.aco.parallel import parallel_aco_layering
from repro.layering.metrics import evaluate_layering


def test_ablation_parallel_colonies(benchmark, small_corpus, aco_params):
    def run():
        single, multi = [], []
        for entry in small_corpus:
            single.append(
                aco_layering_detailed(entry.graph, aco_params).metrics.objective
            )
            result = parallel_aco_layering(
                entry.graph, aco_params, n_colonies=4, executor="serial"
            )
            multi.append(
                evaluate_layering(
                    entry.graph, result.layering, nd_width=aco_params.nd_width
                ).objective
            )
        return fmean(single), fmean(multi)

    single_mean, multi_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Ablation C — colony portfolio",
        f"mean objective: single colony {single_mean:.4f}, best of 4 colonies {multi_mean:.4f}",
    )

    # A portfolio of independent colonies can only help (it contains the
    # single-colony result up to seed differences).
    assert multi_mean >= single_mean * 0.98
