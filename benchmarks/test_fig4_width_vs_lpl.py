"""Figure 4 — width of the Ant Colony layering compared with LPL and LPL+PL.

Paper claims reproduced here (Section VII):

* the ACO layering is no wider than the LPL layering (dummy vertices
  included), and
* it matches the width of LPL combined with the Promote Layering heuristic;
* excluding dummy vertices the ACO width is at most the LPL width as well.
"""

from __future__ import annotations

from benchmarks.shape import assert_close, assert_dominates, print_series
from repro.experiments.figures import figure4
from repro.experiments.reporting import format_figure


def test_fig4_width_vs_lpl(benchmark, bench_corpus, aco_params):
    fig = benchmark.pedantic(
        lambda: figure4(corpus=bench_corpus, aco_params=aco_params),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 4", format_figure(fig))

    incl = fig.panel("width_including_dummies").series
    excl = fig.panel("width_excluding_dummies").series

    # ACO narrower than (or equal to) LPL, and close to LPL+PL.
    assert_dominates(incl["AntColony"], incl["LPL"], label="fig4 width incl. dummies vs LPL")
    assert_close(incl["AntColony"], incl["LPL+PL"], rel_tol=0.25, label="fig4 ACO vs LPL+PL")
    assert_dominates(excl["AntColony"], excl["LPL"], label="fig4 width excl. dummies vs LPL")
