"""CI smoke for the hardened execution layer (no thresholds, loud failures).

Drives the real CLI end to end under ``REPRO_CHAOS`` fault injection and
asserts the robustness contract the chaos test matrix checks in-process:

* a transient raise on every AntColony cell is absorbed by ``--retries``
  and the aggregate tables come out byte-identical to a fault-free run
  (on every deterministic metric; ``running_time`` is wall-clock);
* a permanent hang is cut by ``--timeout`` and recorded as a *timeout*
  failure — the run still exits 0 with every other cell intact;
* a SIGKILL'd pool worker is respawned, only its in-flight cell fails,
  and a retry restores the fault-free tables (process executor);
* an interrupted chaotic run (``REPRO_ENGINE_MAX_CELLS``) finishes under
  ``--resume`` with the fault-free tables.

Run from the repository root: ``python benchmarks/chaos_smoke.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

COMPARE = [
    sys.executable,
    "-m",
    "repro",
    "compare",
    "--graphs-per-group",
    "1",
    "--vertex-counts",
    "10",
    "20",
    "--ants",
    "2",
    "--tours",
    "2",
    "--seed",
    "0",
]


def run(extra: list[str], env_extra: dict[str, str] | None = None, expect: int = 0):
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.pop("REPRO_CHAOS", None)
    env.update(env_extra or {})
    proc = subprocess.run([*COMPARE, *extra], env=env, capture_output=True, text=True)
    if proc.returncode != expect:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(
            f"expected exit {expect}, got {proc.returncode} for {extra!r}"
        )
    return proc


def deterministic_tables(stdout: str) -> str:
    """Every aggregate table except (running_time), which is wall-clock."""
    keep: list[str] = []
    skip = False
    for line in stdout.splitlines():
        if line.startswith("(running_time)"):
            skip = True
        elif line.startswith("("):
            skip = False
        if not skip:
            keep.append(line)
    return "\n".join(keep)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        env_base = {"REPRO_SHM_MANIFEST_DIR": os.path.join(tmp, "shm-manifests")}
        reference = deterministic_tables(run([], env_base).stdout)

        # 1. Transient raise + retries: tables identical, retry counted.
        chaotic = run(
            ["--retries", "2", "--progress"],
            {**env_base, "REPRO_CHAOS": "raise:AntColony:*"},
        )
        if deterministic_tables(chaotic.stdout) != reference:
            raise SystemExit("transient-raise tables diverge from fault-free run")
        if "retried" not in chaotic.stderr:
            sys.stderr.write(chaotic.stderr)
            raise SystemExit("run summary did not report the retries")
        print("chaos smoke OK (serial): transient raise absorbed by --retries")

        # 2. Permanent hang + deadline: the hung cell times out, the run
        # completes and labels the loss.
        hung = run(
            ["--timeout", "2", "--progress"],
            {**env_base, "REPRO_CHAOS": "hang@30@*:AntColony:att-like-n10-*"},
        )
        if "1 of 10 cells failed" not in hung.stdout or "timeout" not in hung.stdout:
            sys.stderr.write(hung.stdout)
            raise SystemExit("permanent hang was not recorded as a timeout failure")
        if "timed out" not in hung.stderr:
            sys.stderr.write(hung.stderr)
            raise SystemExit("run summary did not report the timeout")
        print("chaos smoke OK (serial): permanent hang cut by --timeout")

        # 3. kill -9 in a pool worker: respawn + retry restores the tables.
        if os.name == "posix":
            killed = run(
                ["--executor", "process", "--jobs", "2", "--retries", "1"],
                {**env_base, "REPRO_CHAOS": "kill9:AntColony:att-like-n10-*"},
            )
            if deterministic_tables(killed.stdout) != reference:
                raise SystemExit("kill9 tables diverge from fault-free run")
            print("chaos smoke OK (process): SIGKILL'd worker respawned, cell retried")

        # 4. Interrupt a chaotic run, then resume it to the reference tables.
        run_dir = os.path.join(tmp, "run")
        run(
            ["--run-dir", run_dir, "--retries", "2"],
            {
                **env_base,
                "REPRO_CHAOS": "raise:AntColony:*",
                "REPRO_ENGINE_MAX_CELLS": "4",
            },
            expect=2,
        )
        resumed = run(
            ["--run-dir", run_dir, "--resume", "--retries", "2"],
            {**env_base, "REPRO_CHAOS": "raise:AntColony:*"},
        )
        if deterministic_tables(resumed.stdout) != reference:
            raise SystemExit("resumed chaotic run diverges from fault-free tables")
        print("chaos smoke OK (resume): interrupted chaotic run finished identically")

    print("chaos smoke OK: all fault modes recovered with fault-free tables")


if __name__ == "__main__":
    main()
