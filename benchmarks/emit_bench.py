"""Measure the ACO walk-engine speedup and persist it to ``BENCH_aco_kernels.json``.

The JSON file lives at the repository root and is refreshed by the
``test_kernel_speedup`` benchmark (or by running this module directly with
``PYTHONPATH=src python benchmarks/emit_bench.py``), so the performance
trajectory of the hot path is tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.aco import _native
from repro.aco.colony import AntColony
from repro.aco.params import ACOParams
from repro.aco.problem import LayeringProblem
from repro.datasets.corpus import CORPUS_SEED
from repro.graph.generators import att_like_dag

try:
    from benchmarks.bench_history import load_previous, with_history
except ImportError:  # run directly: python benchmarks/emit_*.py
    from bench_history import load_previous, with_history

__all__ = ["BENCH_PATH", "measure_kernel_speedup", "write_bench_json"]

#: Where the benchmark record is checked in (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_aco_kernels.json"

#: Corpus-style graph sizes timed by the benchmark.
SIZES = (50, 200, 500)


def _time_colony(problem: LayeringProblem, params: ACOParams, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        AntColony(problem, params).run()
        best = min(best, time.perf_counter() - start)
    return best


def measure_kernel_speedup(
    sizes: tuple[int, ...] = SIZES, *, repeats: int = 3
) -> dict:
    """Time both engines (single colony, default parameters) per graph size."""
    _native.load_native()
    entries = []
    for n in sizes:
        graph = att_like_dag(n, seed=CORPUS_SEED + n)
        problem = LayeringProblem.from_graph(graph)
        python_s = _time_colony(problem, ACOParams(seed=0, engine="python"), repeats)
        vectorized_s = _time_colony(
            problem, ACOParams(seed=0, engine="vectorized"), repeats
        )
        entries.append(
            {
                "n_vertices": n,
                "n_edges": graph.n_edges,
                "python_s": round(python_s, 6),
                "vectorized_s": round(vectorized_s, 6),
                "speedup": round(python_s / vectorized_s, 2),
            }
        )
    return {
        "benchmark": "aco_kernel_speedup",
        "description": (
            "Wall-clock of one AntColony.run (10 ants, 10 tours, default "
            "params, fixed seed) per walk engine on corpus-style graphs; "
            "best of %d runs, seconds." % repeats
        ),
        "native_backend": _native.native_status(),
        "sizes": entries,
    }


def _history_metrics(record: dict) -> dict | None:
    """Key metrics of one record for the capped ``history`` trajectory."""
    sizes = record.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        return None
    largest = sizes[-1]
    return {
        k: largest.get(k) for k in ("n_vertices", "python_s", "vectorized_s", "speedup")
    }


def write_bench_json(results: dict, path: Path = BENCH_PATH) -> Path:
    """Write the benchmark record (stable key order, trailing newline)."""
    results = with_history(results, load_previous(path), _history_metrics)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="refresh BENCH_aco_kernels.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny CI-sized run (two small graphs, one repeat) written to a "
            "temporary file instead of the checked-in record"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        results = measure_kernel_speedup(sizes=(20, 40), repeats=1)
        path = write_bench_json(
            results, Path(tempfile.gettempdir()) / "BENCH_aco_kernels.smoke.json"
        )
    else:
        results = measure_kernel_speedup()
        path = write_bench_json(results)
    print(f"wrote {path}")
    for entry in results["sizes"]:
        print(
            f"  n={entry['n_vertices']:>4}: python {entry['python_s']*1e3:8.1f} ms   "
            f"vectorized {entry['vectorized_s']*1e3:7.1f} ms   "
            f"speedup {entry['speedup']:6.2f}x"
        )


if __name__ == "__main__":
    main()
