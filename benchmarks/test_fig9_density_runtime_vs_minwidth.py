"""Figure 9 — edge density and running time of the Ant Colony vs MinWidth and MinWidth+PL.

Paper claims reproduced here (Section VII):

* MinWidth and MinWidth+PL achieve lower maximum edge density than the Ant
  Colony only by growing much taller; the Ant Colony stays within a small
  factor;
* the Ant Colony's running time is of the same order as the MinWidth
  family's rather than orders of magnitude worse (since the PR 1 kernel
  refactor the colony actually ties or beats pure-Python MinWidth at corpus
  sizes, so the paper's strict ordering is asserted as a bounded ratio).
"""

from __future__ import annotations

from benchmarks.shape import print_series, series_mean
from repro.experiments.figures import figure9
from repro.experiments.reporting import format_figure


def test_fig9_density_runtime_vs_minwidth(benchmark, bench_corpus, aco_params):
    fig = benchmark.pedantic(
        lambda: figure9(corpus=bench_corpus, aco_params=aco_params),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 9", format_figure(fig))

    density = fig.panel("edge_density").series
    runtime = fig.panel("running_time").series

    # MinWidth-family layerings trade height for lower per-gap density; the
    # ACO should stay within a small factor of them.
    assert series_mean(density["AntColony"]) <= 3.0 * series_mean(density["MinWidth+PL"]), (
        "fig9: ACO edge density should stay within a small factor of MinWidth+PL"
    )
    # The paper's strict "MinWidth runs faster than the Ant Colony" ordering
    # held for its (and our seed's) per-vertex implementation; the kernelized
    # colony now ties or beats the pure-Python MinWidth heuristic at corpus
    # sizes.  The durable, implementation-independent claim is that the ACO's
    # running time stays within a small factor of the MinWidth family rather
    # than orders of magnitude above it.
    assert series_mean(runtime["AntColony"]) <= 50.0 * max(
        series_mean(runtime["MinWidth"]), 1e-6
    ), "fig9: ACO running time should stay within a 50x factor of MinWidth"
    assert series_mean(runtime["AntColony"]) <= 50.0 * max(
        series_mean(runtime["MinWidth+PL"]), 1e-6
    ), "fig9: ACO running time should stay within a 50x factor of MinWidth+PL"
