"""Measure the experiment-engine speedup on the figure workload.

The workload is the one every figure benchmark runs: the paper's LPL-family
comparison (LPL, LPL+PL, AntColony) over the AT&T-like corpus subset — the
data behind Figs. 4/6/8.  Three configurations are timed end to end:

* ``serial_cold_s`` — the historical baseline: serial engine, no cache;
* ``process_cold_s`` — process executor with >= 4 workers, cold cache
  (the multi-core win; on a single-CPU container this is roughly break-even,
  which the record reports honestly via ``cpu_count``);
* ``process_warm_s`` — the same process engine again with the now-warm
  content-addressed result cache: every cell is served from disk, which is
  what makes repeated ``repro-dag figures``/``compare``/tuning runs
  incremental on any machine.

All three configurations are asserted to produce identical metrics before
the record is written (the engine's determinism contract).  Results land in
``BENCH_experiment_engine.json`` at the repository root, the checked-in perf
record tracked across PRs (refresh with
``PYTHONPATH=src python benchmarks/emit_engine_bench.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.aco.params import ACOParams
from repro.datasets.corpus import att_like_corpus
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, default_method_specs
from repro.experiments.runner import run_comparison

try:
    from benchmarks.bench_history import load_previous, with_history
except ImportError:  # run directly: python benchmarks/emit_*.py
    from bench_history import load_previous, with_history

__all__ = [
    "BENCH_PATH",
    "measure_engine_speedup",
    "measure_full_corpus",
    "write_bench_json",
]

#: The deterministic comparison series (everything except measured wall-clock).
DETERMINISTIC_METRICS = (
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "objective",
)

#: Where the benchmark record is checked in (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_experiment_engine.json"

#: The paper's LPL-family figure workload (Figs. 4/6/8).
FIGURE_ALGORITHMS = ("LPL", "LPL+PL", "AntColony")

#: The acceptance bar asks for >= 4 workers.
MIN_JOBS = 4


def _workload(graphs_per_group: int):
    corpus = att_like_corpus(graphs_per_group=graphs_per_group)
    specs = default_method_specs(aco_params=ACOParams(seed=0))
    selected = {name: specs[name] for name in FIGURE_ALGORITHMS}
    return corpus, selected


def _timed_run(corpus, algorithms, engine):
    start = time.perf_counter()
    comparison = run_comparison(corpus, algorithms, engine=engine)
    return time.perf_counter() - start, comparison


def _deterministic_view(comparison):
    return [
        (r.algorithm, r.graph_name, r.vertex_count, r.metrics)
        for r in comparison.results
    ]


def measure_engine_speedup(*, graphs_per_group: int = 2, jobs: int | None = None) -> dict:
    """Time the figure workload serial/parallel/warm-cache and summarise."""
    corpus, algorithms = _workload(graphs_per_group)
    jobs = jobs if jobs is not None else max(MIN_JOBS, os.cpu_count() or 1)

    serial_s, serial = _timed_run(corpus, algorithms, ExperimentEngine())
    batched_s, batched = _timed_run(
        corpus, algorithms, ExperimentEngine(executor="batched")
    )

    with tempfile.TemporaryDirectory(prefix="repro-engine-bench-") as cache_dir:
        cache = ResultCache(cache_dir)
        process_engine = ExperimentEngine(executor="process", jobs=jobs, cache=cache)
        process_cold_s, process_cold = _timed_run(corpus, algorithms, process_engine)
        process_warm_s, process_warm = _timed_run(corpus, algorithms, process_engine)
        cache_entries = len(cache)
        warm_hits = cache.hit_stats()

    # Determinism contract: executor and cache must not change any metric.
    baseline = _deterministic_view(serial)
    assert _deterministic_view(batched) == baseline, "batched run diverged"
    assert _deterministic_view(process_cold) == baseline, "process run diverged"
    assert _deterministic_view(process_warm) == baseline, "warm-cache run diverged"
    # The warm pass must have been served by the in-process LRU, not disk.
    assert warm_hits.memory_hits > 0, "warm run never hit the memory cache layer"

    return {
        "benchmark": "experiment_engine_speedup",
        "description": (
            "End-to-end wall-clock of the LPL-family figure workload "
            "(%d corpus graphs x %d algorithms = %d cells) through the "
            "shared experiment engine: serial cold baseline, process "
            "executor with %d workers (cold cache), and the same process "
            "engine with a warm content-addressed result cache, seconds."
            % (len(corpus), len(algorithms), len(corpus) * len(algorithms), jobs)
        ),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "cells": len(corpus) * len(algorithms),
        "graphs_per_group": graphs_per_group,
        "cache_entries": cache_entries,
        "serial_cold_s": round(serial_s, 6),
        "batched_cold_s": round(batched_s, 6),
        "process_cold_s": round(process_cold_s, 6),
        "process_warm_s": round(process_warm_s, 6),
        "batched_speedup": round(serial_s / batched_s, 2),
        "parallel_speedup": round(serial_s / process_cold_s, 2),
        "warm_cache_speedup": round(serial_s / process_warm_s, 2),
    }


def _rss_peak_mb() -> float | None:
    """Process RSS high-water mark in MiB; ``None`` where unavailable.

    ``resource`` is Unix-only, and ``ru_maxrss`` units differ by platform
    (bytes on macOS, KiB elsewhere).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 2**20 if sys.platform == "darwin" else 1024
    return round(peak / divisor, 1)


def measure_full_corpus() -> tuple[dict, dict]:
    """Time the paper's *entire* evaluation: 1277 graphs × 5 algorithms.

    Runs through the streaming engine with ``keep_results=False`` — the
    configuration ``repro-dag compare --full`` uses — three times: an
    *untraced* serial run for the honest wall-clock (plus the process RSS
    high-water mark, which includes the materialised corpus), a
    tracemalloc-instrumented serial run (~3x slower, timing discarded)
    whose allocation peak covers only the run phase, and a cross-graph
    **batched** run (``--executor batched``) whose aggregate series are
    asserted identical to the serial run's on every deterministic metric
    before the record is written.

    Returns the ``(full_corpus, full_corpus_batched)`` record sections.
    """
    corpus = att_like_corpus()
    specs = default_method_specs(aco_params=ACOParams(seed=0))

    def _one_run(engine: ExperimentEngine):
        start = time.perf_counter()
        comparison = run_comparison(corpus, specs, engine=engine, keep_results=False)
        elapsed = time.perf_counter() - start
        # `if`-raise rather than assert: the guard must survive `python -O`,
        # and a failed cell means the recorded wall-clock did not cover the
        # full workload — refuse to write a lying record.
        if comparison.cells_failed:
            first = comparison.failures[0]
            raise RuntimeError(
                f"{comparison.cells_failed} cells failed mid-bench "
                f"(first: {first.algorithm} on {first.graph_name}: {first.error})"
            )
        if comparison.results:
            raise RuntimeError("keep_results=False must not keep cells")
        return elapsed, comparison

    elapsed, serial = _one_run(ExperimentEngine())

    tracemalloc.start()
    run_comparison(corpus, specs, engine=ExperimentEngine(), keep_results=False)
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    batched_elapsed, batched = _one_run(ExperimentEngine(executor="batched"))
    for metric in DETERMINISTIC_METRICS:
        if batched.all_series(metric) != serial.all_series(metric):
            raise RuntimeError(f"batched full-corpus run diverged on {metric}")

    full = {
        "graphs": len(corpus),
        "algorithms": len(specs),
        "cells": len(corpus) * len(specs),
        "wall_clock_s": round(elapsed, 2),
        "run_phase_alloc_peak_mb": round(traced_peak / 2**20, 1),
        "ru_maxrss_mb": _rss_peak_mb(),
        "aggregation": "streaming run_iter, keep_results=False (O(groups) state)",
    }
    full_batched = {
        "graphs": len(corpus),
        "algorithms": len(specs),
        "cells": len(corpus) * len(specs),
        "wall_clock_s": round(batched_elapsed, 2),
        "speedup_vs_serial": round(elapsed / batched_elapsed, 2),
        "speedup_vs_pr4_baseline": round(24.05 / batched_elapsed, 2),
        "pr4_baseline_s": 24.05,
        "tables_identical_to_serial": True,
        "executor": "batched (cross-graph megabatch, default batch size)",
    }
    return full, full_batched


def _history_metrics(record: dict) -> dict | None:
    """Key metrics of one record for the capped ``history`` trajectory."""
    out = {}
    for key in ("cells", "serial_cold_s", "batched_cold_s", "warm_cache_speedup"):
        if key in record:
            out[key] = record[key]
    for section, name in (
        ("full_corpus", "full_corpus_s"),
        ("full_corpus_batched", "full_corpus_batched_s"),
    ):
        value = record.get(section)
        if isinstance(value, dict) and "wall_clock_s" in value:
            out[name] = value["wall_clock_s"]
    return out or None


def write_bench_json(results: dict, path: Path = BENCH_PATH) -> Path:
    """Write the benchmark record (stable key order, trailing newline).

    The ``full_corpus`` / ``full_corpus_batched`` sections of an existing
    record are preserved unless the new results carry their own — the quick
    figure-workload refresh and the minutes-long ``--full-corpus`` run
    update the file independently.  Every write appends the record's key
    metrics to the capped ``history`` trajectory (see
    :mod:`benchmarks.bench_history`).
    """
    previous = load_previous(path)
    # History first, from the *fresh* results only: a quick refresh must not
    # stamp the previous run's preserved full-corpus numbers under the
    # current version/date.
    results = with_history(results, previous, _history_metrics)
    if previous is not None:
        for section in ("full_corpus", "full_corpus_batched"):
            if section not in results and section in previous:
                results = {**results, section: previous[section]}
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="refresh BENCH_experiment_engine.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny CI-sized run (one graph per corpus group, two workers) "
            "written to a temporary file instead of the checked-in record"
        ),
    )
    parser.add_argument(
        "--full-corpus",
        action="store_true",
        help=(
            "additionally time the paper's full 1277-graph × 5-algorithm "
            "evaluation (about a minute of compute) and record its "
            "wall-clock/memory under the 'full_corpus' key"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke and args.full_corpus:
        parser.error("--smoke and --full-corpus are mutually exclusive")
    if args.smoke:
        results = measure_engine_speedup(graphs_per_group=1, jobs=2)
        path = write_bench_json(
            results,
            Path(tempfile.gettempdir()) / "BENCH_experiment_engine.smoke.json",
        )
    else:
        results = measure_engine_speedup()
        if args.full_corpus:
            results["full_corpus"], results["full_corpus_batched"] = measure_full_corpus()
        path = write_bench_json(results)
    print(f"wrote {path}")
    print(
        f"  cells={results['cells']} jobs={results['jobs']} "
        f"(cpu_count={results['cpu_count']})"
    )
    print(f"  serial cold   {results['serial_cold_s']*1e3:9.1f} ms")
    print(
        f"  batched cold  {results['batched_cold_s']*1e3:9.1f} ms   "
        f"speedup {results['batched_speedup']:6.2f}x"
    )
    print(
        f"  process cold  {results['process_cold_s']*1e3:9.1f} ms   "
        f"speedup {results['parallel_speedup']:6.2f}x"
    )
    print(
        f"  process warm  {results['process_warm_s']*1e3:9.1f} ms   "
        f"speedup {results['warm_cache_speedup']:6.2f}x"
    )
    if "full_corpus" in results:
        full = results["full_corpus"]
        print(
            f"  full corpus   {full['cells']} cells in {full['wall_clock_s']:.1f} s  "
            f"(run-phase alloc peak {full['run_phase_alloc_peak_mb']} MiB, "
            f"rss peak {full['ru_maxrss_mb']} MiB)"
        )
    if "full_corpus_batched" in results:
        batched = results["full_corpus_batched"]
        print(
            f"  full batched  {batched['cells']} cells in "
            f"{batched['wall_clock_s']:.1f} s  "
            f"({batched['speedup_vs_pr4_baseline']:.2f}x vs the PR4 24.05 s baseline)"
        )


if __name__ == "__main__":
    main()
