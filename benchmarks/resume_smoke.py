"""CI smoke for the resumable run lifecycle (no thresholds, loud failures).

Drives the real CLI end to end: a tiny ``compare`` with ``--run-dir`` is
interrupted deterministically via the ``REPRO_ENGINE_MAX_CELLS`` cell cap
(the engine's stand-in for kill -9), then re-run with ``--resume``.  The
smoke asserts the journaled cells are *replayed*, not re-executed — straight
off the run summary the CLI prints to stderr — and that the resumed
aggregate tables are byte-identical to an uninterrupted run on every
deterministic metric (``running_time`` is measured wall-clock and is the one
table allowed to differ).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

CAP = 4  # cells executed before the simulated kill

COMPARE = [
    sys.executable,
    "-m",
    "repro",
    "compare",
    "--graphs-per-group",
    "1",
    "--vertex-counts",
    "10",
    "20",
    "--ants",
    "2",
    "--tours",
    "2",
    "--seed",
    "0",
]


def run(extra: list[str], env_extra: dict[str, str] | None = None, expect: int = 0):
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.update(env_extra or {})
    proc = subprocess.run([*COMPARE, *extra], env=env, capture_output=True, text=True)
    if proc.returncode != expect:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(
            f"expected exit {expect}, got {proc.returncode} for {extra!r}"
        )
    return proc


def deterministic_tables(stdout: str) -> str:
    """Every aggregate table except (running_time), which is wall-clock."""
    keep: list[str] = []
    skip = False
    for line in stdout.splitlines():
        if line.startswith("(running_time)"):
            skip = True
        elif line.startswith("("):
            skip = False
        if not skip:
            keep.append(line)
    return "\n".join(keep)


def smoke_one(executor_args: list[str], label: str) -> str:
    """Interrupt → resume → compare for one executor; returns the tables."""
    with tempfile.TemporaryDirectory(prefix="repro-resume-smoke-") as run_dir:
        interrupted = run(
            [*executor_args, "--run-dir", run_dir],
            {"REPRO_ENGINE_MAX_CELLS": str(CAP)},
            expect=2,
        )
        if "interrupted" not in interrupted.stderr:
            sys.stderr.write(interrupted.stderr)
            raise SystemExit(f"{label}: first run was not interrupted by the cell cap")

        resumed = run([*executor_args, "--run-dir", run_dir, "--resume"])
        summary = re.search(
            r"run: (\d+)/(\d+) cells \((\d+) executed, (\d+) replayed", resumed.stderr
        )
        if summary is None:
            sys.stderr.write(resumed.stderr)
            raise SystemExit(f"{label}: resumed run printed no summary line")
        done, total, executed, replayed = map(int, summary.groups())
        if replayed != CAP:
            raise SystemExit(
                f"{label}: expected the {CAP} journaled cells to be replayed, "
                f"got {replayed}"
            )
        if executed != total - CAP:
            raise SystemExit(
                f"{label}: resume re-executed journaled cells: {executed} executed "
                f"of {total} with {CAP} journaled"
            )

        reference = run(executor_args)
        tables = deterministic_tables(reference.stdout)
        if deterministic_tables(resumed.stdout) != tables:
            raise SystemExit(
                f"{label}: resumed aggregate tables diverge from uninterrupted run"
            )
    print(
        f"resume smoke OK ({label}): {done}/{total} cells, {replayed} replayed, "
        f"{executed} executed after interruption at {CAP}; tables identical"
    )
    return tables


def main() -> None:
    serial_tables = smoke_one([], "serial")
    # The batched variant interrupts *mid-pack*: the cap fires after 4 cells
    # while the cross-graph pack computed more — the journal must still hold
    # exactly the yielded cells, resume must replay (not re-execute) them,
    # and the final tables must match the serial executor byte for byte.
    batched_tables = smoke_one(["--executor", "batched"], "batched")
    if batched_tables != serial_tables:
        raise SystemExit("batched executor tables diverge from the serial executor")
    print("resume smoke OK: batched tables byte-identical to serial")


if __name__ == "__main__":
    main()
