"""Figure 8 — edge density and running time of the Ant Colony vs LPL and LPL+PL.

Paper claims reproduced here (Section VII):

* the maximum edge density of the Ant Colony layerings is no worse than
  LPL's (the paper reports it better than both LPL and LPL+PL);
* LPL (and LPL+PL) run much faster than the Ant Colony — the running-time
  ordering is reproduced even though the absolute numbers are Python, not
  LEDA/C++.
"""

from __future__ import annotations

from benchmarks.shape import assert_dominates, print_series
from repro.experiments.figures import figure8
from repro.experiments.reporting import format_figure


def test_fig8_density_runtime_vs_lpl(benchmark, bench_corpus, aco_params):
    fig = benchmark.pedantic(
        lambda: figure8(corpus=bench_corpus, aco_params=aco_params),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 8", format_figure(fig))

    density = fig.panel("edge_density").series
    runtime = fig.panel("running_time").series

    assert_dominates(density["AntColony"], density["LPL"], label="fig8 ACO density <= LPL")
    # Running time ordering: LPL fastest, the Ant Colony slowest.
    assert_dominates(runtime["LPL"], runtime["LPL+PL"], label="fig8 LPL fastest")
    assert_dominates(runtime["LPL+PL"], runtime["AntColony"], label="fig8 ACO slowest")
