"""Figure 6 — height and dummy-vertex count of the Ant Colony vs LPL and LPL+PL.

Paper claims reproduced here (Section VII):

* LPL wins on height (it is height-optimal by construction); the Ant Colony
  layerings are at most modestly taller (the paper reports 20–30 % taller);
* the Ant Colony keeps the dummy-vertex count in the vicinity of the LPL
  count (far below what width-driven heuristics produce), while LPL+PL has
  the fewest dummies of the three.
"""

from __future__ import annotations

from benchmarks.shape import assert_dominates, print_series, series_mean
from repro.experiments.figures import figure6
from repro.experiments.reporting import format_figure


def test_fig6_height_dvc_vs_lpl(benchmark, bench_corpus, aco_params):
    fig = benchmark.pedantic(
        lambda: figure6(corpus=bench_corpus, aco_params=aco_params),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 6", format_figure(fig))

    height = fig.panel("height").series
    dvc = fig.panel("dummy_vertex_count").series

    # LPL is height-optimal; the ACO may be taller but only modestly so
    # (the paper reports +20-30%; allow up to +50% on the reduced corpus).
    assert_dominates(height["LPL"], height["AntColony"], label="fig6 LPL height-optimal")
    assert series_mean(height["AntColony"]) <= 1.5 * series_mean(height["LPL"]), (
        "fig6: ACO layerings should be at most ~50% taller than LPL"
    )
    # LPL+PL has the fewest dummies; the ACO stays within a small multiple of LPL.
    assert_dominates(dvc["LPL+PL"], dvc["LPL"], label="fig6 PL reduces dummies")
    assert series_mean(dvc["AntColony"]) <= 4.0 * max(series_mean(dvc["LPL"]), 1.0), (
        "fig6: ACO dummy count should stay within a small multiple of LPL's"
    )
