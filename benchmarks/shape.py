"""Helpers for asserting the *shape* of reproduced figures.

The reproduction contract is qualitative: we do not expect the absolute
numbers of the paper (different corpus, different implementation language),
but the orderings the paper's text highlights — who wins, who is close to
whom — should hold for the group-averaged series.  These helpers express
those statements about ``{vertex_count: value}`` series.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from statistics import fmean
from typing import Mapping

__all__ = [
    "series_mean",
    "assert_dominates",
    "assert_close",
    "print_series",
    "record_path",
]

#: Environment variable opting a benchmark test into refreshing the
#: checked-in ``BENCH_*.json`` record at the repository root.
WRITE_BENCH_ENV = "REPRO_WRITE_BENCH"


def record_path(default: Path) -> Path:
    """Where a benchmark test writes its record.

    A plain test run must leave the working tree clean: machine-local
    timings from a laptop or CI box would otherwise dirty (and risk being
    committed over) the tracked perf records.  Set ``REPRO_WRITE_BENCH=1``
    (or run the ``emit_*`` script directly) to refresh the checked-in file;
    otherwise the record lands in the temp directory and is discarded.
    """
    if os.environ.get(WRITE_BENCH_ENV):
        return default
    return Path(tempfile.gettempdir()) / default.name


def series_mean(series: Mapping[int, float]) -> float:
    """Mean of a vertex-count → value series."""
    return fmean(series.values())


def assert_dominates(
    better: Mapping[int, float],
    worse: Mapping[int, float],
    *,
    slack: float = 0.05,
    label: str = "",
) -> None:
    """Assert that *better* is, on average, no larger than *worse* (with slack).

    *slack* is a fraction of the worse series' mean, absorbing the noise of a
    reduced corpus.
    """
    b, w = series_mean(better), series_mean(worse)
    assert b <= w * (1.0 + slack), (
        f"{label}: expected mean {b:.2f} <= {w:.2f} (+{slack:.0%} slack)"
    )


def assert_close(
    a: Mapping[int, float],
    b: Mapping[int, float],
    *,
    rel_tol: float = 0.25,
    label: str = "",
) -> None:
    """Assert that two series have means within *rel_tol* of each other."""
    ma, mb = series_mean(a), series_mean(b)
    denom = max(abs(mb), 1e-9)
    assert abs(ma - mb) / denom <= rel_tol, (
        f"{label}: means {ma:.2f} and {mb:.2f} differ by more than {rel_tol:.0%}"
    )


def print_series(title: str, text: str) -> None:
    """Print a reproduced table with a separating banner (visible with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    print(text)
