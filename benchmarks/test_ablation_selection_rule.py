"""Ablation B — argmax layer choice (paper) vs roulette-wheel sampling.

The paper assigns each vertex to the layer with the *highest* probability
value (line 6 of Algorithm 4), a deterministic exploitation of the
random-proportional rule; the classical Ant System samples the layer from the
probability distribution instead.  This ablation runs both selection rules
with identical budgets and compares solution quality and variability.
"""

from __future__ import annotations

from statistics import fmean

from benchmarks.shape import print_series
from repro.aco.layering_aco import aco_layering_detailed


def _mean_objective(corpus, params):
    return fmean(
        aco_layering_detailed(entry.graph, params).metrics.objective for entry in corpus
    )


def test_ablation_selection_rule(benchmark, small_corpus, aco_params):
    results = benchmark.pedantic(
        lambda: {
            rule: _mean_objective(small_corpus, aco_params.replace(selection=rule))
            for rule in ("argmax", "roulette")
        },
        rounds=1,
        iterations=1,
    )
    print_series(
        "Ablation B — selection rule",
        "mean objective per rule: " + ", ".join(f"{k}={v:.4f}" for k, v in results.items()),
    )

    # Both rules must produce sensible layerings; the paper's argmax rule
    # should not be substantially worse than roulette sampling under the same
    # (small) tour budget.
    assert results["argmax"] > 0 and results["roulette"] > 0
    assert results["argmax"] >= 0.8 * results["roulette"]
