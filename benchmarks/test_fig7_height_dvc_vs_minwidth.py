"""Figure 7 — height and dummy-vertex count of the Ant Colony vs MinWidth and MinWidth+PL.

Paper claims reproduced here (Section VII):

* MinWidth trades height for width: its layerings are far taller than the
  Ant Colony's;
* the Ant Colony produces far fewer dummy vertices than MinWidth (whose
  narrow layers force long edges) and fewer than MinWidth+PL as well.
"""

from __future__ import annotations

from benchmarks.shape import assert_dominates, print_series
from repro.experiments.figures import figure7
from repro.experiments.reporting import format_figure


def test_fig7_height_dvc_vs_minwidth(benchmark, bench_corpus, aco_params):
    fig = benchmark.pedantic(
        lambda: figure7(corpus=bench_corpus, aco_params=aco_params),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 7", format_figure(fig))

    height = fig.panel("height").series
    dvc = fig.panel("dummy_vertex_count").series

    assert_dominates(height["AntColony"], height["MinWidth"], label="fig7 MinWidth is much taller")
    assert_dominates(height["AntColony"], height["MinWidth+PL"], label="fig7 ACO shorter than MinWidth+PL")
    assert_dominates(dvc["AntColony"], dvc["MinWidth"], label="fig7 ACO far fewer dummies than MinWidth")
    assert_dominates(dvc["AntColony"], dvc["MinWidth+PL"], label="fig7 ACO fewer dummies than MinWidth+PL")
