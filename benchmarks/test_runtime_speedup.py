"""Speedup benchmark: the shared-memory multi-colony runtime.

Times 8 independent colonies on a 500-vertex AT&T-like DAG through the
serial reference, the pre-runtime per-process driver and the shared-memory
colony runtime, refreshes ``BENCH_colony_runtime.json`` (at the repository
root with ``REPRO_WRITE_BENCH=1``, else in the temp directory so plain test
runs do not dirty the tracked record), and asserts the acceptance bar: on
machines with >= 4 CPUs the runtime beats the per-process driver by >= 3x.  Bit-identity of the runtime against
the serial reference (the ``exchange_every=0`` contract) is asserted inside
the measurement on every machine.
"""

from __future__ import annotations

import os

from benchmarks.emit_runtime_bench import (
    BENCH_PATH,
    measure_runtime_speedup,
    write_bench_json,
)
from benchmarks.shape import print_series, record_path


def test_runtime_speedup(benchmark):
    results = benchmark.pedantic(measure_runtime_speedup, rounds=1, iterations=1)
    write_bench_json(results, record_path(BENCH_PATH))

    print_series(
        "colony runtime speedup (BENCH_colony_runtime.json)",
        "\n".join(
            [
                f"{results['n_colonies']} colonies x {results['n_vertices']} vertices, "
                f"workers={results['workers']} cpu_count={results['cpu_count']}",
                f"serial driver    {results['serial_driver_s']*1e3:9.1f} ms",
                f"process driver   {results['process_driver_s']*1e3:9.1f} ms",
                f"colonies runtime {results['colonies_s']*1e3:9.1f} ms   "
                f"vs process {results['speedup_vs_process']:6.2f}x   "
                f"vs serial {results['speedup_vs_serial']:6.2f}x",
            ]
        ),
    )

    # measure_runtime_speedup already asserted bit-identity across drivers.
    assert results["bit_identical_to_serial"] is True
    # Acceptance criterion: >= 3x over the pre-runtime process driver when
    # the cores for sharding exist; single-CPU boxes record honest numbers.
    if (os.cpu_count() or 1) >= 4:
        assert results["speedup_vs_process"] >= 3.0, results
