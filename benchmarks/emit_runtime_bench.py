"""Measure the multi-colony runtime speedup and persist it to ``BENCH_colony_runtime.json``.

The workload is the acceptance-bar configuration of the shared-memory colony
runtime: **8 colonies x 500 vertices** (paper-default parameters, fixed
seed).  Three drivers are timed end to end through
:func:`repro.aco.parallel.parallel_aco_layering`:

* ``serial_driver_s`` — ``executor="serial"``: one colony after another,
  each rebuilding the problem, the deterministic reference;
* ``process_driver_s`` — ``executor="process"``: the pre-runtime
  multi-process driver (graph JSON shipped to workers, per-colony problem
  rebuild and per-colony kernel calls inside each worker);
* ``colonies_s`` — ``executor="colonies"``: the shared-memory runtime — one
  problem build, every tour one lockstep kernel call across all colonies'
  ants, colonies sharded over processes attaching the problem arrays
  zero-copy when more than one CPU is available.

Before the record is written the runtime's results are asserted
**bit-identical** to the serial reference (same best layering, same
per-colony assignments — the ``exchange_every=0`` contract).  The ≥3x
acceptance bar applies on machines with >= 4 CPUs; single-CPU boxes record
their honest numbers with the CPU count alongside.

Refresh with ``PYTHONPATH=src python benchmarks/emit_runtime_bench.py``
(add ``--smoke`` for a tiny CI-sized run that exercises every code path
without touching the checked-in record).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.aco.parallel import parallel_aco_layering
from repro.aco.params import ACOParams
from repro.datasets.corpus import CORPUS_SEED
from repro.graph.generators import att_like_dag
from repro.utils.pool import effective_workers

try:
    from benchmarks.bench_history import load_previous, with_history
except ImportError:  # run directly: python benchmarks/emit_*.py
    from bench_history import load_previous, with_history

__all__ = ["BENCH_PATH", "measure_runtime_speedup", "write_bench_json"]

#: Where the benchmark record is checked in (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_colony_runtime.json"

#: The acceptance-bar workload.
N_COLONIES = 8
N_VERTICES = 500


def _timed(graph, params, *, n_colonies, executor, repeats):
    """Best-of-*repeats* wall clock (the drivers are deterministic, so the
    minimum is the least contention-biased estimate on a shared box)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = parallel_aco_layering(
            graph, params, n_colonies=n_colonies, executor=executor
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_runtime_speedup(
    *,
    n_colonies: int = N_COLONIES,
    n_vertices: int = N_VERTICES,
    params: ACOParams | None = None,
    repeats: int = 3,
) -> dict:
    """Time serial / process / colonies drivers on the acceptance workload."""
    graph = att_like_dag(n_vertices, seed=CORPUS_SEED + n_vertices)
    params = params if params is not None else ACOParams(seed=0)
    workers = effective_workers(None, n_colonies)

    serial_s, serial = _timed(
        graph, params, n_colonies=n_colonies, executor="serial", repeats=repeats
    )
    process_s, process = _timed(
        graph, params, n_colonies=n_colonies, executor="process", repeats=repeats
    )
    colonies_s, colonies = _timed(
        graph, params, n_colonies=n_colonies, executor="colonies", repeats=repeats
    )

    # The exchange_every=0 contract: the runtime must reproduce the serial
    # reference bit for bit (same colony assignments, same best layering).
    assert colonies.layering == serial.layering, "colonies best layering diverged"
    assert [c.assignment for c in colonies.colonies] == [
        c.assignment for c in serial.colonies
    ], "per-colony assignments diverged"
    assert process.layering == serial.layering, "process best layering diverged"

    return {
        "benchmark": "colony_runtime_speedup",
        "description": (
            "End-to-end wall-clock of %d independent ACO colonies on a "
            "%d-vertex AT&T-like DAG (paper-default parameters, fixed seed) "
            "through three drivers: the serial reference, the pre-runtime "
            "per-process driver, and the shared-memory colony runtime "
            "(executor='colonies': one problem build, lockstep kernel calls "
            "across all colonies, zero-copy process sharding).  Best of %d "
            "runs per driver; results asserted bit-identical across drivers "
            "before writing.  The >=3x bar vs the process driver applies on "
            ">=4-CPU machines; smaller boxes record honest numbers with "
            "their cpu_count." % (n_colonies, n_vertices, repeats)
        ),
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "n_colonies": n_colonies,
        "n_vertices": n_vertices,
        "n_edges": graph.n_edges,
        "serial_driver_s": round(serial_s, 6),
        "process_driver_s": round(process_s, 6),
        "colonies_s": round(colonies_s, 6),
        "speedup_vs_process": round(process_s / colonies_s, 2),
        "speedup_vs_serial": round(serial_s / colonies_s, 2),
        "bit_identical_to_serial": True,
        "best_objective": serial.objective,
    }


def _history_metrics(record: dict) -> dict | None:
    """Key metrics of one record for the capped ``history`` trajectory."""
    keys = ("n_colonies", "n_vertices", "serial_driver_s", "colonies_s", "speedup_vs_serial")
    if not any(k in record for k in keys):
        return None
    return {k: record.get(k) for k in keys}


def write_bench_json(results: dict, path: Path = BENCH_PATH) -> Path:
    """Write the benchmark record (stable key order, trailing newline)."""
    results = with_history(results, load_previous(path), _history_metrics)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny CI-sized run (4 colonies x 60 vertices, 3 ants x 3 tours) "
            "written to a temporary file instead of the checked-in record"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = measure_runtime_speedup(
            n_colonies=4,
            n_vertices=60,
            params=ACOParams(seed=0, n_ants=3, n_tours=3),
            repeats=1,
        )
        path = Path(tempfile.gettempdir()) / "BENCH_colony_runtime.smoke.json"
    else:
        results = measure_runtime_speedup()
        path = BENCH_PATH
    write_bench_json(results, path)

    print(f"wrote {path}")
    print(
        f"  {results['n_colonies']} colonies x {results['n_vertices']} vertices, "
        f"workers={results['workers']} (cpu_count={results['cpu_count']})"
    )
    print(f"  serial driver    {results['serial_driver_s']*1e3:9.1f} ms")
    print(
        f"  process driver   {results['process_driver_s']*1e3:9.1f} ms   "
        f"(colonies speedup {results['speedup_vs_process']:6.2f}x)"
    )
    print(
        f"  colonies runtime {results['colonies_s']*1e3:9.1f} ms   "
        f"(vs serial {results['speedup_vs_serial']:6.2f}x)"
    )


if __name__ == "__main__":
    main()
