"""CI smoke for the layout service (no thresholds, loud failures).

Boots the real ``repro-dag serve`` process and asserts the serving
contract end to end:

* ~50 mixed requests (AntColony + builtin methods over a handful of tiny
  DAGs) driven through the open-loop load generator all answer ``200``;
* a second pass over the same AntColony requests is answered from the
  two-layer cache (``cached: true`` with identical metric tables);
* SIGTERM drains the server cleanly — the process exits ``0``.

Run from the repository root: ``python benchmarks/serving_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serving.loadgen import run_load_sync  # noqa: E402

FAST_ACO = {"n_ants": 2, "n_tours": 2, "seed": 0}


def chain_graph(n: int) -> dict:
    edges = [[v, v + 1] for v in range(n - 1)]
    edges.append([0, n - 1])
    return {"edges": edges}


def payload_mix() -> list[dict]:
    """Ten distinct requests: eight AntColony graphs plus two builtins."""
    payloads = [
        {
            "graph": chain_graph(4 + i),
            "method": "AntColony",
            "aco": dict(FAST_ACO),
            "name": f"smoke-{i}",
        }
        for i in range(8)
    ]
    payloads.append({"graph": chain_graph(6), "method": "LPL", "name": "smoke-lpl"})
    payloads.append(
        {"graph": chain_graph(7), "method": "MinWidth", "name": "smoke-minwidth"}
    )
    return payloads


def request(port: int, payload: dict) -> dict:
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/layer",
        data=json.dumps(payload).encode(),
        headers={"content-type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.loads(resp.read().decode())


def main() -> None:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env.pop("REPRO_CHAOS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        announce = proc.stdout.readline().strip()
        match = re.search(r"http://127\.0\.0\.1:(\d+)$", announce)
        if not match:
            raise SystemExit(f"bad announce line: {announce!r}")
        port = int(match.group(1))

        payloads = payload_mix()
        report = run_load_sync(
            "127.0.0.1", port, payloads, total=50, rate_per_s=25.0, timeout_s=60.0
        )
        summary = report.as_dict()
        if report.connect_errors or summary["by_status"] != {"200": 50}:
            raise SystemExit(f"load pass not all 200s: {summary}")
        print(
            "load pass OK: %.1f req/s, p50 %.1f ms, p99 %.1f ms"
            % (
                summary["requests_per_s"],
                summary["latency_ms"]["p50"],
                summary["latency_ms"]["p99"],
            )
        )

        # Second pass: every AntColony repeat must be a cache hit with the
        # same metric table it computed the first time.
        for payload in payloads[:8]:
            first = request(port, payload)
            if not first.get("cached"):
                raise SystemExit(f"{payload['name']}: repeat not served from cache")
            again = request(port, payload)
            if again["metrics"] != first["metrics"]:
                raise SystemExit(f"{payload['name']}: cached metrics diverged")
        print("cache pass OK: 8/8 repeats served from the two-layer cache")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        if code != 0:
            raise SystemExit(f"SIGTERM drain exited {code}, expected 0")
        print("drain OK: SIGTERM -> exit 0")
    finally:
        if proc.poll() is None:
            proc.kill()
        sys.stderr.write(proc.stderr.read())
        proc.stdout.close()
        proc.stderr.close()

    print("serving smoke passed")


if __name__ == "__main__":
    main()
