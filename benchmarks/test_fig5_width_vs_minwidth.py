"""Figure 5 — width of the Ant Colony layering compared with MinWidth and MinWidth+PL.

Paper claims reproduced here (Section VII):

* with dummy vertices counted, MinWidth+PL is the best, the Ant Colony
  follows closely, and both beat MinWidth run on its own;
* without dummy vertices, MinWidth is the clear winner.
"""

from __future__ import annotations

from benchmarks.shape import assert_dominates, print_series
from repro.experiments.figures import figure5
from repro.experiments.reporting import format_figure


def test_fig5_width_vs_minwidth(benchmark, bench_corpus, aco_params):
    fig = benchmark.pedantic(
        lambda: figure5(corpus=bench_corpus, aco_params=aco_params),
        rounds=1,
        iterations=1,
    )
    print_series("Figure 5", format_figure(fig))

    incl = fig.panel("width_including_dummies").series
    excl = fig.panel("width_excluding_dummies").series

    # Including dummies: MinWidth+PL <= AntColony <= MinWidth (on average).
    assert_dominates(incl["MinWidth+PL"], incl["AntColony"], label="fig5 MinWidth+PL best")
    assert_dominates(incl["AntColony"], incl["MinWidth"], label="fig5 ACO beats raw MinWidth")
    # Excluding dummies: MinWidth is the clear winner.
    assert_dominates(excl["MinWidth"], excl["AntColony"], label="fig5 MinWidth narrowest (real)")
    assert_dominates(excl["MinWidth"], excl["MinWidth+PL"], label="fig5 MinWidth narrowest (real)")
