"""Speedup benchmark: vectorized vs per-vertex-python walk engines, plus threads.

Times one full ``AntColony.run`` (single colony, default parameters, fixed
seed) per engine on 50/200/500-vertex corpus-style graphs, and one packed
multi-graph tour batch serial vs threaded in a single process.  Refreshes
``BENCH_aco_kernels.json`` (at the repository root with
``REPRO_WRITE_BENCH=1``, else in the temp directory so plain test runs do
not dirty the tracked record), and asserts the speedups the kernel refactors
are accountable for.  All engine/thread combinations produce bit-identical
layerings (see ``tests/test_aco_kernels.py``), so this measures pure
execution efficiency.
"""

from __future__ import annotations

from benchmarks.emit_kernel_bench import (
    BENCH_PATH,
    measure_kernel_speedup,
    measure_threaded_speedup,
    write_bench_json,
)
from benchmarks.shape import print_series, record_path
from repro.aco import _native


def _measure_all() -> dict:
    results = measure_kernel_speedup()
    results["threaded"] = measure_threaded_speedup()
    return results


def test_kernel_speedup(benchmark):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    write_bench_json(results, record_path(BENCH_PATH))

    threaded = results["threaded"]
    lines = [
        f"n={e['n_vertices']:>4}: python {e['python_s']*1e3:8.1f} ms   "
        f"vectorized {e['vectorized_s']*1e3:7.1f} ms   speedup {e['speedup']:6.2f}x"
        for e in results["sizes"]
    ]
    lines.append(
        f"threads={threaded['n_threads']} ({threaded['thread_support']}): "
        f"serial {threaded['serial_s']*1e3:8.1f} ms   threaded "
        f"{threaded['threaded_s']*1e3:8.1f} ms   speedup {threaded['speedup']:6.2f}x"
    )
    lines.append(f"native backend: {results['native_backend']}")
    print_series("ACO kernel speedup (BENCH_aco_kernels.json)", "\n".join(lines))

    by_size = {e["n_vertices"]: e for e in results["sizes"]}
    assert set(by_size) == {50, 200, 500}
    # The vectorized engine must never lose to the reference engine.
    for entry in results["sizes"]:
        assert entry["speedup"] >= 1.0, entry
    # Acceptance criterion: >= 5x on the 500-vertex graph.  The compiled
    # backend delivers ~10-15x; without a C compiler the NumPy lockstep
    # fallback cannot reach 5x, so the bar only applies when it loaded.
    if _native.load_native() is not None:
        assert by_size[500]["speedup"] >= 5.0, by_size[500]
    # Acceptance criterion: >= 2x from walk-axis threading on machines with
    # >= 4 CPUs and a kernel compiled with OpenMP or pthreads.  Smaller or
    # serial-only boxes record honest numbers without the bar.
    if threaded["gated"]:
        assert threaded["speedup"] >= 2.0, threaded
