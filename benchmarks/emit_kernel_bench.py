"""Measure the ACO walk-kernel speedups and persist them to ``BENCH_aco_kernels.json``.

Two sections share the record:

* ``sizes`` — the vectorized-vs-python engine speedup (one colony, default
  parameters, fixed seed) on corpus-style graphs, tracked since the kernel
  refactor landed.
* ``threaded`` — the single-process walk-axis threading speedup of the C
  kernel: one packed multi-graph tour batch timed with ``REPRO_ACO_THREADS=1``
  versus the machine's thread count.  The >= 2x acceptance bar only applies on
  machines with >= 4 CPUs and a kernel compiled with thread support; smaller
  boxes record honest numbers with ``gated: false``.

The JSON file lives at the repository root and is refreshed by the
``test_kernel_speedup`` benchmark (or by running this module directly with
``PYTHONPATH=src python benchmarks/emit_kernel_bench.py``), so the performance
trajectory of the hot path is tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.aco import _native
from repro.aco.colony import AntColony
from repro.aco.params import ACOParams
from repro.aco.problem import LayeringProblem, PackedProblems
from repro.aco.runtime import run_packed_colonies
from repro.datasets.corpus import CORPUS_SEED
from repro.graph.generators import att_like_dag

try:
    from benchmarks.bench_history import load_previous, with_history
except ImportError:  # run directly: python benchmarks/emit_*.py
    from bench_history import load_previous, with_history

__all__ = [
    "BENCH_PATH",
    "measure_kernel_speedup",
    "measure_threaded_speedup",
    "write_bench_json",
]

#: Where the benchmark record is checked in (repository root).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_aco_kernels.json"

#: Corpus-style graph sizes timed by the engine-speedup benchmark.
SIZES = (50, 200, 500)

#: Graphs packed into one lockstep tour batch by the threading benchmark.
THREADED_SIZES = (400, 400, 400, 400)


def _time_colony(problem: LayeringProblem, params: ACOParams, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        AntColony(problem, params).run()
        best = min(best, time.perf_counter() - start)
    return best


def measure_kernel_speedup(
    sizes: tuple[int, ...] = SIZES, *, repeats: int = 3
) -> dict:
    """Time both engines (single colony, default parameters) per graph size."""
    _native.load_native()
    entries = []
    for n in sizes:
        graph = att_like_dag(n, seed=CORPUS_SEED + n)
        problem = LayeringProblem.from_graph(graph)
        python_s = _time_colony(problem, ACOParams(seed=0, engine="python"), repeats)
        vectorized_s = _time_colony(
            problem, ACOParams(seed=0, engine="vectorized"), repeats
        )
        entries.append(
            {
                "n_vertices": n,
                "n_edges": graph.n_edges,
                "python_s": round(python_s, 6),
                "vectorized_s": round(vectorized_s, 6),
                "speedup": round(python_s / vectorized_s, 2),
            }
        )
    return {
        "benchmark": "aco_kernel_speedup",
        "description": (
            "Wall-clock of one AntColony.run (10 ants, 10 tours, default "
            "params, fixed seed) per walk engine on corpus-style graphs; "
            "best of %d runs, seconds." % repeats
        ),
        "native_backend": _native.native_status(),
        "sizes": entries,
    }


def _time_packed(
    packed: PackedProblems,
    params: ACOParams,
    seeds: list[list[int]],
    n_threads: int,
    repeats: int,
) -> float:
    """Best-of wall-clock of one single-process packed run at *n_threads*."""
    previous = os.environ.get(_native.REPRO_ACO_THREADS_ENV)
    os.environ[_native.REPRO_ACO_THREADS_ENV] = str(n_threads)
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run_packed_colonies(packed, params, seeds, max_workers=1)
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if previous is None:
            del os.environ[_native.REPRO_ACO_THREADS_ENV]
        else:
            os.environ[_native.REPRO_ACO_THREADS_ENV] = previous


def measure_threaded_speedup(
    sizes: tuple[int, ...] = THREADED_SIZES, *, repeats: int = 2
) -> dict:
    """Time one packed tour batch serial vs threaded (same process, same pack).

    The walk axis is the only thing that changes between the two runs — the
    pack, the seeds and the randomness protocol are identical, and the
    layerings are bit-identical at any thread count (pinned by
    ``tests/test_aco_kernels.py``) — so the ratio is pure thread-level
    parallel efficiency of the C kernel.
    """
    _native.load_native()
    cpu_count = os.cpu_count() or 1
    support = _native.thread_support()
    n_threads = min(max(cpu_count, 2), 8)
    gated = cpu_count >= 4 and support in ("openmp", "pthreads")

    problems = [
        LayeringProblem.from_graph(att_like_dag(n, seed=CORPUS_SEED + 7 * i + n))
        for i, n in enumerate(sizes)
    ]
    packed = PackedProblems.pack(problems)
    params = ACOParams(seed=0)
    seeds = [[11 + i] for i in range(len(problems))]

    serial_s = _time_packed(packed, params, seeds, 1, repeats)
    threaded_s = _time_packed(packed, params, seeds, n_threads, repeats)
    return {
        "cpu_count": cpu_count,
        "thread_support": support,
        "gated": gated,
        "n_threads": n_threads,
        "pack": {
            "n_graphs": packed.n_graphs,
            "n_vertices": sum(p.n_vertices for p in problems),
        },
        "serial_s": round(serial_s, 6),
        "threaded_s": round(threaded_s, 6),
        "speedup": round(serial_s / threaded_s, 2),
    }


def _history_metrics(record: dict) -> dict | None:
    """Key metrics of one record for the capped ``history`` trajectory."""
    sizes = record.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        return None
    metrics = {
        k: sizes[-1].get(k)
        for k in ("n_vertices", "python_s", "vectorized_s", "speedup")
    }
    threaded = record.get("threaded")
    if isinstance(threaded, dict):
        metrics["threaded_speedup"] = threaded.get("speedup")
        metrics["n_threads"] = threaded.get("n_threads")
    return metrics


def write_bench_json(results: dict, path: Path = BENCH_PATH) -> Path:
    """Write the benchmark record (stable key order, trailing newline)."""
    results = with_history(results, load_previous(path), _history_metrics)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="refresh BENCH_aco_kernels.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "tiny CI-sized run (two small graphs, one repeat) written to a "
            "temporary file instead of the checked-in record"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        results = measure_kernel_speedup(sizes=(20, 40), repeats=1)
        results["threaded"] = measure_threaded_speedup(sizes=(20, 30), repeats=1)
        path = write_bench_json(
            results, Path(tempfile.gettempdir()) / "BENCH_aco_kernels.smoke.json"
        )
    else:
        results = measure_kernel_speedup()
        results["threaded"] = measure_threaded_speedup()
        path = write_bench_json(results)
    print(f"wrote {path}")
    for entry in results["sizes"]:
        print(
            f"  n={entry['n_vertices']:>4}: python {entry['python_s']*1e3:8.1f} ms   "
            f"vectorized {entry['vectorized_s']*1e3:7.1f} ms   "
            f"speedup {entry['speedup']:6.2f}x"
        )
    threaded = results["threaded"]
    print(
        f"  threads={threaded['n_threads']} ({threaded['thread_support']}): "
        f"serial {threaded['serial_s']*1e3:8.1f} ms   "
        f"threaded {threaded['threaded_s']*1e3:8.1f} ms   "
        f"speedup {threaded['speedup']:6.2f}x"
        f"{'' if threaded['gated'] else '   (ungated: < 4 CPUs or no thread support)'}"
    )


if __name__ == "__main__":
    main()
