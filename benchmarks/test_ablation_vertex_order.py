"""Ablation D — vertex visiting order during an ant's walk.

Section IV-D of the paper notes that the order in which vertices are
re-assigned can either be random (what the authors implement) or follow a
linear order such as a BFS traversal.  This ablation runs the colony with the
three orders supported by the library (random, BFS from a random start,
random topological) at equal budget and compares the resulting objectives.
"""

from __future__ import annotations

from statistics import fmean

from benchmarks.shape import print_series
from repro.aco.layering_aco import aco_layering_detailed
from repro.aco.params import VERTEX_ORDERS


def _mean_objective(corpus, params, order):
    return fmean(
        aco_layering_detailed(entry.graph, params.replace(vertex_order=order)).metrics.objective
        for entry in corpus
    )


def test_ablation_vertex_order(benchmark, small_corpus, aco_params):
    results = benchmark.pedantic(
        lambda: {
            order: _mean_objective(small_corpus, aco_params, order) for order in VERTEX_ORDERS
        },
        rounds=1,
        iterations=1,
    )
    print_series(
        "Ablation D — vertex visiting order",
        "mean objective per order: " + ", ".join(f"{k}={v:.4f}" for k, v in results.items()),
    )

    # All orders must produce sensible layerings of comparable quality; the
    # paper's default (random) should not be substantially worse than either
    # structured order.
    assert all(v > 0 for v in results.values())
    best = max(results.values())
    assert results["random"] >= 0.85 * best
