"""Speedup benchmark: the experiment engine on the figure workload.

Times the LPL-family figure workload (Figs. 4/6/8) end to end through the
shared experiment engine — serial cold baseline, process executor with >= 4
workers, and the same process engine with a warm content-addressed result
cache — refreshes ``BENCH_experiment_engine.json`` (at the repository root
with ``REPRO_WRITE_BENCH=1``, else in the temp directory so plain test runs
do not dirty the tracked record), and asserts the acceptance bar: with
>= 4 workers the workload runs >= 2x faster than the serial cold baseline.  The warm-cache run provides that on
any machine (every cell is served from disk); the pure multi-core win is
additionally asserted when the container actually has >= 4 CPUs.
"""

from __future__ import annotations

import os

from benchmarks.emit_engine_bench import (
    BENCH_PATH,
    measure_engine_speedup,
    write_bench_json,
)
from benchmarks.shape import print_series, record_path


def test_engine_speedup(benchmark):
    results = benchmark.pedantic(measure_engine_speedup, rounds=1, iterations=1)
    write_bench_json(results, record_path(BENCH_PATH))

    print_series(
        "experiment engine speedup (BENCH_experiment_engine.json)",
        "\n".join(
            [
                f"cells={results['cells']} jobs={results['jobs']} cpu_count={results['cpu_count']}",
                f"serial cold   {results['serial_cold_s']*1e3:9.1f} ms",
                f"process cold  {results['process_cold_s']*1e3:9.1f} ms   "
                f"speedup {results['parallel_speedup']:6.2f}x",
                f"process warm  {results['process_warm_s']*1e3:9.1f} ms   "
                f"speedup {results['warm_cache_speedup']:6.2f}x",
            ]
        ),
    )

    assert results["jobs"] >= 4
    assert results["cache_entries"] == results["cells"]
    # Acceptance criterion: >= 2x wall-clock on the figure workload with
    # >= 4 workers.  The warm-cache pass delivers this regardless of the
    # container's core count (in practice it is >= 10x).
    assert results["warm_cache_speedup"] >= 2.0, results
    # The raw multi-core win additionally holds when the cores exist.
    if (os.cpu_count() or 1) >= 4:
        assert results["parallel_speedup"] >= 2.0, results
