"""The six project-specific invariant rules behind ``repro-dag lint``.

Each rule statically enforces an invariant the test suite can only catch
after the fact:

* **RPL001** determinism — unseeded RNGs, wall-clock values feeding digest
  code, iteration over unordered containers.
* **RPL002** signal-safety — nothing reachable from a ``signal.signal``
  handler may print, log, do I/O, or take a lock (the SIGALRM deadline path
  in ``repro/utils/pool.py`` interrupts arbitrary bytecode).
* **RPL003** shm lifecycle — every shared-memory creation site must have a
  ``finally`` close/unlink, a ``shm_manifest.register`` call, a ``with``
  block, or transfer ownership by returning the handle.
* **RPL004** kernel-contract parity — the C prototype, the ctypes
  ``argtypes`` tuple, the Python wrapper, and the pure-Python fallback in
  ``aco/_native.py`` / ``aco/kernels.py`` / ``aco/runtime.py`` must agree on
  parameter names, order, and which per-walk arrays are nullable.
* **RPL005** cross-process payloads — arguments shipped to pool workers via
  ``map_with_state`` / ``imap_with_state`` must be picklable by
  construction: no lambdas, nested functions, locks, open handles, or shm
  views.
* **RPL006** async-safety — ``async def`` bodies (the serving front end's
  event loop) must not make blocking calls: ``time.sleep``, synchronous
  ``open``/``Path.read_text``-style file I/O, ``subprocess`` invocations,
  or un-awaited ``.acquire()`` without a timeout all stall every request
  on the loop; use ``await asyncio.sleep`` / ``run_in_executor`` instead.

Rules work purely on the AST; name resolution is intentionally lexical
(dotted-name pattern matching plus per-function assignment tracking), which
is the right trade-off for a repo-specific linter: precise enough to have
caught every historical violation, simple enough to audit.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.core import Finding, LintModule, Project, Rule, dotted_name

__all__ = [
    "ALL_RULES",
    "AsyncSafetyRule",
    "DeterminismRule",
    "KernelContractRule",
    "PayloadRule",
    "ShmLifecycleRule",
    "SignalSafetyRule",
    "rule_by_code",
]


def _walk_no_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node* without descending into nested function/class bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _functions(tree: ast.Module) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module-level function defs by name (methods excluded on purpose)."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class _ParentMap:
    """Lazy child -> parent and node -> enclosing-function maps."""

    def __init__(self, tree: ast.Module) -> None:
        self.parent: dict[ast.AST, ast.AST] = {}
        self.enclosing: dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef | None] = {}

        def visit(node: ast.AST, fn: ast.FunctionDef | ast.AsyncFunctionDef | None) -> None:
            for child in ast.iter_child_nodes(node):
                self.parent[child] = node
                self.enclosing[child] = fn
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(child, child)
                else:
                    visit(child, fn)

        visit(tree, None)


# ---------------------------------------------------------------------------
# RPL001 — determinism
# ---------------------------------------------------------------------------

#: ``random.<fn>`` calls that consult the process-global Mersenne state.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "shuffle", "choice", "choices",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "getrandbits",
}

#: Legacy ``np.random.<fn>`` calls backed by the global numpy RandomState.
_NUMPY_LEGACY_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "shuffle",
    "permutation", "choice", "seed", "uniform", "normal", "standard_normal",
}

#: Wall-clock / entropy sources that must not feed digest material.
_CLOCK_CALLS = {
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow", "uuid.uuid4",
}

#: A function is digest-affecting if its name matches, or it hashes content.
_DIGEST_NAME_RE = re.compile(
    r"(digest|cache_key|fingerprint|checksum|canonical|content_hash|hash_key)",
    re.IGNORECASE,
)
_HASHLIB_FNS = {"md5", "sha1", "sha224", "sha256", "sha384", "sha512", "blake2b", "blake2s"}
_DIGEST_CALL_TAILS = {"content_digest", "cache_key", "canonical_json", "record_checksum"}


class DeterminismRule(Rule):
    code = "RPL001"
    name = "determinism"
    description = (
        "unseeded RNGs, wall-clock values feeding digest/cache-key code, and "
        "iteration over unordered set/dict expressions"
    )

    def check_module(self, module: LintModule, project: Project) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        imports_random = any(
            isinstance(node, ast.Import) and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(tree)
        )

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, imports_random)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(module, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iteration(module, gen.iter, "comprehension")

        # Wall-clock calls are only a determinism bug when the value can end
        # up in digest material, so this sub-check is scoped to functions
        # that hash content or are named like digest helpers.
        for fn in (
            n for n in ast.walk(tree) if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            if not self._is_digest_affecting(fn):
                continue
            for sub in _walk_no_nested_functions(fn):
                if not isinstance(sub, ast.Call):
                    continue
                name = dotted_name(sub.func)
                if name in _CLOCK_CALLS or (
                    name is not None and any(name.endswith("." + c) for c in _CLOCK_CALLS)
                ):
                    yield Finding(
                        code=self.code,
                        message=(
                            f"wall-clock call {name}() inside digest-affecting function "
                            f"{fn.name!r}; clocks must never feed cache keys or checksums"
                        ),
                        path=module.rel,
                        line=sub.lineno,
                        col=sub.col_offset,
                    )

    def _check_call(
        self, module: LintModule, node: ast.Call, imports_random: bool
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        # np.random.default_rng() / numpy.random.default_rng() without a seed.
        if name.endswith("random.default_rng") or name == "default_rng":
            if not node.args and not node.keywords:
                yield Finding(
                    code=self.code,
                    message=(
                        "unseeded np.random.default_rng(): pulls OS entropy and makes the "
                        "run irreproducible; pass an explicit seed or SeedSequence"
                    ),
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                )
            return
        # random.Random() without a seed.
        if name in ("random.Random", "Random") and not node.args and not node.keywords:
            yield Finding(
                code=self.code,
                message="unseeded random.Random(): pass an explicit seed",
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
            )
            return
        # Global-state stdlib RNG: random.shuffle(...) etc.
        if imports_random and name.startswith("random."):
            tail = name.split(".", 1)[1]
            if tail in _GLOBAL_RANDOM_FNS:
                yield Finding(
                    code=self.code,
                    message=(
                        f"global-state RNG call {name}(): shared Mersenne state is "
                        "order-dependent across call sites; use a seeded np.random.Generator "
                        "or random.Random instance"
                    ),
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                )
            return
        # Legacy global numpy RNG: np.random.shuffle(...) etc.
        parts = name.split(".")
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] in _NUMPY_LEGACY_FNS:
                yield Finding(
                    code=self.code,
                    message=(
                        f"legacy global numpy RNG call {name}(): use a seeded "
                        "np.random.default_rng(seed) Generator instead"
                    ),
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                )

    def _check_iteration(self, module: LintModule, iter_node: ast.AST, kind: str) -> Iterator[Finding]:
        """Flag direct iteration over a set literal / set() call.

        ``sorted(set(...))`` and membership tests are fine; only the raw
        iteration order is nondeterministic under hash randomization.
        """
        target = iter_node
        if isinstance(target, ast.Call):
            name = dotted_name(target.func)
            if name in ("set", "frozenset"):
                yield Finding(
                    code=self.code,
                    message=(
                        f"{kind} iterates over {name}(...): set order depends on "
                        "PYTHONHASHSEED; wrap in sorted(...) to fix the order"
                    ),
                    path=module.rel,
                    line=target.lineno,
                    col=target.col_offset,
                )
        elif isinstance(target, ast.Set):
            yield Finding(
                code=self.code,
                message=(
                    f"{kind} iterates over a set literal: set order depends on "
                    "PYTHONHASHSEED; use a tuple/list or sorted(...)"
                ),
                path=module.rel,
                line=target.lineno,
                col=target.col_offset,
            )

    @staticmethod
    def _is_digest_affecting(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        if _DIGEST_NAME_RE.search(fn.name):
            return True
        for sub in _walk_no_nested_functions(fn):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if tail in _HASHLIB_FNS and name.startswith(("hashlib.", tail)):
                    return True
                if tail in _DIGEST_CALL_TAILS:
                    return True
        return False


# ---------------------------------------------------------------------------
# RPL002 — signal safety
# ---------------------------------------------------------------------------

#: Calls known to be safe inside a handler; traversal does not flag or
#: descend into them.  Extend here (not with suppressions) when a genuinely
#: async-signal-safe helper joins the handler path.
_SIGNAL_SAFE_CALLS = {
    "time.monotonic",
    "time.perf_counter",
    "signal.setitimer",
    "signal.signal",
    "signal.alarm",
    "os.getpid",
    "os.kill",
}

_LOG_METHODS = {"debug", "info", "warning", "error", "critical", "exception", "log"}
_LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
}


class SignalSafetyRule(Rule):
    code = "RPL002"
    name = "signal-safety"
    description = (
        "functions reachable from a signal.signal(...) handler must not print, "
        "log, do I/O, or take locks"
    )

    def check_module(self, module: LintModule, project: Project) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        functions = _functions(tree)

        handlers: list[tuple[str, int]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name != "signal.signal" or len(node.args) < 2:
                continue
            target = node.args[1]
            if isinstance(target, ast.Name) and target.id in functions:
                handlers.append((target.id, node.lineno))

        for handler_name, registered_at in handlers:
            # Breadth-first over the same-module call graph rooted at the
            # handler; every reachable function must be async-signal-safe.
            visited: set[str] = set()
            queue = [handler_name]
            while queue:
                fn_name = queue.pop(0)
                if fn_name in visited:
                    continue
                visited.add(fn_name)
                fn = functions[fn_name]
                for sub in _walk_no_nested_functions(fn):
                    if isinstance(sub, ast.With):
                        for item in sub.items:
                            ctx = dotted_name(item.context_expr)
                            if isinstance(item.context_expr, ast.Call):
                                ctx = dotted_name(item.context_expr.func)
                            if ctx is not None and "lock" in ctx.lower():
                                yield self._finding(
                                    module, sub.lineno, sub.col_offset, fn_name,
                                    handler_name, registered_at,
                                    f"enters lock context {ctx!r}",
                                )
                        continue
                    if not isinstance(sub, ast.Call):
                        continue
                    name = dotted_name(sub.func)
                    if name is None or name in _SIGNAL_SAFE_CALLS:
                        continue
                    problem = self._classify(name)
                    if problem is not None:
                        yield self._finding(
                            module, sub.lineno, sub.col_offset, fn_name,
                            handler_name, registered_at, problem,
                        )
                    elif name in functions and name not in visited:
                        queue.append(name)

    @staticmethod
    def _classify(name: str) -> str | None:
        """A human-readable problem description, or None if the call is fine."""
        if name in ("print", "input", "open"):
            return f"calls {name}(...) (buffered I/O can deadlock mid-interrupt)"
        parts = name.split(".")
        if parts[0] == "logging" or (
            len(parts) >= 2 and re.fullmatch(r"_?(logger|log)", parts[-2] or "")
            and parts[-1] in _LOG_METHODS
        ):
            return f"calls logging API {name}(...) (logging takes an internal lock)"
        if name in ("sys.stdout.write", "sys.stderr.write", "sys.stdout.flush", "sys.stderr.flush"):
            return f"calls {name}(...) (stream I/O is not async-signal-safe)"
        if name.endswith(".acquire"):
            return f"calls {name}(): acquiring a lock in signal context can self-deadlock"
        if name in _LOCK_FACTORIES:
            return f"constructs {name}() in signal context"
        return None

    def _finding(
        self,
        module: LintModule,
        line: int,
        col: int,
        fn_name: str,
        handler_name: str,
        registered_at: int,
        problem: str,
    ) -> Finding:
        return Finding(
            code=self.code,
            message=(
                f"{fn_name!r} is reachable from signal handler {handler_name!r} "
                f"(registered at line {registered_at}) and {problem}"
            ),
            path=module.rel,
            line=line,
            col=col,
        )


# ---------------------------------------------------------------------------
# RPL003 — shared-memory lifecycle
# ---------------------------------------------------------------------------


class ShmLifecycleRule(Rule):
    code = "RPL003"
    name = "shm-lifecycle"
    description = (
        "SharedMemory(create=True)/publish_* creation sites must be closed and "
        "unlinked in a finally, registered with shm_manifest, or returned"
    )

    def check_module(self, module: LintModule, project: Project) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        parents = _ParentMap(tree)

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._creation_kind(node)
            if kind is None:
                continue
            scope: ast.AST = parents.enclosing.get(node) or tree
            if self._is_accounted_for(node, scope, parents):
                continue
            yield Finding(
                code=self.code,
                message=(
                    f"{kind} creates a shared-memory block with no visible cleanup: "
                    "pair it with close()/unlink() in a finally, register the name via "
                    "shm_manifest.register(...), use a with-block, or return the handle "
                    "to a caller that does"
                ),
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
            )

    @staticmethod
    def _creation_kind(node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if tail == "SharedMemory":
            for kw in node.keywords:
                if kw.arg == "create" and isinstance(kw.value, ast.Constant) and kw.value.value:
                    return f"{name}(create=True)"
            return None
        if tail.startswith("publish_"):
            return f"{name}(...)"
        return None

    def _is_accounted_for(self, node: ast.Call, scope: ast.AST, parents: _ParentMap) -> bool:
        # (1) Context-manager use: `with publish_problem(p) as shared:`.
        parent = parents.parent.get(node)
        if isinstance(parent, ast.withitem):
            return True
        # The names the created handle is bound to, if any.
        bound = self._bound_names(node, parents)
        for sub in ast.walk(scope):
            # (2) Registered with the manifest somewhere in the same scope.
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name is not None and (
                    name.endswith("shm_manifest.register") or name == "register"
                ):
                    return True
            # (3) Ownership transfer: handle appears in a return/yield.
            if isinstance(sub, (ast.Return, ast.Yield)) and sub.value is not None:
                if node in ast.walk(sub.value):
                    return True
                if bound and any(
                    isinstance(n, ast.Name) and n.id in bound for n in ast.walk(sub.value)
                ):
                    return True
            # (4) close()/unlink() on the bound name inside a finally block.
            if isinstance(sub, ast.Try) and bound:
                for stmt in sub.finalbody:
                    for call in ast.walk(stmt):
                        if not isinstance(call, ast.Call):
                            continue
                        name = dotted_name(call.func)
                        if name is None:
                            continue
                        parts = name.split(".")
                        if len(parts) >= 2 and parts[-1] in ("close", "unlink", "release_all"):
                            if parts[0] in bound or parts[-2] in bound:
                                return True
        return False

    @staticmethod
    def _bound_names(node: ast.Call, parents: _ParentMap) -> set[str]:
        """Names assigned from the creation call (`shm = ...`, `a, shm = ...`)."""
        parent = parents.parent.get(node)
        while parent is not None and isinstance(parent, (ast.Tuple, ast.List)):
            parent = parents.parent.get(parent)
        names: set[str] = set()
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(parent, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(parent.target, ast.Name):
                names.add(parent.target.id)
        elif isinstance(parent, ast.NamedExpr) and isinstance(parent.target, ast.Name):
            names.add(parent.target.id)
        return names


# ---------------------------------------------------------------------------
# RPL004 — kernel-contract parity
# ---------------------------------------------------------------------------

_C_PARAM_RE = re.compile(
    r"^\s*(?:const\s+)?(?P<type>int64_t|double)\s*(?P<ptr>\*)?\s*(?P<name>\w+)\s*[,)]"
    r"\s*(?:/\*(?P<comment>.*?)\*/)?"
)


class _CParam:
    def __init__(self, name: str, ctype: str, pointer: bool, nullable: bool) -> None:
        self.name = name
        self.ctype = ctype
        self.pointer = pointer
        self.nullable = nullable


class KernelContractRule(Rule):
    code = "RPL004"
    name = "kernel-contract"
    description = (
        "the C run_walks prototype, the ctypes argtypes list, run_walks_native, "
        "and the kernels.py entry points must agree on names, order, and the "
        "nullable per-walk array set, and the prototype must carry the CSR + "
        "thread-count contract anchors"
    )

    #: Maps a ctypes argtype spelling to the C parameter shape it implies.
    _ARGTYPE_KINDS = {
        "ctypes.c_int64": ("int64_t", False, False),
        "ctypes.c_double": ("double", False, False),
        "ctypes.c_void_p": (None, True, True),  # nullable pointer, any type
        "_I64": ("int64_t", True, False),
        "_F64": ("double", True, False),
    }

    #: Structural anchors of the CSR-only, walk-threaded kernel contract:
    #: these parameters must appear in the C prototype with exactly this
    #: (type, pointer) shape and must never be nullable — the data path has
    #: no padded fallback behind them, so losing one silently changes what
    #: the kernel traverses.
    _REQUIRED_ANCHORS = {
        "n_threads": ("int64_t", False),
        "succ_indptr": ("int64_t", True),
        "succ_indices": ("int64_t", True),
        "pred_indptr": ("int64_t", True),
        "pred_indices": ("int64_t", True),
    }

    def check_project(self, project: Project) -> Iterator[Finding]:
        native = project.find_suffix("aco/_native.py")
        kernels = project.find_suffix("aco/kernels.py")

        c_params: list[_CParam] | None = None
        wrapper_nullable: set[str] | None = None
        wrapper_params: set[str] | None = None
        if native is not None and native.tree is not None:
            c_params = yield from self._check_native_argtypes(native)
            wrapper_nullable, wrapper_params = yield from self._check_wrapper(native, c_params)
        if kernels is not None and kernels.tree is not None:
            yield from self._check_kernels(kernels, wrapper_params, wrapper_nullable)
            yield from self._check_entry_signatures(kernels)
            yield from self._check_call_arity(project, kernels)

    # -- _native.py ---------------------------------------------------------

    def _parse_c_source(self, native: LintModule) -> tuple[list[_CParam] | None, int]:
        """(params of ``void run_walks(...)`` in _C_SOURCE, anchor line)."""
        tree = native.tree
        assert tree is not None
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [dotted_name(t) for t in node.targets]
            if "_C_SOURCE" not in targets:
                continue
            if not isinstance(node.value, ast.Constant) or not isinstance(node.value.value, str):
                return None, node.lineno
            text = node.value.value
            start = text.find("void run_walks(")
            if start < 0:
                return None, node.lineno
            params: list[_CParam] = []
            for line in text[start:].splitlines()[1:]:
                match = _C_PARAM_RE.match(line)
                if match is None:
                    if ")" in line or "{" in line:
                        break
                    continue
                comment = match.group("comment") or ""
                params.append(
                    _CParam(
                        name=match.group("name"),
                        ctype=match.group("type"),
                        pointer=match.group("ptr") is not None,
                        nullable="NULL" in comment,
                    )
                )
                if ")" in line.split("/*")[0]:
                    break
            return params, node.lineno
        return None, 1

    def _find_argtypes(self, native: LintModule) -> tuple[ast.List | None, int]:
        tree = native.tree
        assert tree is not None
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                name = dotted_name(target)
                if name is not None and name.endswith("run_walks.argtypes"):
                    if isinstance(node.value, ast.List):
                        return node.value, node.lineno
                    return None, node.lineno
        return None, 1

    def _check_native_argtypes(self, native: LintModule):
        """Cross-check _C_SOURCE params against the ctypes argtypes list.

        Written as a generator that *returns* the parsed params so the
        wrapper check can reuse them (PEP 380 ``yield from`` value).
        """
        c_params, c_line = self._parse_c_source(native)
        argtypes, arg_line = self._find_argtypes(native)
        if c_params is None or not c_params:
            yield Finding(
                code=self.code,
                message=(
                    "cannot locate the `void run_walks(...)` prototype inside _C_SOURCE; "
                    "the kernel-contract check is anchored on it — update the linter if "
                    "the prototype moved"
                ),
                path=native.rel,
                line=c_line,
            )
            return None
        by_name = {p.name: p for p in c_params}
        for anchor, (ctype, pointer) in self._REQUIRED_ANCHORS.items():
            param = by_name.get(anchor)
            if param is None:
                yield Finding(
                    code=self.code,
                    message=(
                        f"the C prototype is missing required parameter {anchor!r}; "
                        "the CSR adjacency pointers and the walk-axis thread count "
                        "are structural anchors of the kernel contract"
                    ),
                    path=native.rel,
                    line=c_line,
                )
            elif param.nullable or param.pointer != pointer or param.ctype != ctype:
                shape = f"{'const ' if pointer else ''}{ctype}{' *' if pointer else ''}"
                yield Finding(
                    code=self.code,
                    message=(
                        f"C parameter {anchor!r} must be a required (never-NULL) "
                        f"{shape}; the kernel has no fallback representation behind it"
                    ),
                    path=native.rel,
                    line=c_line,
                )
        if argtypes is None:
            yield Finding(
                code=self.code,
                message=(
                    "cannot locate the `lib.run_walks.argtypes = [...]` list literal; "
                    "the kernel-contract check is anchored on it"
                ),
                path=native.rel,
                line=arg_line,
            )
            return c_params
        if len(argtypes.elts) != len(c_params):
            yield Finding(
                code=self.code,
                message=(
                    f"argtypes has {len(argtypes.elts)} entries but the C prototype "
                    f"declares {len(c_params)} parameters"
                ),
                path=native.rel,
                line=arg_line,
            )
            return c_params
        for index, (element, param) in enumerate(zip(argtypes.elts, c_params)):
            spelled = dotted_name(element) or ast.dump(element)
            kind = self._ARGTYPE_KINDS.get(spelled)
            if kind is None:
                yield Finding(
                    code=self.code,
                    message=f"argtypes[{index}] ({spelled}) is not a recognized kernel argtype",
                    path=native.rel,
                    line=element.lineno,
                )
                continue
            ctype, pointer, nullable = kind
            if param.nullable != nullable:
                expected = "ctypes.c_void_p" if param.nullable else "_I64/_F64"
                yield Finding(
                    code=self.code,
                    message=(
                        f"argtypes[{index}] ({spelled}) disagrees with C parameter "
                        f"{param.name!r}: the prototype marks it "
                        f"{'nullable (or NULL)' if param.nullable else 'required'}, "
                        f"expected {expected}"
                    ),
                    path=native.rel,
                    line=element.lineno,
                )
            elif param.pointer != pointer or (ctype is not None and ctype != param.ctype):
                yield Finding(
                    code=self.code,
                    message=(
                        f"argtypes[{index}] ({spelled}) does not match C parameter "
                        f"{param.name!r} of type "
                        f"{'const ' if param.pointer else ''}{param.ctype}"
                        f"{' *' if param.pointer else ''}"
                    ),
                    path=native.rel,
                    line=element.lineno,
                )
        return c_params

    @staticmethod
    def _annotation_allows_none(annotation: ast.AST | None) -> bool:
        if annotation is None:
            return False
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Constant) and sub.value is None:
                return True
            name = dotted_name(sub)
            if name is not None and name.rsplit(".", 1)[-1] == "Optional":
                return True
        return False

    def _check_wrapper(self, native: LintModule, c_params: list[_CParam] | None):
        """run_walks_native's None-able kwargs must equal the C nullable set.

        "Nullable" on the Python side means a ``None`` default or an
        ``X | None`` / ``Optional[X]`` annotation.  The C prototype also has
        derived scalars (``n_ants``, ``beta_mode``, the ``scores`` scratch)
        with no wrapper argument, so the name check is scoped to the
        nullable set — the part of the contract that silently corrupts
        results when it drifts.
        """
        tree = native.tree
        assert tree is not None
        wrapper = _functions(tree).get("run_walks_native")
        if wrapper is None:
            yield Finding(
                code=self.code,
                message="run_walks_native wrapper not found; kernel-contract anchor missing",
                path=native.rel,
                line=1,
            )
            return None, None
        nullable: set[str] = set()
        params: set[str] = set()
        for arg, default in zip(wrapper.args.kwonlyargs, wrapper.args.kw_defaults):
            params.add(arg.arg)
            if (
                default is not None
                and isinstance(default, ast.Constant)
                and default.value is None
            ) or self._annotation_allows_none(arg.annotation):
                nullable.add(arg.arg)
        for arg in wrapper.args.args:
            params.add(arg.arg)
        if c_params:
            c_nullable = {p.name for p in c_params if p.nullable}
            if nullable != c_nullable:
                missing = sorted(c_nullable - nullable)
                extra = sorted(nullable - c_nullable)
                detail = []
                if missing:
                    detail.append(f"C marks {missing} nullable but the wrapper requires them")
                if extra:
                    detail.append(f"the wrapper allows None for {extra} but C does not")
                yield Finding(
                    code=self.code,
                    message=(
                        "run_walks_native's optional arguments disagree with the C "
                        "prototype's nullable set: " + "; ".join(detail)
                    ),
                    path=native.rel,
                    line=wrapper.lineno,
                )
        return nullable, params

    # -- kernels.py ---------------------------------------------------------

    def _check_kernels(
        self,
        kernels: LintModule,
        wrapper_params: set[str] | None,
        wrapper_nullable: set[str] | None,
    ) -> Iterator[Finding]:
        """Call-site keyword parity for run_walks_native and _lockstep_walks."""
        tree = kernels.tree
        assert tree is not None
        functions = _functions(tree)
        lockstep = functions.get("_lockstep_walks")
        lockstep_params = (
            {a.arg for a in lockstep.args.kwonlyargs} | {a.arg for a in lockstep.args.args}
            if lockstep is not None
            else None
        )
        lockstep_call_keys: list[tuple[frozenset[str], int]] = []

        for fn_name in ("run_walks_batch", "run_walks_packed"):
            fn = functions.get(fn_name)
            if fn is None:
                yield Finding(
                    code=self.code,
                    message=f"kernel entry point {fn_name!r} not found; contract anchor missing",
                    path=kernels.rel,
                    line=1,
                )
                continue
            for node in _walk_no_nested_functions(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
                if name.endswith("run_walks_native") and wrapper_params is not None:
                    unknown = sorted(keywords - wrapper_params)
                    if unknown:
                        yield Finding(
                            code=self.code,
                            message=(
                                f"{fn_name} passes keywords {unknown} that run_walks_native "
                                "does not declare"
                            ),
                            path=kernels.rel,
                            line=node.lineno,
                        )
                elif name.endswith("_lockstep_walks"):
                    if lockstep_params is not None:
                        unknown = sorted(keywords - lockstep_params)
                        if unknown:
                            yield Finding(
                                code=self.code,
                                message=(
                                    f"{fn_name} passes keywords {unknown} that "
                                    "_lockstep_walks does not declare"
                                ),
                                path=kernels.rel,
                                line=node.lineno,
                            )
                    lockstep_call_keys.append((frozenset(keywords), node.lineno))

        # The vectorized and packed fallback calls must stay keyword-identical
        # modulo the per-walk arrays that only exist for packed problems.
        if wrapper_nullable and len(lockstep_call_keys) >= 2:
            walk_only = {n for n in wrapper_nullable if n.startswith("walk_")}
            stripped = {keys - walk_only for keys, _ in lockstep_call_keys}
            if len(stripped) > 1:
                lines = ", ".join(str(line) for _, line in lockstep_call_keys)
                yield Finding(
                    code=self.code,
                    message=(
                        "_lockstep_walks call sites (lines "
                        + lines
                        + ") disagree on non-walk keyword sets; the vectorized and packed "
                        "fallbacks must stay in lockstep"
                    ),
                    path=kernels.rel,
                    line=lockstep_call_keys[0][1],
                )

    def _check_entry_signatures(self, kernels: LintModule) -> Iterator[Finding]:
        """run_walks_batch and run_walks_packed must agree modulo the pack head."""
        tree = kernels.tree
        assert tree is not None
        functions = _functions(tree)
        batch = functions.get("run_walks_batch")
        packed = functions.get("run_walks_packed")
        if batch is None or packed is None:
            return
        batch_tail = [a.arg for a in batch.args.args][1:]
        packed_tail = [a.arg for a in packed.args.args][1:]
        packed_reduced = [p for p in packed_tail if p != "walk_graph"]
        if batch_tail != packed_reduced:
            yield Finding(
                code=self.code,
                message=(
                    f"run_walks_batch{tuple(batch_tail)} and run_walks_packed"
                    f"{tuple(packed_tail)} disagree beyond the problem/walk_graph head; "
                    "the entry points must keep parameter names and order aligned"
                ),
                path=kernels.rel,
                line=packed.lineno,
            )

    def _check_call_arity(self, project: Project, kernels: LintModule) -> Iterator[Finding]:
        """Positional call sites of the entry points must match their arity."""
        tree = kernels.tree
        assert tree is not None
        functions = _functions(tree)
        arity = {
            name: len(fn.args.args)
            for name, fn in functions.items()
            if name in ("run_walks_batch", "run_walks_packed")
        }
        if not arity:
            return
        for module in project.modules:
            if module.tree is None:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                expected = arity.get(tail)
                if expected is None or node.keywords:
                    continue
                if any(isinstance(a, ast.Starred) for a in node.args):
                    continue
                if len(node.args) != expected:
                    yield Finding(
                        code=self.code,
                        message=(
                            f"{tail} called with {len(node.args)} positional arguments "
                            f"but its signature declares {expected}"
                        ),
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset,
                    )


# ---------------------------------------------------------------------------
# RPL005 — cross-process payloads
# ---------------------------------------------------------------------------

#: Call names whose result must never cross a process boundary.
_UNPICKLABLE_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "open",
}

_POOL_ENTRY_POINTS = {"map_with_state", "imap_with_state"}


class PayloadRule(Rule):
    code = "RPL005"
    name = "cross-process-payloads"
    description = (
        "payloads and callables handed to map_with_state/imap_with_state must "
        "not capture lambdas, nested functions, locks, open handles, or shm views"
    )

    def check_module(self, module: LintModule, project: Project) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        parents = _ParentMap(tree)
        module_level_fns = set(_functions(tree))

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.rsplit(".", 1)[-1] not in _POOL_ENTRY_POINTS:
                continue
            scope = parents.enclosing.get(node) or tree
            risky = self._risky_assignments(scope)
            nested = self._nested_functions(scope)

            # task_fn is the first positional argument; init_fn is keyword-only.
            callables: list[tuple[str, ast.AST]] = []
            if node.args:
                callables.append(("task_fn", node.args[0]))
            payload_value: ast.AST | None = None
            for kw in node.keywords:
                if kw.arg in ("task_fn", "init_fn"):
                    callables.append((kw.arg, kw.value))
                elif kw.arg == "payload":
                    payload_value = kw.value

            for role, value in callables:
                yield from self._check_callable(module, role, value, module_level_fns, nested)
            if payload_value is not None:
                yield from self._check_payload(module, payload_value, risky)

    @staticmethod
    def _risky_assignments(scope: ast.AST) -> dict[str, str]:
        """name -> factory for names bound to unpicklable resources in scope."""
        risky: dict[str, str] = {}
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.Assign) or not isinstance(sub.value, ast.Call):
                continue
            value_name = dotted_name(sub.value.func)
            if value_name is None:
                continue
            tail = value_name.rsplit(".", 1)[-1]
            is_risky = (
                value_name in _UNPICKLABLE_FACTORIES
                or tail == "SharedMemory"
                or tail.startswith(("publish_", "attach_"))
            )
            if not is_risky:
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    risky[target.id] = value_name
        return risky

    @staticmethod
    def _nested_functions(scope: ast.AST) -> set[str]:
        if isinstance(scope, ast.Module):
            return set()
        return {
            sub.name
            for sub in ast.walk(scope)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not scope
        }

    def _check_callable(
        self,
        module: LintModule,
        role: str,
        value: ast.AST,
        module_level_fns: set[str],
        nested: set[str],
    ) -> Iterator[Finding]:
        if isinstance(value, ast.Lambda):
            yield Finding(
                code=self.code,
                message=(
                    f"{role} is a lambda: lambdas cannot be pickled into process "
                    "workers; use a module-level function"
                ),
                path=module.rel,
                line=value.lineno,
                col=value.col_offset,
            )
        elif isinstance(value, ast.Name) and value.id in nested and value.id not in module_level_fns:
            yield Finding(
                code=self.code,
                message=(
                    f"{role}={value.id!r} is a nested function: closures cannot be "
                    "pickled into process workers; hoist it to module level"
                ),
                path=module.rel,
                line=value.lineno,
                col=value.col_offset,
            )

    def _check_payload(
        self, module: LintModule, payload: ast.AST, risky: dict[str, str]
    ) -> Iterator[Finding]:
        def scan(node: ast.AST, inside_attribute: bool) -> Iterator[Finding]:
            if isinstance(node, ast.Lambda):
                yield Finding(
                    code=self.code,
                    message="payload contains a lambda: not picklable across processes",
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                )
                return
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name == "open":
                    yield Finding(
                        code=self.code,
                        message=(
                            "payload contains an open(...) handle: file objects cannot "
                            "cross a process boundary; pass the path instead"
                        ),
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset,
                    )
            if isinstance(node, ast.Attribute):
                if node.attr in ("shm", "buf"):
                    yield Finding(
                        code=self.code,
                        message=(
                            f"payload captures a shared-memory view (.{node.attr}): pass "
                            "the manifest (name/shape/dtype) and re-attach in the worker"
                        ),
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                # `shared.manifest` extracts a picklable field from a risky
                # object; only the bare name itself is a violation.
                yield from scan(node.value, True)
                return
            if isinstance(node, ast.Name) and not inside_attribute and node.id in risky:
                yield Finding(
                    code=self.code,
                    message=(
                        f"payload element {node.id!r} was created by "
                        f"{risky[node.id]}(...) and holds an OS resource; it cannot be "
                        "pickled into a worker — ship a manifest/path and reopen there"
                    ),
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                )
            for child in ast.iter_child_nodes(node):
                yield from scan(child, False)

        yield from scan(payload, False)


# ---------------------------------------------------------------------------
# RPL006 — async safety
# ---------------------------------------------------------------------------

#: Dotted-name calls that block the calling thread outright.  Inside an
#: ``async def`` they stall the whole event loop — every open connection,
#: every pending response — for their full duration.
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "open": "do file I/O before entering the loop or via run_in_executor",
    "input": "the loop thread must never wait on a terminal read",
    "subprocess.run": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.call": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.check_call": "use `await asyncio.create_subprocess_exec(...)`",
    "subprocess.check_output": "use `await asyncio.create_subprocess_exec(...)`",
    "os.system": "use `await asyncio.create_subprocess_shell(...)`",
    "socket.create_connection": "use `await asyncio.open_connection(...)`",
}

#: Blocking *method* suffixes: flagged on any receiver, because the
#: receiver's type is unknowable lexically and every stdlib bearer of the
#: name (file handles, Path objects, sync sockets) blocks.
_BLOCKING_METHOD_TAILS: dict[str, str] = {
    "read_text": "read the file before entering the loop or via run_in_executor",
    "read_bytes": "read the file before entering the loop or via run_in_executor",
    "write_text": "write the file via run_in_executor",
    "write_bytes": "write the file via run_in_executor",
}


class AsyncSafetyRule(Rule):
    code = "RPL006"
    name = "async-safety"
    description = (
        "async def bodies must not block the event loop: no time.sleep, sync "
        "file I/O, subprocess calls, or un-awaited .acquire() without timeout"
    )

    def check_module(self, module: LintModule, project: Project) -> Iterator[Finding]:
        tree = module.tree
        assert tree is not None
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(module, node)

    def _check_async_body(
        self, module: LintModule, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # Nested defs/lambdas run on their own call stacks (often handed to
        # run_in_executor precisely to get blocking work off the loop), so
        # the walk stays within this coroutine's own body.
        awaited: set[int] = set()
        for sub in _walk_no_nested_functions(fn):
            if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call):
                awaited.add(id(sub.value))
        for sub in _walk_no_nested_functions(fn):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name is None:
                continue
            if name in _BLOCKING_CALLS:
                yield self._finding(
                    module, sub, fn.name, name, _BLOCKING_CALLS[name]
                )
                continue
            tail = name.rsplit(".", 1)[-1]
            if "." in name and tail in _BLOCKING_METHOD_TAILS:
                yield self._finding(
                    module, sub, fn.name, name, _BLOCKING_METHOD_TAILS[tail]
                )
                continue
            if (
                name.endswith(".acquire")
                and id(sub) not in awaited  # `await lock.acquire()` is asyncio
                and not sub.args
                and not any(kw.arg == "timeout" for kw in sub.keywords)
            ):
                yield self._finding(
                    module,
                    sub,
                    fn.name,
                    name,
                    "an unbounded lock acquisition parks the loop thread; "
                    "pass a timeout or use an asyncio.Lock",
                )

    def _finding(
        self,
        module: LintModule,
        node: ast.Call,
        fn_name: str,
        call_name: str,
        fix: str,
    ) -> Finding:
        return Finding(
            code=self.code,
            message=(
                f"blocking call {call_name}(...) inside async def {fn_name!r} "
                f"stalls the event loop; {fix}"
            ),
            path=module.rel,
            line=node.lineno,
            col=node.col_offset,
        )


ALL_RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    SignalSafetyRule(),
    ShmLifecycleRule(),
    KernelContractRule(),
    PayloadRule(),
    AsyncSafetyRule(),
)


def rule_by_code(code: str) -> Rule | None:
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    return None
