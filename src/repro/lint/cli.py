"""Command-line front end shared by ``repro-dag lint`` and ``python -m repro.lint``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.core import collect_files, parse_module, run_lint
from repro.lint.rules import ALL_RULES

__all__ = ["add_lint_arguments", "main", "run"]

#: Default target directories, filtered to the ones that exist under cwd.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

#: Conventional baseline location, picked up automatically when present.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: "
            + " ".join(DEFAULT_PATHS)
            + ", whichever exist)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule codes and descriptions, then exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print findings only, no summary line",
    )


def _resolve_paths(paths: Sequence[str], root: Path) -> list[str]:
    if paths:
        return list(paths)
    found = [name for name in DEFAULT_PATHS if (root / name).exists()]
    return found or ["."]


def run(args: argparse.Namespace, *, root: Path | None = None) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    root = (root if root is not None else Path.cwd()).resolve()
    out = sys.stdout

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.description}", file=out)
        return 0

    paths = _resolve_paths(args.paths, root)

    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
            if not baseline_path.is_absolute():
                baseline_path = root / baseline_path
        elif (root / DEFAULT_BASELINE).exists() or args.update_baseline:
            baseline_path = root / DEFAULT_BASELINE

    if args.update_baseline:
        if baseline_path is None:
            print("lint: --update-baseline requires a baseline path", file=sys.stderr)
            return 2
        # Keep inline suppressions effective while rebuilding the baseline:
        # only unsuppressed findings are grandfathered.
        notes: dict = {}
        if baseline_path.exists():
            notes = Baseline.load(baseline_path).notes
        report = run_lint(paths, baseline=None, root=root)
        modules = {
            rel: parse_module(path, rel) for path, rel in collect_files(paths, root=root)
        }
        count = write_baseline(baseline_path, report.findings, modules, notes=notes)
        if not args.quiet:
            print(
                f"lint: wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
                f"to {baseline_path}",
                file=out,
            )
        return 0

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, OSError) as exc:
            print(f"lint: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    report = run_lint(paths, baseline=baseline, root=root)
    for finding in report.findings:
        print(finding.render(), file=out)
    if not args.quiet:
        bits = [
            f"{len(report.findings)} finding{'s' if len(report.findings) != 1 else ''}",
            f"{report.files_checked} files",
        ]
        if report.suppressed:
            bits.append(f"{len(report.suppressed)} suppressed")
        if report.baselined:
            bits.append(f"{len(report.baselined)} baselined")
        if report.stale_baseline:
            bits.append(f"{report.stale_baseline} stale baseline entries (run --update-baseline)")
        print("lint: " + ", ".join(bits), file=out)
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static invariant checks for the repro-dag codebase.",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
