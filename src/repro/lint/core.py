"""Rule engine of ``repro-dag lint``: modules, findings, suppressions.

The engine is deliberately stdlib-only (``ast`` + ``re``): it must run in
minimal CI jobs and inside pre-commit hooks without the scientific stack.

A lint run is::

    files   -> LintModule (parsed source + suppression table)
    modules -> Project    (cross-file view for contract rules)
    rules   -> Finding    (code, message, location)
    report  -> findings partitioned into actionable / suppressed / baselined

Two rule granularities exist because the invariants do:

* :meth:`Rule.check_module` sees one parsed file — enough for determinism,
  signal-safety, shm-lifecycle and payload rules;
* :meth:`Rule.check_project` sees every parsed file at once — required by
  the kernel-contract rule, which cross-checks the C ``argtypes`` tuple in
  ``aco/_native.py`` against the Python signatures in ``aco/kernels.py``.

Suppressions are inline comments::

    something_noisy()  # repro-lint: disable=RPL001 -- justification
    # repro-lint: disable=RPL003 -- applies to the next line
    publish_problem(problem)

and ``# repro-lint: disable-file=RPL001`` anywhere in a file silences the
code for the whole file.  Grandfathered findings live in a baseline file
(:mod:`repro.lint.baseline`) keyed by line *content*, not line numbers, so
unrelated edits above a finding do not invalidate the baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "Finding",
    "LintModule",
    "LintReport",
    "Project",
    "Rule",
    "collect_files",
    "dotted_name",
    "parse_module",
    "run_lint",
]

#: Inline suppression: ``# repro-lint: disable=RPL001[,RPL003] [-- reason]``.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9_,\s]+)")

#: File-wide suppression: ``# repro-lint: disable-file=RPL001``.
_SUPPRESS_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9_,\s]+)")

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", "build", "dist"}

#: The code used for files that do not parse at all.
PARSE_ERROR_CODE = "RPL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str  # posix-style path as given/relativized by the runner
    line: int
    col: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _parse_codes(raw: str) -> set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass
class LintModule:
    """One parsed source file plus its suppression table."""

    path: Path
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module | None
    parse_error: str | None
    parse_error_line: int
    #: Codes suppressed on specific physical lines (1-based).
    line_suppressions: dict[int, set[str]]
    #: Codes suppressed for the whole file.
    file_suppressions: set[str]

    def line_text(self, line: int) -> str:
        """The physical source line (1-based); empty for out-of-range."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline or file-wide comment silences *finding*.

        A suppression comment counts when it sits on the finding's own line
        or on a comment-only line directly above it.
        """
        if finding.code in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(finding.line, set())
        if finding.code in codes:
            return True
        above = self.line_text(finding.line - 1).strip()
        if above.startswith("#"):
            return finding.code in self.line_suppressions.get(finding.line - 1, set())
        return False


def parse_module(path: Path, rel: str) -> LintModule:
    """Read and parse one file; a syntax error becomes a reportable state."""
    source = path.read_text(encoding="utf-8", errors="replace")
    lines = source.splitlines()
    line_suppressions: dict[int, set[str]] = {}
    file_suppressions: set[str] = set()
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            line_suppressions[number] = _parse_codes(match.group(1))
        match = _SUPPRESS_FILE_RE.search(text)
        if match:
            file_suppressions |= _parse_codes(match.group(1))
    tree: ast.Module | None = None
    parse_error: str | None = None
    parse_error_line = 1
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        parse_error = f"file does not parse: {exc.msg}"
        parse_error_line = exc.lineno or 1
    return LintModule(
        path=path,
        rel=rel,
        source=source,
        lines=lines,
        tree=tree,
        parse_error=parse_error,
        parse_error_line=parse_error_line,
        line_suppressions=line_suppressions,
        file_suppressions=file_suppressions,
    )


@dataclass
class Project:
    """The cross-file view handed to every rule."""

    modules: list[LintModule]

    def find_suffix(self, suffix: str) -> LintModule | None:
        """The module whose path ends with *suffix* (posix), or ``None``."""
        for module in self.modules:
            if module.rel.endswith(suffix) or module.path.as_posix().endswith(suffix):
                return module
        return None


class Rule:
    """Base class: one invariant, one ``RPLxxx`` code.

    Subclasses override :meth:`check_module` (per-file invariants) and/or
    :meth:`check_project` (cross-file contracts).  Rules must be pure
    functions of the parsed sources — no filesystem access, no imports of
    the linted code — so the linter can run on broken trees.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, module: LintModule, project: Project) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_files(paths: Sequence[str | Path], root: Path | None = None) -> list[tuple[Path, str]]:
    """Expand path arguments into ``(absolute path, display path)`` pairs.

    Directories are walked recursively for ``*.py`` (skipping caches, VCS
    and build directories); explicit file arguments are taken as-is.  The
    display path is relative to *root* when the file sits under it, which is
    what keeps baseline entries stable across machines.
    """
    root = (root if root is not None else Path.cwd()).resolve()
    seen: set[Path] = set()
    collected: list[tuple[Path, str]] = []

    def display(path: Path) -> str:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            return path.as_posix()

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved in seen:
            return
        seen.add(resolved)
        collected.append((resolved, display(resolved)))

    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.startswith(".") for part in sub.parts):
                    continue
                add(sub)
        elif path.suffix == ".py" and path.exists():
            add(path)
    collected.sort(key=lambda pair: pair[1])
    return collected


@dataclass
class LintReport:
    """Partitioned outcome of one lint run."""

    #: Actionable findings: not suppressed inline, not in the baseline.
    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by inline/file suppression comments.
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings matched (and consumed) by baseline entries.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries that no longer match anything (fixed or moved).
    stale_baseline: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def run_lint(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    baseline: "object | None" = None,
    root: Path | None = None,
) -> LintReport:
    """Lint *paths* and return the partitioned report.

    *baseline* is a :class:`repro.lint.baseline.Baseline` (duck-typed here
    to keep the engine import-light); ``None`` means every finding is
    actionable.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    files = collect_files(paths, root=root)
    modules = [parse_module(path, rel) for path, rel in files]
    project = Project(modules=modules)
    by_rel = {module.rel: module for module in modules}

    raw: list[Finding] = []
    for module in modules:
        if module.parse_error is not None:
            raw.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    message=module.parse_error,
                    path=module.rel,
                    line=module.parse_error_line,
                )
            )
            continue
        for rule in rules:
            raw.extend(rule.check_module(module, project))
    for rule in rules:
        raw.extend(rule.check_project(project))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    report = LintReport(files_checked=len(modules))
    for finding in raw:
        module = by_rel.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            report.suppressed.append(finding)
            continue
        if baseline is not None and baseline.consume(finding, module):
            report.baselined.append(finding)
            continue
        report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.unconsumed()
    return report
