"""Static invariant checks for the repro-dag codebase (``repro-dag lint``).

See :mod:`repro.lint.core` for the engine, :mod:`repro.lint.rules` for the
five project rules (RPL001–RPL005), and :mod:`repro.lint.baseline` for the
grandfathered-findings file format.
"""

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.core import (
    Finding,
    LintModule,
    LintReport,
    Project,
    Rule,
    collect_files,
    parse_module,
    run_lint,
)
from repro.lint.rules import ALL_RULES, rule_by_code

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintModule",
    "LintReport",
    "Project",
    "Rule",
    "collect_files",
    "parse_module",
    "rule_by_code",
    "run_lint",
    "write_baseline",
]
