"""Baseline file support: grandfather existing findings without hiding new ones.

The baseline is a checked-in JSON document listing findings that predate the
linter (or are individually justified).  Entries are keyed by a *content
fingerprint* — SHA-256 over ``code``, ``path``, and the stripped text of the
offending source line — never by line number, so edits elsewhere in a file
do not invalidate them.  Identical lines are disambiguated by count: three
matching entries absorb at most three matching findings.

Matching *consumes* entries, so a finding that appears twice while the
baseline lists it once still fails the build, and entries whose finding was
fixed show up as "stale" (and are dropped on ``--update-baseline``).
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.core import Finding, LintModule

__all__ = ["Baseline", "fingerprint", "write_baseline"]

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1


def fingerprint(finding: Finding, line_text: str) -> str:
    """Line-number-independent identity of a finding."""
    material = "\x1f".join([finding.code, finding.path, line_text.strip()])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]


@dataclass
class Baseline:
    """Loaded baseline entries, consumed as findings match them."""

    path: Path | None = None
    #: (code, path, fingerprint) -> remaining allowance.
    entries: Counter = field(default_factory=Counter)
    #: Free-form per-entry notes, kept so --update-baseline preserves them.
    notes: dict = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != BASELINE_FORMAT:
            raise ValueError(f"{path} is not a {BASELINE_FORMAT} file")
        baseline = cls(path=path)
        for entry in data.get("findings", []):
            key = (entry["code"], entry["path"], entry["fingerprint"])
            baseline.entries[key] += int(entry.get("count", 1))
            if entry.get("note"):
                baseline.notes[key] = entry["note"]
        return baseline

    def consume(self, finding: Finding, module: LintModule | None) -> bool:
        """True (and decrement the allowance) if *finding* is baselined."""
        line_text = module.line_text(finding.line) if module is not None else ""
        key = (finding.code, finding.path, fingerprint(finding, line_text))
        if self.entries.get(key, 0) > 0:
            self.entries[key] -= 1
            return True
        return False

    def unconsumed(self) -> int:
        """Entries whose finding no longer exists (candidates for removal)."""
        return sum(count for count in self.entries.values() if count > 0)


def write_baseline(
    path: Path,
    findings: Iterable[Finding],
    modules: dict[str, LintModule],
    notes: dict | None = None,
) -> int:
    """Serialize *findings* as the new baseline; returns the entry count.

    Findings on the same (code, path, line-text) collapse into one entry
    with a count, keeping the file small and diff-stable.
    """
    notes = notes or {}
    counts: Counter = Counter()
    meta: dict = {}
    for finding in findings:
        module = modules.get(finding.path)
        line_text = module.line_text(finding.line) if module is not None else ""
        key = (finding.code, finding.path, fingerprint(finding, line_text))
        counts[key] += 1
        meta.setdefault(key, (finding.message, line_text.strip()))
    entries = []
    for key in sorted(counts):
        code, rel, digest = key
        message, line_text = meta[key]
        entry = {
            "code": code,
            "path": rel,
            "fingerprint": digest,
            "count": counts[key],
            "line": line_text,
            "message": message,
        }
        if key in notes:
            entry["note"] = notes[key]
        entries.append(entry)
    document = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)
