"""The complete Sugiyama pipeline with a pluggable layering step.

:func:`sugiyama_layout` runs cycle removal → layering → dummy insertion →
barycenter ordering → coordinate assignment and returns a
:class:`SugiyamaDrawing` holding every intermediate artefact.  The layering
step accepts either any ``graph -> Layering`` callable or one of the named
algorithms of the library (including the ACO algorithm), so the paper's
motivation — "the layering step determines the height and width of the final
drawing" — can be demonstrated end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams
from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering
from repro.layering.coffman_graham import coffman_graham_layering
from repro.layering.dummy import ProperLayeringResult, make_proper
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import LayeringMetrics, evaluate_layering
from repro.layering.minwidth import minwidth_layering_sweep
from repro.layering.network_simplex import minimum_dummy_layering
from repro.layering.promote import promote_layering
from repro.sugiyama.coordinates import assign_coordinates
from repro.sugiyama.cycle_removal import remove_cycles
from repro.sugiyama.ordering import barycenter_ordering
from repro.utils.exceptions import ValidationError

__all__ = ["SugiyamaDrawing", "sugiyama_layout", "LAYERING_METHODS", "resolve_layering_method"]

LayeringMethod = Callable[[DiGraph], Layering]


def _lpl_pl(graph: DiGraph) -> Layering:
    return promote_layering(graph, longest_path_layering(graph))


def _minwidth_pl(graph: DiGraph) -> Layering:
    return promote_layering(graph, minwidth_layering_sweep(graph))


def _coffman_graham_default(graph: DiGraph) -> Layering:
    # A common default: bound the layer size by roughly sqrt(|V|).
    bound = max(1, int(round(graph.n_vertices ** 0.5)))
    return coffman_graham_layering(graph, bound)


def _aco_default(graph: DiGraph) -> Layering:
    return aco_layering(graph, ACOParams(seed=0))


#: Named layering methods accepted by :func:`sugiyama_layout`.
LAYERING_METHODS: dict[str, LayeringMethod] = {
    "lpl": longest_path_layering,
    "lpl+pl": _lpl_pl,
    "minwidth": minwidth_layering_sweep,
    "minwidth+pl": _minwidth_pl,
    "coffman-graham": _coffman_graham_default,
    "min-dummy": minimum_dummy_layering,
    "aco": _aco_default,
}


def resolve_layering_method(method: str | LayeringMethod) -> LayeringMethod:
    """Turn a method name (or callable) into a ``graph -> Layering`` callable."""
    if callable(method):
        return method
    try:
        return LAYERING_METHODS[method]
    except KeyError:
        raise ValidationError(
            f"unknown layering method {method!r}; choose from {sorted(LAYERING_METHODS)} "
            "or pass a callable"
        ) from None


@dataclass
class SugiyamaDrawing:
    """All artefacts of one pipeline run.

    Attributes
    ----------
    original: the graph as supplied (possibly cyclic).
    acyclic: the graph after cycle removal (what was actually layered).
    reversed_edges: edges whose direction was flipped during cycle removal.
    layering: the layering of the acyclic graph (real vertices only).
    proper: proper graph + layering + dummy chains.
    orders: per-layer left-to-right vertex order of the proper graph.
    coordinates: ``vertex -> (x, y)`` for every real and dummy vertex.
    crossings: total edge crossings of the final ordering.
    metrics: paper metrics of the layering.
    """

    original: DiGraph
    acyclic: DiGraph
    reversed_edges: list[tuple[Vertex, Vertex]]
    layering: Layering
    proper: ProperLayeringResult
    orders: dict[int, list[Vertex]]
    coordinates: dict[Vertex, tuple[float, float]]
    crossings: int
    metrics: LayeringMetrics

    @property
    def width(self) -> float:
        """Dummy-inclusive width of the layering (the paper's primary width metric)."""
        return self.metrics.width_including_dummies

    @property
    def height(self) -> int:
        """Number of layers of the drawing."""
        return self.metrics.height


def sugiyama_layout(
    graph: DiGraph,
    *,
    layering_method: str | LayeringMethod = "lpl",
    nd_width: float = 1.0,
    max_ordering_sweeps: int = 8,
    gap: float = 1.0,
) -> SugiyamaDrawing:
    """Run the full Sugiyama pipeline on *graph*.

    Parameters
    ----------
    graph: any digraph (cycles are removed automatically).
    layering_method: name from :data:`LAYERING_METHODS` or a
        ``graph -> Layering`` callable (e.g. a pre-configured
        ``lambda g: aco_layering(g, my_params)``).
    nd_width: width given to dummy vertices in metrics and drawing.
    max_ordering_sweeps: barycenter sweep budget for crossing reduction.
    gap: horizontal gap between vertices in the coordinate pass.
    """
    removal = remove_cycles(graph)
    method = resolve_layering_method(layering_method)
    layering = method(removal.graph)
    layering.validate(removal.graph)
    metrics = evaluate_layering(removal.graph, layering, nd_width=nd_width)
    # Dummy vertices must have a strictly positive width to exist as graph
    # vertices; use a hair-thin dummy when nd_width is zero.
    proper = make_proper(removal.graph, layering, dummy_width=nd_width if nd_width > 0 else 1e-6)
    orders, crossings = barycenter_ordering(
        proper.graph, proper.layering, max_sweeps=max_ordering_sweeps
    )
    coordinates = assign_coordinates(proper.graph, proper.layering, orders, gap=gap)
    return SugiyamaDrawing(
        original=graph,
        acyclic=removal.graph,
        reversed_edges=removal.reversed_edges,
        layering=layering,
        proper=proper,
        orders=orders,
        coordinates=coordinates,
        crossings=crossings,
        metrics=metrics,
    )
