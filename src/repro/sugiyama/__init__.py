"""The Sugiyama framework around the layering step.

The paper's introduction motivates the layering problem as one phase of the
Sugiyama framework for hierarchical graph drawing.  This package supplies the
surrounding phases so a layering produced by any algorithm in the library can
be turned into an actual drawing:

1. cycle removal (:mod:`repro.sugiyama.cycle_removal`),
2. layer assignment — pluggable, any ``graph -> Layering`` callable,
3. dummy-vertex insertion (:mod:`repro.layering.dummy`),
4. crossing minimisation by barycenter/median sweeps
   (:mod:`repro.sugiyama.ordering`, :mod:`repro.sugiyama.crossings`),
5. x-coordinate assignment (:mod:`repro.sugiyama.coordinates`),
6. rendering to ASCII or SVG (:mod:`repro.sugiyama.render`).

:func:`repro.sugiyama.pipeline.sugiyama_layout` chains all of it.
"""

from repro.sugiyama.coordinates import assign_coordinates
from repro.sugiyama.crossings import count_all_crossings, count_crossings_between
from repro.sugiyama.cycle_removal import remove_cycles
from repro.sugiyama.ordering import barycenter_ordering, initial_ordering
from repro.sugiyama.pipeline import SugiyamaDrawing, sugiyama_layout
from repro.sugiyama.render import render_ascii, render_svg

__all__ = [
    "remove_cycles",
    "initial_ordering",
    "barycenter_ordering",
    "count_crossings_between",
    "count_all_crossings",
    "assign_coordinates",
    "SugiyamaDrawing",
    "sugiyama_layout",
    "render_ascii",
    "render_svg",
]
