"""Rendering a :class:`~repro.sugiyama.pipeline.SugiyamaDrawing` to text or SVG.

The ASCII renderer is meant for terminals and test output: one row per layer
(top layer first), vertices placed proportionally to their x coordinate.  The
SVG renderer produces a self-contained file with rectangles for real vertices,
small circles for dummy vertices and straight line segments for the proper
edges, which is enough to eyeball the width/height trade-offs the paper talks
about.
"""

from __future__ import annotations

import re
from pathlib import Path
from xml.sax.saxutils import escape

from repro.layering.dummy import DummyVertex
from repro.sugiyama.pipeline import SugiyamaDrawing

__all__ = ["render_ascii", "render_svg"]

#: Characters XML 1.0 forbids outright (no escape can represent them):
#: C0 controls except TAB/LF/CR, the surrogate range, and U+FFFE/U+FFFF.
_XML_INVALID = re.compile(
    "[\x00-\x08\x0b\x0c\x0e-\x1f\ud800-\udfff\ufffe\uffff]"
)


def _xml_text(text: str) -> str:
    """*text* made safe for XML character data: invalid code points become
    U+FFFD (they are unrepresentable in XML 1.0, escaped or not), the rest
    is entity-escaped."""
    return escape(_XML_INVALID.sub("�", text))


def render_ascii(drawing: SugiyamaDrawing, *, columns: int = 100) -> str:
    """Render the drawing as plain text, one line per layer (top layer first)."""
    coords = drawing.coordinates
    if not coords:
        return "(empty drawing)"
    xs = [x for x, _ in coords.values()]
    x_min, x_max = min(xs), max(xs)
    span = max(x_max - x_min, 1e-9)

    def column_of(x: float) -> int:
        return int(round((x - x_min) / span * (columns - 1)))

    lines: list[str] = []
    height = drawing.proper.layering.height
    for layer in range(height, 0, -1):
        row = [" "] * columns
        for v in drawing.orders.get(layer, []):
            x, _ = coords[v]
            col = column_of(x)
            text = "*" if isinstance(v, DummyVertex) else str(drawing.acyclic.vertex_label(v) or v)
            for i, ch in enumerate(text):
                pos = col + i
                if 0 <= pos < columns:
                    row[pos] = ch
        lines.append(f"L{layer:>3} |" + "".join(row).rstrip())
    return "\n".join(lines)


def render_svg(
    drawing: SugiyamaDrawing,
    path: str | Path | None = None,
    *,
    x_scale: float = 40.0,
    y_scale: float = 60.0,
    node_height: float = 20.0,
    margin: float = 40.0,
) -> str:
    """Render the drawing as an SVG document; optionally write it to *path*.

    Returns the SVG text either way.
    """
    coords = drawing.coordinates
    if not coords:
        svg = '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>'
        if path is not None:
            Path(path).write_text(svg, encoding="utf-8")
        return svg

    xs = [x for x, _ in coords.values()]
    ys = [y for _, y in coords.values()]
    x_min, y_max = min(xs), max(ys)

    def sx(x: float) -> float:
        return margin + (x - x_min) * x_scale

    def sy(y: float) -> float:
        return margin + (y_max - y) * y_scale  # higher layers drawn nearer the top

    width = margin * 2 + (max(xs) - x_min) * x_scale
    height = margin * 2 + (y_max - min(ys)) * y_scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" height="{height:.0f}">',
        '<g stroke="#555" stroke-width="1">',
    ]
    for u, v in drawing.proper.graph.edges():
        x1, y1 = coords[u]
        x2, y2 = coords[v]
        parts.append(
            f'<line x1="{sx(x1):.1f}" y1="{sy(y1):.1f}" x2="{sx(x2):.1f}" y2="{sy(y2):.1f}"/>'
        )
    parts.append("</g>")
    for v in drawing.proper.graph.vertices():
        x, y = coords[v]
        if isinstance(v, DummyVertex):
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.5" fill="#bbb"/>'
            )
        else:
            w = drawing.proper.graph.vertex_width(v) * x_scale * 0.8
            # Labels are arbitrary user text: every interpolation into XML
            # character data must be escaped or a label like `a<b&"c>`
            # produces a file XML parsers reject.
            label = _xml_text(drawing.acyclic.vertex_label(v) or str(v))
            parts.append(
                f'<rect x="{sx(x) - w / 2:.1f}" y="{sy(y) - node_height / 2:.1f}" '
                f'width="{w:.1f}" height="{node_height:.1f}" fill="#cde" stroke="#234">'
                f"<title>{label}</title></rect>"
            )
            parts.append(
                f'<text x="{sx(x):.1f}" y="{sy(y) + 4:.1f}" font-size="10" '
                f'text-anchor="middle">{label}</text>'
            )
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg, encoding="utf-8")
    return svg
