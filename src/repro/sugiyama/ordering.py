"""Vertex ordering within layers — barycenter crossing minimisation.

After dummy-vertex insertion the graph is proper and every layer holds a list
of (real and dummy) vertices.  The classical barycenter heuristic sweeps the
layers alternately downwards and upwards, reordering each layer by the mean
position of its neighbours in the adjacent fixed layer; the best ordering seen
(by total crossings) is kept.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering
from repro.sugiyama.crossings import count_all_crossings
from repro.utils.exceptions import ValidationError

__all__ = ["initial_ordering", "barycenter_ordering"]


def initial_ordering(graph: DiGraph, layering: Layering) -> dict[int, list[Vertex]]:
    """A deterministic starting order: vertices of each layer in graph insertion order."""
    orders: dict[int, list[Vertex]] = {layer: [] for layer in range(1, layering.height + 1)}
    for v in graph.vertices():
        orders[layering.layer_of(v)].append(v)
    return orders


def _barycenter_pass(
    graph: DiGraph,
    orders: dict[int, list[Vertex]],
    height: int,
    *,
    downwards: bool,
) -> None:
    """One sweep: reorder every layer by the barycenter of its fixed neighbours."""
    layer_range = range(height - 1, 0, -1) if downwards else range(2, height + 1)
    for layer in layer_range:
        fixed_layer = layer + 1 if downwards else layer - 1
        fixed_order = orders.get(fixed_layer, [])
        fixed_pos = {v: i for i, v in enumerate(fixed_order)}
        current = orders[layer]

        def barycenter(v: Vertex) -> float:
            if downwards:
                nbrs = [u for u in graph.predecessors(v) if u in fixed_pos]
            else:
                nbrs = [w for w in graph.successors(v) if w in fixed_pos]
            if not nbrs:
                # Keep vertices without neighbours where they are.
                return float(current.index(v))
            return sum(fixed_pos[u] for u in nbrs) / len(nbrs)

        orders[layer] = sorted(current, key=barycenter)


def barycenter_ordering(
    graph: DiGraph,
    layering: Layering,
    *,
    max_sweeps: int = 8,
) -> tuple[dict[int, list[Vertex]], int]:
    """Order vertices within layers to reduce crossings.

    Parameters
    ----------
    graph: the **proper** layered graph (run :func:`repro.layering.make_proper`
        first for graphs with long edges).
    layering: the proper layering.
    max_sweeps: maximum number of down+up sweep pairs.

    Returns
    -------
    (orders, crossings)
        The best per-layer orders found and their total crossing count.
    """
    if max_sweeps < 0:
        raise ValidationError(f"max_sweeps must be >= 0, got {max_sweeps}")
    orders = initial_ordering(graph, layering)
    best_orders = {layer: list(vs) for layer, vs in orders.items()}
    best_crossings = count_all_crossings(graph, layering, best_orders)
    height = layering.height

    for _ in range(max_sweeps):
        _barycenter_pass(graph, orders, height, downwards=True)
        _barycenter_pass(graph, orders, height, downwards=False)
        crossings = count_all_crossings(graph, layering, orders)
        if crossings < best_crossings:
            best_crossings = crossings
            best_orders = {layer: list(vs) for layer, vs in orders.items()}
        if best_crossings == 0:
            break
    return best_orders, best_crossings
