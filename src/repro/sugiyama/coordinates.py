"""X/Y coordinate assignment for a layered, ordered graph.

A deliberately simple priority-style coordinate pass: each layer is laid out
left-to-right honouring vertex widths and a configurable horizontal gap, each
layer is centred around x = 0, and a few alignment sweeps pull every vertex
towards the barycenter of its neighbours without violating the ordering or
minimum separation.  The y coordinate is simply the layer number (layer 1 at
the bottom), matching the convention used throughout the library.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError

__all__ = ["assign_coordinates"]


def _layout_layer(
    graph: DiGraph, order: Sequence[Vertex], gap: float
) -> dict[Vertex, float]:
    """Initial left-to-right packing of one layer (returns centre x per vertex)."""
    xs: dict[Vertex, float] = {}
    cursor = 0.0
    for v in order:
        w = graph.vertex_width(v)
        xs[v] = cursor + w / 2.0
        cursor += w + gap
    total = cursor - gap if order else 0.0
    shift = total / 2.0
    return {v: x - shift for v, x in xs.items()}


def assign_coordinates(
    graph: DiGraph,
    layering: Layering,
    orders: Mapping[int, Sequence[Vertex]],
    *,
    gap: float = 1.0,
    alignment_sweeps: int = 4,
) -> dict[Vertex, tuple[float, float]]:
    """Assign ``(x, y)`` coordinates to every vertex of a proper layered graph.

    Parameters
    ----------
    graph: the proper graph (dummy vertices included).
    layering: its layering.
    orders: per-layer left-to-right vertex orders (from
        :func:`repro.sugiyama.ordering.barycenter_ordering`).
    gap: minimum horizontal distance between neighbouring vertex borders.
    alignment_sweeps: number of barycenter alignment passes.

    Returns a mapping ``vertex -> (x, y)`` with y equal to the layer number.
    """
    if gap < 0:
        raise ValidationError(f"gap must be >= 0, got {gap}")
    if alignment_sweeps < 0:
        raise ValidationError(f"alignment_sweeps must be >= 0, got {alignment_sweeps}")

    xs: dict[Vertex, float] = {}
    for layer in range(1, layering.height + 1):
        xs.update(_layout_layer(graph, orders.get(layer, []), gap))

    def min_separation(a: Vertex, b: Vertex) -> float:
        return (graph.vertex_width(a) + graph.vertex_width(b)) / 2.0 + gap

    for sweep in range(alignment_sweeps):
        layer_iter = (
            range(layering.height, 0, -1) if sweep % 2 == 0 else range(1, layering.height + 1)
        )
        for layer in layer_iter:
            order = list(orders.get(layer, []))
            for v in order:
                nbrs = [u for u in graph.predecessors(v)] + [w for w in graph.successors(v)]
                nbrs = [u for u in nbrs if u in xs]
                if not nbrs:
                    continue
                xs[v] = sum(xs[u] for u in nbrs) / len(nbrs)
            # Restore minimum separation left-to-right, keeping the order.
            for i in range(1, len(order)):
                prev, cur = order[i - 1], order[i]
                lower_bound = xs[prev] + min_separation(prev, cur)
                if xs[cur] < lower_bound:
                    xs[cur] = lower_bound

    return {v: (xs[v], float(layering.layer_of(v))) for v in graph.vertices()}
