"""Edge-crossing counting between adjacent layers of a proper layering.

Crossing counts are the quality measure of the ordering phase (step 4 of the
Sugiyama framework).  For two adjacent layers the number of crossings equals
the number of inversions in the sequence of lower-endpoint positions when the
edges are sorted by their upper-endpoint position; the inversion count is
computed with a merge-sort style counter in ``O(E log E)``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering

__all__ = ["count_inversions", "count_crossings_between", "count_all_crossings"]


def count_inversions(values: Sequence[int]) -> int:
    """Number of inversions (pairs ``i < j`` with ``values[i] > values[j]``)."""
    seq = list(values)

    def sort_count(a: list[int]) -> tuple[list[int], int]:
        if len(a) <= 1:
            return a, 0
        mid = len(a) // 2
        left, inv_l = sort_count(a[:mid])
        right, inv_r = sort_count(a[mid:])
        merged: list[int] = []
        inversions = inv_l + inv_r
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
                inversions += len(left) - i
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inversions

    return sort_count(seq)[1]


def count_crossings_between(
    graph: DiGraph,
    upper_order: Sequence[Vertex],
    lower_order: Sequence[Vertex],
) -> int:
    """Crossings among edges from the *upper* layer down to the *lower* layer.

    Both orders list the vertices of their layer from left to right.  Only
    edges with the source in the upper layer and the target in the lower
    layer are considered (in a proper layering those are all edges between
    the two layers).
    """
    upper_pos = {v: i for i, v in enumerate(upper_order)}
    lower_pos = {v: i for i, v in enumerate(lower_order)}
    edges: list[tuple[int, int]] = []
    for u in upper_order:
        for v in graph.successors(u):
            if v in lower_pos:
                edges.append((upper_pos[u], lower_pos[v]))
    edges.sort()
    return count_inversions([lo for _, lo in edges])


def count_all_crossings(
    graph: DiGraph,
    layering: Layering,
    orders: Mapping[int, Sequence[Vertex]],
) -> int:
    """Total crossings of a proper layered graph under the given per-layer orders."""
    total = 0
    height = layering.height
    for layer in range(height, 1, -1):
        upper = orders.get(layer, [])
        lower = orders.get(layer - 1, [])
        if upper and lower:
            total += count_crossings_between(graph, upper, lower)
    return total
