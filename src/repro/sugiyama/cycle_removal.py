"""Cycle removal — step 1 of the Sugiyama framework.

Layering requires a DAG.  For cyclic inputs we reverse a small set of edges (a
feedback arc set found with the Eades–Lin–Smyth heuristic from
:mod:`repro.graph.acyclicity`) and remember which edges were flipped so the
final drawing can restore their arrowheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.acyclicity import is_acyclic, make_acyclic
from repro.graph.digraph import DiGraph, Vertex

__all__ = ["CycleRemovalResult", "remove_cycles"]


@dataclass
class CycleRemovalResult:
    """An acyclic version of the input graph plus the edges that were reversed."""

    graph: DiGraph
    reversed_edges: list[tuple[Vertex, Vertex]]

    @property
    def n_reversed(self) -> int:
        """How many edges had to be reversed (0 for an already-acyclic input)."""
        return len(self.reversed_edges)


def remove_cycles(graph: DiGraph) -> CycleRemovalResult:
    """Return an acyclic copy of *graph*, reversing a heuristic feedback arc set.

    Already-acyclic inputs are returned as an unmodified copy with an empty
    reversed-edge list.
    """
    if is_acyclic(graph):
        return CycleRemovalResult(graph=graph.copy(), reversed_edges=[])
    acyclic, reversed_edges = make_acyclic(graph)
    return CycleRemovalResult(graph=acyclic, reversed_edges=reversed_edges)
