"""The synthetic AT&T-like evaluation corpus.

Structure mirrors the paper's experimental set-up exactly:

* 19 groups, vertex counts 10, 15, 20, …, 100;
* 1277 graphs in total (the paper's count), distributed as evenly as possible
  over the groups — 68 graphs in the first four groups, 67 in the rest;
* every graph is a sparse random DAG drawn by
  :func:`repro.graph.generators.att_like_dag` from a seed derived
  deterministically from the corpus seed, the group and the index within the
  group, so the corpus is identical on every machine and across runs.

For day-to-day benchmarking the full 1277-graph corpus is unnecessarily slow
in pure Python; ``att_like_corpus(graphs_per_group=k)`` produces the first
*k* graphs of every group, which is what the benchmark harness uses
(shape-preserving, since every group is still represented).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.generators import att_like_dag
from repro.utils.exceptions import ValidationError

__all__ = [
    "CORPUS_SEED",
    "GROUP_VERTEX_COUNTS",
    "TOTAL_GRAPHS",
    "CorpusGraph",
    "corpus_group_counts",
    "iter_att_like_corpus",
    "att_like_corpus",
]

#: Default corpus seed (fixed so every experiment in the repo is reproducible).
CORPUS_SEED = 20070326

#: The 19 vertex-count groups of the paper: 10, 15, ..., 100.
GROUP_VERTEX_COUNTS: tuple[int, ...] = tuple(range(10, 101, 5))

#: Total number of graphs in the full corpus (the paper's figure).
TOTAL_GRAPHS = 1277


@dataclass(frozen=True)
class CorpusGraph:
    """One corpus entry: the graph plus its group and position metadata."""

    vertex_count: int
    index: int
    seed: int
    graph: DiGraph

    @property
    def name(self) -> str:
        """Stable human-readable identifier, e.g. ``"att-like-n45-007"``."""
        return f"att-like-n{self.vertex_count}-{self.index:03d}"


def corpus_group_counts(
    total: int = TOTAL_GRAPHS,
    vertex_counts: tuple[int, ...] = GROUP_VERTEX_COUNTS,
) -> dict[int, int]:
    """How many graphs each vertex-count group contains for a corpus of *total* graphs.

    The paper does not state the per-group breakdown, so the graphs are
    spread as evenly as possible over the requested groups: ``total //
    len(vertex_counts)`` per group with the remainder going to the smallest
    groups.  With the defaults this is the paper's 1277-graph, 19-group
    shape; custom ``vertex_counts`` (e.g. a single group) distribute the
    same total over just those groups.
    """
    if not vertex_counts:
        raise ValidationError("vertex_counts must name at least one group")
    if len(set(vertex_counts)) != len(vertex_counts):
        raise ValidationError(
            f"vertex_counts must be unique, got duplicates in {vertex_counts}"
        )
    if total < len(vertex_counts):
        raise ValidationError(
            f"corpus must contain at least one graph per group "
            f"({len(vertex_counts)}), got total={total}"
        )
    base, extra = divmod(total, len(vertex_counts))
    # The remainder goes to the *smallest* groups regardless of the order
    # the groups were requested in, so (10, 20) and (20, 10) describe the
    # same corpus.
    bonus = set(sorted(vertex_counts)[:extra])
    return {vc: base + (1 if vc in bonus else 0) for vc in vertex_counts}


def _graph_seed(corpus_seed: int, vertex_count: int, index: int) -> int:
    """Deterministic per-graph seed derived from (corpus seed, group, index)."""
    mix = np.random.SeedSequence([corpus_seed, vertex_count, index])
    return int(mix.generate_state(1)[0])


def iter_att_like_corpus(
    *,
    graphs_per_group: int | None = None,
    seed: int = CORPUS_SEED,
    vertex_counts: tuple[int, ...] = GROUP_VERTEX_COUNTS,
) -> Iterator[CorpusGraph]:
    """Lazily generate the corpus, group by group.

    Parameters
    ----------
    graphs_per_group:
        ``None`` (default) yields the full paper-sized corpus — 1277 graphs
        distributed over the requested ``vertex_counts`` (the paper's 19
        groups by default, so custom groups no longer crash with a raw
        ``KeyError``); an integer yields that many graphs from every group —
        the fast, shape-preserving subset used by the benchmark harness.
    seed:
        Corpus seed; changing it produces a statistically equivalent but
        different corpus.
    vertex_counts:
        The group sizes to generate (defaults to the paper's 19 groups).
    """
    if graphs_per_group is not None and graphs_per_group < 1:
        raise ValidationError(f"graphs_per_group must be >= 1, got {graphs_per_group}")
    vertex_counts = tuple(vertex_counts)
    if not vertex_counts:
        raise ValidationError("vertex_counts must name at least one group")
    if len(set(vertex_counts)) != len(vertex_counts):
        raise ValidationError(
            f"vertex_counts must be unique, got duplicates in {vertex_counts}"
        )
    full_counts = (
        corpus_group_counts(vertex_counts=vertex_counts)
        if graphs_per_group is None
        else None
    )
    for vc in vertex_counts:
        count = graphs_per_group if graphs_per_group is not None else full_counts[vc]
        for idx in range(count):
            graph_seed = _graph_seed(seed, vc, idx)
            graph = att_like_dag(vc, seed=graph_seed)
            yield CorpusGraph(vertex_count=vc, index=idx, seed=graph_seed, graph=graph)


def att_like_corpus(
    *,
    graphs_per_group: int | None = None,
    seed: int = CORPUS_SEED,
    vertex_counts: tuple[int, ...] = GROUP_VERTEX_COUNTS,
) -> list[CorpusGraph]:
    """Materialise the corpus as a list (see :func:`iter_att_like_corpus`)."""
    return list(
        iter_att_like_corpus(
            graphs_per_group=graphs_per_group, seed=seed, vertex_counts=vertex_counts
        )
    )
