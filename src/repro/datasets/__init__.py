"""Benchmark corpora.

The paper evaluates on 1277 AT&T graphs (graphdrawing.org), grouped into 19
vertex-count classes from 10 to 100 in steps of 5.  That corpus is not
redistributable, so :mod:`repro.datasets.corpus` builds a deterministic
synthetic stand-in with the same group structure and matching sparsity
(see DESIGN.md, "Substitutions").
"""

from repro.datasets.corpus import (
    CORPUS_SEED,
    GROUP_VERTEX_COUNTS,
    TOTAL_GRAPHS,
    CorpusGraph,
    att_like_corpus,
    corpus_group_counts,
    iter_att_like_corpus,
)

__all__ = [
    "CORPUS_SEED",
    "GROUP_VERTEX_COUNTS",
    "TOTAL_GRAPHS",
    "CorpusGraph",
    "corpus_group_counts",
    "att_like_corpus",
    "iter_att_like_corpus",
]
