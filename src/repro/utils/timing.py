"""Lightweight timing helpers used by the experiment harness.

The paper reports running time as one of its five evaluation criteria
(Figures 8 and 9).  The helpers here provide a context-manager stopwatch and a
``time_call`` wrapper that returns both the result of a callable and the
elapsed wall-clock time, so experiment code never has to repeat the
``perf_counter`` boilerplate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

T = TypeVar("T")

__all__ = ["Stopwatch", "TimingRecord", "time_call"]


@dataclass
class TimingRecord:
    """The outcome of a timed call: the returned value and the elapsed seconds."""

    value: Any
    seconds: float


class Stopwatch:
    """A context-manager stopwatch accumulating wall-clock time.

    A single instance can be entered multiple times; :attr:`total` accumulates
    across uses and :attr:`laps` records each individual interval, which is
    convenient when timing the same algorithm over a corpus of graphs.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.total >= 0.0
    True
    """

    def __init__(self) -> None:
        self.total: float = 0.0
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None, "Stopwatch exited without being entered"
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.total += lap
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 if no laps were recorded)."""
        return self.total / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        """Forget all recorded laps."""
        self.total = 0.0
        self.laps = []
        self._start = None


def time_call(func: Callable[..., T], *args: Any, **kwargs: Any) -> TimingRecord:
    """Call ``func(*args, **kwargs)`` and return its value with the elapsed time."""
    start = time.perf_counter()
    value = func(*args, **kwargs)
    return TimingRecord(value=value, seconds=time.perf_counter() - start)
