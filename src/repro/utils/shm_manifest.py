"""Per-run manifests of live shared-memory blocks, and the sweep that
reclaims them after a crash.

``multiprocessing.shared_memory`` blocks are kernel objects with no owner
process: when a run that published problem arrays (:func:`repro.aco.runtime.
publish_problem` / :func:`publish_packed`) is killed with ``SIGKILL`` the
``finally`` blocks that would have unlinked them never run, and the segments
stay allocated in ``/dev/shm`` until reboot.  At full-corpus scale a few
killed runs can pin hundreds of megabytes.

The fix is bookkeeping plus a sweeper:

* every publish registers its block name in a small per-process manifest
  file (``<manifest-dir>/run-<pid>-<token>.json``, rewritten atomically);
  every unlink unregisters it, and a manifest with no blocks left is
  deleted — so a run that shuts down cleanly leaves nothing behind;
* :func:`sweep` scans the manifest directory for manifests whose owning
  process is dead (or older than an explicit cutoff) and unlinks every
  block they still list.  It runs automatically at the start of every CLI
  experiment run and on demand via ``repro-dag clean``; ``repro-dag cache
  prune --older-than`` sweeps aged manifests as part of cache maintenance.

The manifest directory defaults to ``$TMPDIR/repro-shm-manifests`` (same
host scope as the shm segments themselves) and can be overridden with
``REPRO_SHM_MANIFEST_DIR`` — tests point it at a tmpdir so sweeps never
touch another process's state.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

__all__ = [
    "MANIFEST_DIR_ENV",
    "SweepResult",
    "manifest_dir",
    "register",
    "unregister",
    "release_all",
    "sweep",
]

#: Environment override for where run manifests live.
MANIFEST_DIR_ENV = "REPRO_SHM_MANIFEST_DIR"

#: Format marker inside every manifest file.
MANIFEST_FORMAT = "repro-shm-manifest"

#: This process's registered block names, in registration order.
_REGISTERED: dict[str, None] = {}

#: Lazily chosen manifest path; reset after fork (see :func:`_own_path`).
_MANIFEST_PATH: Path | None = None
_OWNER_PID: int | None = None
_TOKEN = 0


def manifest_dir() -> Path:
    """Where run manifests live (``REPRO_SHM_MANIFEST_DIR`` or the tmpdir)."""
    env = os.environ.get(MANIFEST_DIR_ENV, "").strip()
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro-shm-manifests"


def _ensure_owner() -> None:
    """Reset inherited registry state in a forked child.

    A forked worker inherits the parent's registered block names and
    manifest path, but it owns neither: acting on them would let the child
    clobber the parent's manifest or claim blocks it must not unlink.
    """
    global _MANIFEST_PATH, _OWNER_PID
    pid = os.getpid()
    if _OWNER_PID is None:
        _OWNER_PID = pid
    elif _OWNER_PID != pid:
        _REGISTERED.clear()
        _MANIFEST_PATH = None
        _OWNER_PID = pid


def _own_path() -> Path:
    """This process's manifest file, minted lazily and re-minted after fork."""
    global _MANIFEST_PATH, _TOKEN
    _ensure_owner()
    if _MANIFEST_PATH is None:
        _TOKEN += 1
        _MANIFEST_PATH = manifest_dir() / f"run-{os.getpid()}-{_TOKEN}.json"
    return _MANIFEST_PATH


def _write_manifest() -> None:
    path = _own_path()
    if not _REGISTERED:
        try:
            path.unlink()
        except OSError:
            pass
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "format": MANIFEST_FORMAT,
        "pid": os.getpid(),
        "created": time.time(),
        "blocks": list(_REGISTERED),
    }
    tmp = path.with_suffix(".tmp")
    try:
        tmp.write_text(json.dumps(record), encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        # Manifest writing is best-effort bookkeeping: a read-only tmpdir
        # must not break the run it is trying to protect.
        try:
            tmp.unlink()
        except OSError:
            pass


def register(name: str) -> None:
    """Record *name* as a live block owned by this process."""
    _ensure_owner()
    _REGISTERED[name] = None
    _write_manifest()


def unregister(name: str) -> None:
    """Drop *name* from this process's manifest (idempotent)."""
    _ensure_owner()
    if name in _REGISTERED:
        del _REGISTERED[name]
        _write_manifest()


def _unlink_block(name: str) -> bool:
    """Destroy the named block if it still exists; ``True`` when reclaimed."""
    try:
        block = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    try:
        block.unlink()
    except (FileNotFoundError, OSError):
        return False
    finally:
        try:
            block.close()
        except OSError:
            pass
    return True


def release_all() -> int:
    """Unlink every block this process still has registered (signal teardown).

    The backstop for SIGINT/SIGTERM: the publishing code paths unlink their
    blocks in ``finally`` clauses, but an interrupt that lands between
    publish and cleanup leaves registrations behind — release them before
    the process exits.  Returns the number of blocks reclaimed.
    """
    _ensure_owner()
    reclaimed = 0
    for name in list(_REGISTERED):
        if _unlink_block(name):
            reclaimed += 1
        _REGISTERED.pop(name, None)
    _write_manifest()
    return reclaimed


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one :func:`sweep` pass."""

    manifests_removed: int
    blocks_reclaimed: int


def sweep(older_than_seconds: float | None = None, *, now: float | None = None) -> SweepResult:
    """Reclaim shm blocks left behind by dead runs.

    A manifest is swept when its owning pid is no longer alive, or — with
    *older_than_seconds* — when it is older than the cutoff regardless of
    pid liveness (pids recycle; an aged manifest from a long-gone run may
    collide with an unrelated live process).  This process's own manifest
    is never swept.  Entirely best-effort: unreadable manifests and blocks
    that already vanished are skipped without error.
    """
    directory = manifest_dir()
    if not directory.is_dir():
        return SweepResult(manifests_removed=0, blocks_reclaimed=0)
    now = now if now is not None else time.time()
    own = _MANIFEST_PATH
    manifests_removed = 0
    blocks_reclaimed = 0
    for path in sorted(directory.glob("run-*.json")):
        if own is not None and path == own:
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(record, dict) or record.get("format") != MANIFEST_FORMAT:
            continue
        try:
            pid = int(record.get("pid", -1))
            created = float(record.get("created", 0.0))
        except (TypeError, ValueError):
            continue
        aged = older_than_seconds is not None and now - created > older_than_seconds
        if _pid_alive(pid) and not aged:
            continue
        blocks = record.get("blocks")
        if isinstance(blocks, list):
            for name in blocks:
                if isinstance(name, str) and _unlink_block(name):
                    blocks_reclaimed += 1
        try:
            path.unlink()
        except OSError:
            continue
        manifests_removed += 1
    return SweepResult(
        manifests_removed=manifests_removed, blocks_reclaimed=blocks_reclaimed
    )
