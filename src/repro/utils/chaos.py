"""Deterministic fault-injection plane (``REPRO_CHAOS``) for the execution stack.

The experiment engine grew up with a single ad-hoc hook —
``REPRO_ENGINE_FAIL``, comma-separated ``algorithm:graph_name`` fnmatch
patterns whose matching cells raise.  That covers exactly one failure mode
(a polite exception); the hardened execution layer needs to rehearse the
impolite ones too: a cell that *hangs* (driving the watchdog deadlines), a
worker that dies with ``kill -9`` (driving crash-safe pool supervision), a
cache entry whose bytes rot on disk (driving checksum quarantine), and a
cell that is merely slow (driving latency/overhead measurements).  This
module is the shared fault plane all of those rehearsals go through:

``REPRO_CHAOS`` holds comma-separated rules of the form
``action[@arg[@attempts]]:pattern`` where *pattern* is fnmatch-matched
against the cell id (``algorithm:graph_name``, the same ids
``REPRO_ENGINE_FAIL`` uses):

* ``raise[@attempts]:pattern`` — raise ``RuntimeError`` inside the cell;
* ``hang[@seconds[@attempts]]:pattern`` — block for *seconds* (default
  3600: "forever" at experiment scale), exercising deadline enforcement;
* ``kill9[@attempts]:pattern`` — ``SIGKILL`` the executing process when it
  is a supervised pool worker (exercising crash detection + respawn); in
  the parent process it degrades to ``raise`` so an injected crash can
  never take down the run it is testing;
* ``slow[@seconds[@attempts]]:pattern`` — sleep *seconds* (default 0.05)
  and continue normally;
* ``corrupt-cache[@attempts]:pattern`` — after the cell's result is
  written to the result cache, garble the entry's bytes on disk
  (exercising checksum verification + quarantine-as-miss);
* ``oom[@bytes[@attempts]]:pattern`` — allocate roughly *bytes* (default
  128 MiB) and raise :class:`MemoryError`, exercising the ``oom`` failure
  label and the resource governor's memory budgets (under an armed
  ``RLIMIT_AS`` cap the allocation itself fails early — same outcome);
* ``enospc[@attempts]:pattern`` — raise ``OSError(ENOSPC)`` at the cache/
  journal *write* site for the matching cell (exercising disk-full
  degradation to memory-only cache / best-effort journal).

*attempts* bounds how many execution attempts of a cell the rule fires on
(default 1: the fault is transient and a retry succeeds — the shape the
chaos test matrix needs to assert byte-identical recovery).  ``@*`` or
``@0`` makes the rule permanent.  Execution attempts are numbered from 1
and threaded through the engine explicitly, so the semantics are identical
in-process and across pool workers (which keep no shared counters).

Injected hangs block on an :class:`threading.Event` rather than a plain
``sleep`` so an executor that abandons a timed-out thread can release it
(:func:`release_hangs`) instead of leaking a thread that would stall
interpreter shutdown.

``REPRO_ENGINE_FAIL`` keeps working unchanged (patterns are treated as
permanent ``raise`` rules with the historical error message).
"""

from __future__ import annotations

import fnmatch
import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.utils.exceptions import ValidationError

__all__ = [
    "CHAOS_ENV",
    "FAIL_CELLS_ENV",
    "ChaosRule",
    "active",
    "chaos_rules",
    "inject",
    "in_worker",
    "mark_worker",
    "release_hangs",
    "reset_hangs",
    "should_corrupt",
    "should_enospc",
]

#: The chaos rule environment variable.
CHAOS_ENV = "REPRO_CHAOS"

#: The legacy raise-only hook, kept working as permanent ``raise`` rules.
FAIL_CELLS_ENV = "REPRO_ENGINE_FAIL"

#: Recognised rule actions.
ACTIONS = ("raise", "hang", "kill9", "slow", "corrupt-cache", "oom", "enospc")

#: Default durations (seconds) for the timed actions.
DEFAULT_HANG_SECONDS = 3600.0
DEFAULT_SLOW_SECONDS = 0.05

#: Default allocation target (bytes) for the ``oom`` action — big enough to
#: blow any realistic worker budget, small enough to be instant to allocate.
DEFAULT_OOM_BYTES = 128 * 1024 * 1024

#: Allocation stride for the ``oom`` action (bytes).
_OOM_CHUNK_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ChaosRule:
    """One parsed ``REPRO_CHAOS`` rule."""

    action: str
    pattern: str
    seconds: float
    #: Fires while ``attempt <= attempts``; ``0`` means every attempt.
    attempts: int

    def fires(self, cell_id: str, attempt: int) -> bool:
        if self.attempts and attempt > self.attempts:
            return False
        return fnmatch.fnmatchcase(cell_id, self.pattern)


#: Whether this process is a supervised pool worker (set by the pool's
#: worker main).  Gates ``kill9``: only a process whose death the parent
#: supervises may actually be killed.
_IN_WORKER = False

#: Release valve for injected hangs: executors that abandon a timed-out
#: thread set this event so the thread unblocks instead of leaking.
_HANG_RELEASE = threading.Event()

#: Parse memo keyed by the raw env strings (rules are reparsed when the
#: environment changes, so tests can monkeypatch freely).
_PARSE_MEMO: dict[tuple[str, str], tuple[ChaosRule, ...]] = {}


def mark_worker() -> None:
    """Record that this process is a supervised pool worker (kill9 gate)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """Whether this process is a supervised pool worker."""
    return _IN_WORKER


def release_hangs() -> None:
    """Unblock every thread currently stuck in an injected hang."""
    _HANG_RELEASE.set()


def reset_hangs() -> None:
    """Re-arm the hang release valve (tests re-using one process)."""
    _HANG_RELEASE.clear()


def _parse_attempts(raw: str, rule: str) -> int:
    if raw in ("*", "0"):
        return 0
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(
            f"{CHAOS_ENV}: invalid attempt count {raw!r} in rule {rule!r}"
        ) from None
    if value < 1:
        raise ValidationError(
            f"{CHAOS_ENV}: attempt count must be >= 1 (or 0/'*' for always), "
            f"got {value} in rule {rule!r}"
        )
    return value


def _parse_seconds(raw: str, rule: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ValidationError(
            f"{CHAOS_ENV}: invalid duration {raw!r} in rule {rule!r}"
        ) from None
    if value < 0:
        raise ValidationError(
            f"{CHAOS_ENV}: duration must be >= 0, got {value} in rule {rule!r}"
        )
    return value


def _parse_rule(raw: str) -> ChaosRule:
    head, sep, pattern = raw.partition(":")
    if not sep or not pattern:
        raise ValidationError(
            f"{CHAOS_ENV}: rule {raw!r} is not of the form "
            "'action[@arg[@attempts]]:pattern'"
        )
    parts = head.split("@")
    action = parts[0].strip()
    if action not in ACTIONS:
        raise ValidationError(
            f"{CHAOS_ENV}: unknown action {action!r} in rule {raw!r}; "
            f"choose from {ACTIONS}"
        )
    # ``oom`` reuses the numeric-argument slot for its byte count.
    timed = action in ("hang", "slow", "oom")
    if action == "hang":
        seconds = DEFAULT_HANG_SECONDS
    elif action == "oom":
        seconds = float(DEFAULT_OOM_BYTES)
    else:
        seconds = DEFAULT_SLOW_SECONDS
    attempts = 1
    args = [p.strip() for p in parts[1:]]
    if timed:
        if len(args) > 2:
            raise ValidationError(f"{CHAOS_ENV}: too many arguments in rule {raw!r}")
        if len(args) >= 1 and args[0]:
            seconds = _parse_seconds(args[0], raw)
        if len(args) == 2:
            attempts = _parse_attempts(args[1], raw)
    else:
        if len(args) > 1:
            raise ValidationError(f"{CHAOS_ENV}: too many arguments in rule {raw!r}")
        if len(args) == 1 and args[0]:
            attempts = _parse_attempts(args[0], raw)
    return ChaosRule(action=action, pattern=pattern, seconds=seconds, attempts=attempts)


def chaos_rules() -> tuple[ChaosRule, ...]:
    """The active rule set: ``REPRO_CHAOS`` rules plus legacy fail patterns."""
    raw_chaos = os.environ.get(CHAOS_ENV, "").strip()
    raw_legacy = os.environ.get(FAIL_CELLS_ENV, "").strip()
    memo_key = (raw_chaos, raw_legacy)
    cached = _PARSE_MEMO.get(memo_key)
    if cached is not None:
        return cached
    rules = [
        _parse_rule(piece.strip())
        for piece in raw_chaos.split(",")
        if piece.strip()
    ]
    for pattern in raw_legacy.split(","):
        pattern = pattern.strip()
        if pattern:
            # Legacy patterns raise on every attempt — the pre-chaos contract.
            rules.append(
                ChaosRule(action="raise", pattern=pattern, seconds=0.0, attempts=0)
            )
    result = tuple(rules)
    _PARSE_MEMO.clear()  # the env rarely flips; keep the memo tiny
    _PARSE_MEMO[memo_key] = result
    return result


def active() -> bool:
    """Whether any fault rule is configured (cheap guard for hot paths)."""
    return bool(
        os.environ.get(CHAOS_ENV, "").strip()
        or os.environ.get(FAIL_CELLS_ENV, "").strip()
    )


def inject(cell_id: str, attempt: int = 1) -> None:
    """Apply the execution-time fault rules matching *cell_id* at *attempt*.

    Called from wherever a cell actually executes — the engine's in-process
    paths, pool workers, the packed runtime's per-graph setup — so the
    fault happens in the same process/thread the real work would.  ``slow``
    rules apply first (they modify timing but not outcome), then ``hang``,
    then ``raise``/``kill9`` (which end the attempt).
    """
    if not active():
        return
    matched = [r for r in chaos_rules() if r.fires(cell_id, attempt)]
    if not matched:
        return
    for rule in matched:
        if rule.action == "slow":
            time.sleep(rule.seconds)
    for rule in matched:
        if rule.action == "hang":
            _HANG_RELEASE.wait(rule.seconds)
    for rule in matched:
        if rule.action == "kill9":
            if in_worker() and hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            # Outside a supervised worker a real SIGKILL would take down the
            # whole run (or the test harness); degrade to a transient raise,
            # which still exercises the retry path.
            raise RuntimeError(
                f"injected kill9 for cell {cell_id!r} "
                f"(degraded to raise outside a supervised worker)"
            )
    for rule in matched:
        if rule.action == "oom":
            _exhaust_memory(int(rule.seconds), cell_id)
    for rule in matched:
        if rule.action == "raise":
            raise RuntimeError(f"injected failure for cell {cell_id!r} ({FAIL_CELLS_ENV})")


def _exhaust_memory(target_bytes: int, cell_id: str) -> None:
    """Allocate ~*target_bytes* then raise :class:`MemoryError`.

    Under an armed ``RLIMIT_AS`` cap the allocation loop itself raises
    :class:`MemoryError` once the cap is hit — the natural failure the
    budget machinery must label ``oom``.  Without a cap the loop completes
    and raises explicitly, so the injection is deterministic either way.
    The chunks are dropped in a ``finally`` so the memory is returned the
    moment the error propagates.
    """
    chunks: list[bytearray] = []
    try:
        allocated = 0
        while allocated < target_bytes:
            chunks.append(bytearray(_OOM_CHUNK_BYTES))
            allocated += _OOM_CHUNK_BYTES
        raise MemoryError(f"injected oom for cell {cell_id!r} ({CHAOS_ENV})")
    finally:
        chunks.clear()


def should_corrupt(cell_id: str, attempt: int = 1) -> bool:
    """Whether a ``corrupt-cache`` rule fires for this cell's cache write."""
    if not active():
        return False
    return any(
        r.action == "corrupt-cache" and r.fires(cell_id, attempt)
        for r in chaos_rules()
    )


def should_enospc(cell_id: str, attempt: int = 1) -> bool:
    """Whether an ``enospc`` rule fires for this cell's disk write.

    Consulted by the cache/journal writers *before* touching the disk; the
    caller raises ``OSError(errno.ENOSPC, ...)`` itself so the error comes
    from the exact code path a genuinely full disk would fail on.
    """
    if not active():
        return False
    return any(
        r.action == "enospc" and r.fires(cell_id, attempt) for r in chaos_rules()
    )
