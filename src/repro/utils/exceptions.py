"""Exception hierarchy used across the library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch library errors with a single ``except`` clause while still being able to
distinguish graph-structure problems (:class:`GraphError`,
:class:`CycleError`) from layering problems (:class:`LayeringError`) and from
input-validation problems (:class:`ValidationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by :mod:`repro`."""


class GraphError(ReproError):
    """A problem with the structure of a graph (unknown vertex, duplicate edge, ...)."""


class CycleError(GraphError):
    """An operation that requires acyclicity was attempted on a cyclic digraph.

    The offending cycle, when known, is attached as :attr:`cycle` — a list of
    vertices ``[v0, v1, ..., vk]`` such that each consecutive pair is an edge
    and ``(vk, v0)`` closes the cycle.
    """

    def __init__(self, message: str, cycle: list | None = None) -> None:
        super().__init__(message)
        self.cycle: list | None = cycle


class LayeringError(ReproError):
    """An invalid layering was produced or supplied (edge pointing upwards, gap, ...)."""


class ValidationError(ReproError):
    """A user-supplied parameter is outside its documented domain."""
