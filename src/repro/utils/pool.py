"""Reusable process/thread/serial pool plumbing with per-worker shared state.

This generalises the worker-initializer pattern introduced for the
multi-colony ACO driver (:mod:`repro.aco.parallel`): a payload describing the
shared, read-only inputs of a run is shipped to every worker exactly once (as
pool-initializer arguments) and decoded into per-worker state; the individual
task submissions then carry only small per-task arguments.  For process pools
this avoids paying O(tasks x payload) serialisation cost; for thread pools
and the serial executor the state can be used directly without any
serialisation at all (``shared_state``).

Determinism: tasks are submitted in order and results are collected in
submission order, so the returned list is independent of the executor kind
and the worker count.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.utils.exceptions import ValidationError

__all__ = [
    "EXECUTORS",
    "REPRO_JOBS_ENV",
    "effective_workers",
    "imap_with_state",
    "map_with_state",
]

#: The supported execution back ends.
EXECUTORS = ("process", "thread", "serial")

#: Environment variable capping the default worker count of every pool in the
#: library (useful on oversubscribed CI boxes where ``os.cpu_count()`` lies
#: about the cores actually available to the job).
REPRO_JOBS_ENV = "REPRO_JOBS"


def effective_workers(requested: int | None = None, n_tasks: int | None = None) -> int:
    """Resolve the worker count for a pool.

    An explicit *requested* value always wins.  When it is ``None`` the
    ``REPRO_JOBS`` environment variable is consulted before falling back to
    ``os.cpu_count()``, so CI boxes (and users) can cap every pool in the
    library — the multi-colony driver, the experiment engine, the colony
    runtime — with one setting instead of each call site reading the raw CPU
    count.  The result is additionally clamped to *n_tasks* (no point
    spawning more workers than tasks) and floored at 1.

    Invalid inputs raise: an explicit *requested* below 1, and a
    ``REPRO_JOBS`` value that is non-integer or below 1, are configuration
    errors, not something to silently coerce.
    """
    if requested is not None and requested < 1:
        raise ValidationError(f"worker count must be >= 1, got {requested}")
    if requested is None:
        env = os.environ.get(REPRO_JOBS_ENV, "").strip()
        if env:
            try:
                requested = int(env)
            except ValueError:
                raise ValidationError(
                    f"{REPRO_JOBS_ENV} must be an integer, got {env!r}"
                ) from None
            if requested < 1:
                raise ValidationError(
                    f"{REPRO_JOBS_ENV} must be >= 1, got {requested}"
                )
    if requested is None:
        requested = os.cpu_count() or 1
    if n_tasks is not None:
        requested = min(requested, n_tasks)
    return max(1, requested)

#: Monotonically increasing tokens distinguishing concurrent runs.
_RUN_TOKENS = itertools.count()

#: Per-worker state installed by the pool initializer.  Keyed by a per-run
#: token: thread-pool workers share this module with the caller (and with any
#: concurrent runs), process-pool workers get their own copy that dies with
#: the pool.
_WORKER_STATE: dict[int, Any] = {}

#: Sentinel distinguishing "no shared state given" from ``None`` state.
_UNSET = object()


def _init_worker(token: int, init_fn: Callable[[Any], Any], payload: Any) -> None:
    """Pool initializer: decode the shared payload once for this worker."""
    if token not in _WORKER_STATE:
        _WORKER_STATE[token] = init_fn(payload)


def _run_task(token: int, task_fn: Callable[..., Any], args: Sequence[Any]) -> Any:
    """Worker entry point using the state installed by :func:`_init_worker`."""
    return task_fn(_WORKER_STATE[token], *args)


def imap_with_state(
    task_fn: Callable[..., Any],
    tasks: Iterable[Sequence[Any]],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    init_fn: Callable[[Any], Any] | None = None,
    payload: Any = None,
    shared_state: Any = _UNSET,
) -> Iterator[Any]:
    """Streaming :func:`map_with_state`: yield results in submission order.

    Same contract and parameters as :func:`map_with_state`, but results are
    yielded one at a time as they become available (the *i*-th yield is the
    result of the *i*-th task, so consumers can aggregate incrementally
    without the full result list ever being materialised).  The serial back
    end executes each task lazily when its result is requested; the pool
    back ends submit everything up front and the pool is shut down when the
    generator is exhausted or closed early.
    """
    if executor not in EXECUTORS:
        raise ValidationError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    task_list = [tuple(t) for t in tasks]

    if executor == "serial" or len(task_list) <= 1:
        if shared_state is not _UNSET:
            state = shared_state
        else:
            if init_fn is None:
                raise ValidationError("map_with_state needs init_fn or shared_state")
            state = init_fn(payload)
        for t in task_list:
            yield task_fn(state, *t)
        return

    token = next(_RUN_TOKENS)
    use_shared = executor == "thread" and shared_state is not _UNSET
    if not use_shared and init_fn is None:
        raise ValidationError("map_with_state needs init_fn for pool executors")
    pool_cls = (
        concurrent.futures.ProcessPoolExecutor
        if executor == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    pool_kwargs: dict[str, Any] = {
        "max_workers": effective_workers(max_workers, len(task_list))
    }
    if use_shared:
        _WORKER_STATE[token] = shared_state
    else:
        pool_kwargs["initializer"] = _init_worker
        pool_kwargs["initargs"] = (token, init_fn, payload)
    pool = pool_cls(**pool_kwargs)
    try:
        futures = [pool.submit(_run_task, token, task_fn, t) for t in task_list]
        for f in futures:
            yield f.result()
    finally:
        # Abandoned mid-stream (interruption, strict-mode abort): drop the
        # queued work instead of finishing it behind the caller's back.
        pool.shutdown(wait=True, cancel_futures=True)
        _WORKER_STATE.pop(token, None)  # thread workers share this module


def map_with_state(
    task_fn: Callable[..., Any],
    tasks: Iterable[Sequence[Any]],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    init_fn: Callable[[Any], Any] | None = None,
    payload: Any = None,
    shared_state: Any = _UNSET,
) -> list[Any]:
    """Run ``task_fn(state, *task)`` for every task and return results in task order.

    Parameters
    ----------
    task_fn:
        Module-level callable (so it can cross a process boundary) receiving
        the per-worker state followed by the task's own arguments.
    tasks:
        Argument tuples, one per task.
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    max_workers:
        Worker cap for the pool back ends; ``None`` resolves through
        :func:`effective_workers` (``REPRO_JOBS`` env override, then the CPU
        count, clamped to the task count).
    init_fn / payload:
        Build the per-worker state as ``init_fn(payload)``.  Both must be
        picklable for the process back end.  Required for ``"process"``;
        optional for the in-process back ends when *shared_state* is given.
    shared_state:
        Ready-made state for the in-process back ends (``"serial"`` and
        ``"thread"``), short-circuiting the payload round trip.  Ignored by
        the process back end, which always decodes *payload* worker-side.
    """
    return list(
        imap_with_state(
            task_fn,
            tasks,
            executor=executor,
            max_workers=max_workers,
            init_fn=init_fn,
            payload=payload,
            shared_state=shared_state,
        )
    )
