"""Reusable process/thread/serial pool plumbing with per-worker shared state,
crash-safe supervision and per-task deadlines.

This generalises the worker-initializer pattern introduced for the
multi-colony ACO driver (:mod:`repro.aco.parallel`): a payload describing the
shared, read-only inputs of a run is shipped to every worker exactly once and
decoded into per-worker state; the individual task submissions then carry
only small per-task arguments.  For process pools this avoids paying
O(tasks x payload) serialisation cost; for thread pools and the serial
executor the state can be used directly without any serialisation at all
(``shared_state``).

Determinism: tasks are submitted in order and results are collected in
submission order, so the returned list is independent of the executor kind
and the worker count.

Hardening (the robustness layer the experiment engine sits on):

* **Supervised process workers.**  The process back end no longer uses
  ``concurrent.futures.ProcessPoolExecutor`` — whose reaction to a worker
  dying (OOM kill, segfault, ``kill -9``) is to poison the whole pool with
  ``BrokenProcessPool`` — but a small supervised pool: each worker is a
  ``multiprocessing.Process`` with its own duplex pipe, and the parent
  multiplexes result pipes *and* process sentinels through
  :func:`multiprocessing.connection.wait`.  A worker that dies takes down
  only its in-flight task (reported as a :class:`TaskFailure` of kind
  ``"crash"`` or raised as :class:`WorkerCrashed`, per *failure_mode*); a
  replacement worker is spawned with the same initializer payload and the
  run continues.
* **Per-task deadlines.**  ``task_timeout=`` bounds every task's execution:
  a process worker that exceeds it is killed (``SIGKILL``) and replaced and
  the task reports a ``"timeout"`` :class:`TaskFailure`; the serial back
  end runs each task on a watchdog-monitored daemon thread; the thread back
  end bounds the wait for each task's result (the stuck thread itself
  cannot be reclaimed — that is a CPython limitation — but the run moves
  on, and injected chaos hangs are released so they cannot stall
  interpreter shutdown).
* **failure_mode.**  ``"raise"`` (default, the historical contract):
  crashes and timeouts raise :class:`WorkerCrashed` /
  :class:`TaskDeadlineExceeded` in the consumer.  ``"result"``: they are
  yielded in-stream as :class:`TaskFailure` values, so a streaming consumer
  (the experiment engine) can record the failure against the right task and
  keep going.
"""

from __future__ import annotations

import asyncio.events
import atexit
import concurrent.futures
import itertools
import multiprocessing
import os
import queue
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.utils import chaos, resources
from repro.utils.exceptions import ReproError, ValidationError

__all__ = [
    "EXECUTORS",
    "REPRO_JOBS_ENV",
    "TaskFailure",
    "TaskDeadlineExceeded",
    "WorkerCrashed",
    "effective_workers",
    "imap_with_state",
    "map_with_state",
    "run_with_deadline",
]

#: The supported execution back ends.
EXECUTORS = ("process", "thread", "serial")

#: Environment variable capping the default worker count of every pool in the
#: library (useful on oversubscribed CI boxes where ``os.cpu_count()`` lies
#: about the cores actually available to the job).
REPRO_JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class TaskFailure:
    """A task that produced no result: its worker crashed or its deadline passed.

    Yielded in place of the task's result under ``failure_mode="result"``;
    ``kind`` is ``"crash"`` (worker process died), ``"timeout"`` (the
    per-task deadline passed) or ``"oom"`` (the worker died by signal while
    an ``RLIMIT_AS`` memory budget was armed — the cap is the only thing in
    the worker configured to kill it that way).
    """

    kind: str
    message: str


class WorkerCrashed(ReproError):
    """A pool worker died while running a task (``failure_mode="raise"``)."""


class TaskDeadlineExceeded(ReproError):
    """A task exceeded the per-task deadline (``failure_mode="raise"``)."""


class _RemoteTraceback(Exception):
    """Carries a worker-side traceback as the ``__cause__`` of a re-raised error."""

    def __init__(self, tb: str) -> None:
        super().__init__(f"\n--- worker-side traceback ---\n{tb}")


def effective_workers(
    requested: int | None = None,
    n_tasks: int | None = None,
    *,
    env_var: str = REPRO_JOBS_ENV,
) -> int:
    """Resolve the worker count for a pool.

    An explicit *requested* value always wins.  When it is ``None`` the
    *env_var* environment variable (``REPRO_JOBS`` by default) is consulted
    before falling back to ``os.cpu_count()``, so CI boxes (and users) can
    cap every pool in the library — the multi-colony driver, the experiment
    engine, the colony runtime — with one setting instead of each call site
    reading the raw CPU count.  The native kernel's thread resolution
    (:func:`repro.aco._native.effective_threads`) reuses the same ladder
    with ``env_var="REPRO_ACO_THREADS"``.  The result is additionally
    clamped to *n_tasks* (no point spawning more workers than tasks) and
    floored at 1.

    Invalid inputs raise: an explicit *requested* below 1, and an *env_var*
    value that is non-integer or below 1, are configuration errors, not
    something to silently coerce.
    """
    if requested is not None and requested < 1:
        raise ValidationError(f"worker count must be >= 1, got {requested}")
    if requested is None:
        env = os.environ.get(env_var, "").strip()
        if env:
            try:
                requested = int(env)
            except ValueError:
                raise ValidationError(
                    f"{env_var} must be an integer, got {env!r}"
                ) from None
            if requested < 1:
                raise ValidationError(
                    f"{env_var} must be >= 1, got {requested}"
                )
    if requested is None:
        requested = os.cpu_count() or 1
    if n_tasks is not None:
        requested = min(requested, n_tasks)
    return max(1, requested)


class _DeadlineWatchdog:
    """A reusable daemon thread serving one :func:`run_with_deadline` at a time.

    Spawning a fresh thread per call costs ~50 µs, which at full-corpus
    scale (thousands of deadline-bounded cells) adds whole percents to the
    run; a pooled watchdog brings the per-call cost down to a queue
    round-trip.  A watchdog whose deadline expired is simply *not* returned
    to the idle pool by the caller — the stuck thread re-idles itself only
    if and when the abandoned call finally finishes, so reuse never hands a
    new task to a busy thread.
    """

    __slots__ = ("inbox", "thread")

    def __init__(self) -> None:
        self.inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.thread = threading.Thread(
            target=self._loop, daemon=True, name="repro-deadline"
        )
        self.thread.start()

    def _loop(self) -> None:
        while True:
            fn, box, done = self.inbox.get()
            try:
                box["value"] = fn()
            except BaseException as exc:  # re-raised in the caller
                box["error"] = exc
            finally:
                done.set()
                with _WATCHDOG_LOCK:
                    _IDLE_WATCHDOGS.append(self)


#: Idle reusable watchdog threads (valid only for ``_WATCHDOG_PID``).
_IDLE_WATCHDOGS: list[_DeadlineWatchdog] = []
_WATCHDOG_LOCK = threading.Lock()
_WATCHDOG_PID: int | None = None


class _DeadlineAlarm(BaseException):
    """Raised by the ``SIGALRM`` handler when an armed deadline fires.

    A ``BaseException`` so task code catching broad ``Exception`` cannot
    swallow its own deadline.
    """


#: Monotonic instant the armed alarm deadline expires; ``None`` when no
#: alarm deadline is armed (also the nesting guard: an inner deadline falls
#: back to the watchdog thread).
_ALARM_DEADLINE: float | None = None

#: Current repeating ``ITIMER_REAL`` tick in seconds (0 = not ticking) and
#: how many consecutive ticks found no armed deadline.
_ALARM_TICK = 0.0
_ALARM_IDLE_TICKS = 0

#: Pid that installed the SIGALRM handler (itimers do not survive fork).
_ALARM_PID: int | None = None

#: Stop the idle tick after this many handler runs with nothing armed.
_ALARM_IDLE_LIMIT = 8


def _on_alarm(signum: int, frame: object) -> None:
    global _ALARM_DEADLINE, _ALARM_TICK, _ALARM_IDLE_TICKS
    if _ALARM_DEADLINE is not None:
        _ALARM_IDLE_TICKS = 0
        if time.monotonic() >= _ALARM_DEADLINE:
            _ALARM_DEADLINE = None
            raise _DeadlineAlarm()
    else:
        # Between deadline-bounded calls the timer keeps ticking so the next
        # call arms for free; after a quiet spell it switches itself off.
        _ALARM_IDLE_TICKS += 1
        if _ALARM_IDLE_TICKS >= _ALARM_IDLE_LIMIT:
            _ALARM_TICK = 0.0
            signal.setitimer(signal.ITIMER_REAL, 0.0)


def _disarm_alarm() -> None:
    global _ALARM_TICK
    _ALARM_TICK = 0.0
    try:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
    except (OSError, ValueError):  # pragma: no cover - shutdown edge
        pass


def _run_with_alarm(fn: Callable[[], Any], timeout: float) -> tuple[bool, Any]:
    """Deadline via a repeating ``SIGALRM`` tick: the work runs *inline*.

    Arming a call is a Python variable write — the interval timer is
    started once and shared across calls (it disarms itself after a quiet
    spell), so at full-corpus scale the per-cell cost is nanoseconds where
    a per-call watchdog thread pays two context switches (~50 µs).  The
    trade-offs: expiry lands within one tick *after* the deadline (the
    tick is ``timeout/8``, clamped to [1 ms, 250 ms]), and the interrupt
    fires between Python bytecodes, so a hang inside a non-returning C
    call is not cut — callers needing that guarantee get the watchdog
    fallback, and the supervised process pool kills such workers outright.
    """
    global _ALARM_DEADLINE, _ALARM_TICK, _ALARM_IDLE_TICKS, _ALARM_PID
    if _ALARM_PID != os.getpid():
        # First use in this process (or first after fork, which clears both
        # the inherited handler's relevance and the itimer).
        signal.signal(signal.SIGALRM, _on_alarm)
        # A tick landing during interpreter shutdown — after Python signal
        # dispatch is torn down — would kill the process with SIGALRM's
        # default action ("Alarm clock"); stop the timer before that.
        atexit.register(_disarm_alarm)
        _ALARM_PID = os.getpid()
        _ALARM_TICK = 0.0
    tick = min(max(timeout / 8.0, 0.001), 0.25)
    if _ALARM_TICK == 0.0 or tick < _ALARM_TICK * 0.75:
        # Not ticking yet, or the current tick is too coarse to enforce
        # this call's deadline promptly.
        _ALARM_TICK = tick
        signal.setitimer(signal.ITIMER_REAL, tick, tick)
    _ALARM_IDLE_TICKS = 0
    _ALARM_DEADLINE = time.monotonic() + timeout
    try:
        value = fn()
    except _DeadlineAlarm:
        return False, None
    finally:
        _ALARM_DEADLINE = None
    return True, value


def _event_loop_running() -> bool:
    """Whether an asyncio event loop is running in the *current* thread.

    The SIGALRM deadline path must never engage on such a thread: the
    handler raises :class:`_DeadlineAlarm` between arbitrary bytecodes, so
    with a running loop the interrupt could land inside the loop's own
    dispatch machinery (or a callback that is not the deadline-bounded
    work) and tear the server down instead of cutting one call.  A server
    normally drives blocking work from executor threads — which already
    take the watchdog branch — but a synchronous call made directly from a
    loop callback must fall back too.
    """
    return asyncio.events._get_running_loop() is not None


def run_with_deadline(fn: Callable[[], Any], timeout: float) -> tuple[bool, Any]:
    """Run ``fn()`` under a *timeout*-second deadline.

    Returns ``(True, result)`` when the call finishes in time and
    ``(False, None)`` when the deadline passes first; exceptions raised by
    ``fn`` propagate to the caller.  On a POSIX main thread the deadline is
    a shared interval timer and ``fn`` runs inline (near-zero cost,
    interrupts the work in place); everywhere else — non-main threads,
    nested deadlines, a thread running an asyncio event loop (the serving
    front end), Windows — ``fn`` runs on a pooled watchdog daemon thread
    that is abandoned when the deadline passes (it cannot block
    interpreter shutdown, and any result it eventually produces is
    discarded).
    """
    global _WATCHDOG_PID
    if (
        _ALARM_DEADLINE is None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
        and not _event_loop_running()
    ):
        return _run_with_alarm(fn, timeout)
    with _WATCHDOG_LOCK:
        # Threads do not survive fork: a child inheriting the parent's idle
        # list would enqueue onto watchdogs that no longer run.
        if _WATCHDOG_PID != os.getpid():
            _IDLE_WATCHDOGS.clear()
            _WATCHDOG_PID = os.getpid()
        watchdog = _IDLE_WATCHDOGS.pop() if _IDLE_WATCHDOGS else None
    if watchdog is None:
        watchdog = _DeadlineWatchdog()
    box: dict[str, Any] = {}
    done = threading.Event()
    watchdog.inbox.put((fn, box, done))
    if not done.wait(timeout):
        return False, None
    if "error" in box:
        raise box["error"]
    return True, box["value"]


#: Monotonically increasing tokens distinguishing concurrent runs.
_RUN_TOKENS = itertools.count()

#: Per-worker state installed by the pool initializer.  Keyed by a per-run
#: token: thread-pool workers share this module with the caller (and with any
#: concurrent runs).
_WORKER_STATE: dict[int, Any] = {}

#: Sentinel distinguishing "no shared state given" from ``None`` state.
_UNSET = object()


def _run_task(token: int, task_fn: Callable[..., Any], args: Sequence[Any]) -> Any:
    """Thread-pool worker entry point using the state installed for this run."""
    return task_fn(_WORKER_STATE[token], *args)


# --------------------------------------------------------------------------- #
# supervised process workers
# --------------------------------------------------------------------------- #


def _supervised_worker_main(
    conn: connection.Connection,
    init_fn: Callable[[Any], Any],
    payload: Any,
    memory_limit_bytes: int | None = None,
) -> None:
    """Worker loop: decode the payload once, then serve tasks until told to stop.

    Exceptions raised by a task are reported as data (the exception object
    plus its formatted traceback) so the worker survives to run the next
    task; only process death (crash, kill, deadline SIGKILL) ends the loop
    abnormally — which the parent detects through the process sentinel.

    With *memory_limit_bytes* set, an ``RLIMIT_AS`` soft cap is armed after
    start-up (see :func:`repro.utils.resources.apply_memory_limit`): a task
    exceeding its budget sees allocation fail as :class:`MemoryError` —
    reported as data like any exception — instead of growing until the OS
    OOM-kills an arbitrary process.
    """
    chaos.mark_worker()  # kill9 chaos rules may really kill this process
    if memory_limit_bytes is not None:
        resources.apply_memory_limit(memory_limit_bytes)
    state = init_fn(payload)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, task_fn, args = message
        try:
            outcome: tuple = ("ok", task_fn(state, *args))
        except BaseException as exc:
            outcome = ("exc", exc, traceback.format_exc())
        try:
            conn.send((index, outcome))
        except Exception:
            # Unpicklable result or exception: send pickles before writing,
            # so nothing partial went out — report the traceback instead.
            tb = (
                outcome[2]
                if outcome[0] == "exc"
                else f"result of task {index} could not be pickled"
            )
            conn.send((index, ("exc", None, tb)))
    conn.close()


class _SupervisedWorker:
    """One supervised worker process plus its parent-side bookkeeping."""

    __slots__ = ("conn", "process", "current", "deadline")

    def __init__(
        self,
        init_fn: Callable[[Any], Any],
        payload: Any,
        memory_limit_bytes: int | None = None,
    ) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        self.process = multiprocessing.Process(
            target=_supervised_worker_main,
            args=(child_conn, init_fn, payload, memory_limit_bytes),
            name="repro-pool-worker",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.current: int | None = None  # index of the in-flight task
        self.deadline: float | None = None

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass

    def reap(self, *, timeout: float = 5.0) -> None:
        try:
            self.process.join(timeout)
        except (OSError, ValueError, AssertionError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass


def _death_kind(exitcode: int | None, memory_limit_bytes: int | None) -> str:
    """Classify a worker death: ``"oom"`` under an armed memory budget.

    ``RLIMIT_AS`` normally surfaces as a polite :class:`MemoryError` (the
    worker reports it as data), but an allocation failure in a spot that
    cannot raise — stack growth, the allocator itself, a C extension that
    ``abort()``\\ s on ``NULL`` — kills the process with a signal.  With a
    budget armed that signal death is attributed to the budget; without one
    it stays a generic ``"crash"``.
    """
    if memory_limit_bytes is None or exitcode is None or exitcode >= 0:
        return "crash"
    fatal = {
        getattr(signal, name, None) for name in ("SIGKILL", "SIGSEGV", "SIGABRT", "SIGBUS")
    }
    return "oom" if -exitcode in {int(s) for s in fatal if s is not None} else "crash"


def _supervised_imap(
    task_fn: Callable[..., Any],
    task_list: Sequence[tuple],
    *,
    max_workers: int,
    init_fn: Callable[[Any], Any],
    payload: Any,
    task_timeout: float | None,
    memory_limit_bytes: int | None = None,
) -> Iterator[Any]:
    """Stream ``("ok", result) | ("exc", exc, tb) | ("fail", TaskFailure)``
    per task, in submission order, over supervised worker processes.

    Worker deaths feed the resource governor's ``respawn`` breaker: every
    crash/oom death counts a consecutive failure, every delivered result a
    success.  While the breaker is open (a crash *storm* — deaths with no
    successful deliveries in between) dead workers are not replaced;
    remaining tasks run in the parent serially instead of respawn-looping.
    """
    n_tasks = len(task_list)
    governor = resources.governor()
    workers = [
        _SupervisedWorker(init_fn, payload, memory_limit_bytes)
        for _ in range(min(max_workers, n_tasks))
    ]
    results: dict[int, tuple] = {}
    next_task = 0
    inline_state: Any = _UNSET

    def dispatch(worker: _SupervisedWorker) -> None:
        nonlocal next_task
        worker.current = None
        worker.deadline = None
        while next_task < n_tasks:
            index = next_task
            next_task += 1
            try:
                worker.conn.send((index, task_fn, task_list[index]))
            except (OSError, ValueError, BrokenPipeError):
                # The worker died between completions; its sentinel will
                # surface the crash, but this task was never delivered —
                # leave it for the replacement worker.
                next_task = index
                return
            worker.current = index
            if task_timeout is not None:
                worker.deadline = time.monotonic() + task_timeout
            return

    def fail_and_respawn(worker: _SupervisedWorker, failure: TaskFailure) -> None:
        index = workers.index(worker)
        if worker.current is not None:
            results[worker.current] = ("fail", failure)
        worker.kill()
        worker.reap(timeout=1.0)
        if failure.kind in ("crash", "oom"):
            # Deadline kills are parent policy, not a faulty backend; only
            # uncommanded deaths count against the respawn breaker.
            governor.record_failure("respawn", failure.message)
            if not governor.allow("respawn"):
                workers.pop(index)  # storm: fence off instead of respawning
                return
        replacement = _SupervisedWorker(init_fn, payload, memory_limit_bytes)
        workers[index] = replacement
        dispatch(replacement)

    def run_remaining_inline() -> None:
        """Respawn breaker open and no workers left: finish in the parent.

        Exactly the worker loop's semantics — results/exceptions reported
        as data, deadlines enforced via :func:`run_with_deadline` — so the
        consumer cannot tell the rungs apart except by wall-clock.  An
        injected ``kill9`` chaos rule degrades to a raise here (the parent
        is not a supervised worker), which is what lets a storm converge.
        """
        nonlocal next_task, inline_state
        if inline_state is _UNSET:
            inline_state = init_fn(payload)
        while next_task < n_tasks:
            index = next_task
            next_task += 1
            call = lambda i=index: task_fn(inline_state, *task_list[i])  # noqa: E731
            try:
                if task_timeout is None:
                    results[index] = ("ok", call())
                else:
                    completed, value = run_with_deadline(call, task_timeout)
                    if completed:
                        results[index] = ("ok", value)
                    else:
                        results[index] = (
                            "fail",
                            TaskFailure(
                                "timeout",
                                f"task {index} exceeded the {task_timeout:.6g}s "
                                "deadline (in-parent serial fallback)",
                            ),
                        )
            except Exception as exc:
                results[index] = ("exc", exc, traceback.format_exc())

    try:
        for worker in workers:
            dispatch(worker)
        yield_index = 0
        while yield_index < n_tasks:
            while yield_index in results:
                yield results.pop(yield_index)
                yield_index += 1
            if yield_index >= n_tasks:
                break
            if not workers:
                # Every worker was fenced off by the respawn breaker; all
                # missing results are undispatched tasks — run them here.
                run_remaining_inline()
                continue
            busy = [w for w in workers if w.current is not None]
            if not busy:
                # Nothing in flight but results are still missing: tasks
                # were lost without a crash record — a logic error worth
                # failing loudly over rather than spinning forever.
                raise WorkerCrashed(
                    f"supervised pool lost track of task {yield_index} "
                    f"({len(results)} buffered, {next_task}/{n_tasks} dispatched)"
                )
            timeout = None
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            sentinels = {w.process.sentinel: w for w in busy}
            conns = {w.conn: w for w in busy}
            ready = connection.wait(
                list(conns) + list(sentinels), timeout=timeout
            )
            handled: set[int] = set()
            for obj in ready:
                worker = conns.get(obj)
                crashed = False
                if worker is None:
                    worker = sentinels.get(obj)
                    if worker is None or id(worker) in handled:
                        continue
                    crashed = True
                if id(worker) in handled:
                    continue
                handled.add(id(worker))
                # Even on a sentinel event, drain any result the worker
                # managed to send before dying — that task did complete.
                delivered = False
                try:
                    if not crashed or worker.conn.poll():
                        index, outcome = worker.conn.recv()
                        results[index] = outcome
                        delivered = True
                        governor.record_success("respawn")
                except (EOFError, OSError):
                    crashed = True
                if delivered:
                    worker.current = None
                    worker.deadline = None
                    if crashed:
                        # Completed its task, then died (e.g. kill between
                        # send and the next recv): no task lost, replace it.
                        fail_and_respawn(
                            worker,
                            TaskFailure("crash", "worker died after completing its task"),
                        )
                    else:
                        dispatch(worker)
                elif crashed:
                    worker.process.join(0.2)  # let exitcode populate
                    exitcode = worker.process.exitcode
                    kind = _death_kind(exitcode, memory_limit_bytes)
                    detail = (
                        f"worker process died (exit code {exitcode}) "
                        f"while running task {worker.current}"
                    )
                    if kind == "oom":
                        detail += (
                            f"; killed under the armed {memory_limit_bytes}-byte "
                            "memory budget (RLIMIT_AS)"
                        )
                    fail_and_respawn(worker, TaskFailure(kind, detail))
            if task_timeout is not None:
                now = time.monotonic()
                for worker in list(workers):
                    if (
                        worker.current is not None
                        and worker.deadline is not None
                        and now >= worker.deadline
                    ):
                        fail_and_respawn(
                            worker,
                            TaskFailure(
                                "timeout",
                                f"task {worker.current} exceeded the "
                                f"{task_timeout:.6g}s deadline; worker killed",
                            ),
                        )
    finally:
        for worker in workers:
            worker.kill()
        for worker in workers:
            worker.reap()


def _deliver(outcome: tuple, failure_mode: str) -> Any:
    """Translate one supervised-pool outcome into the caller-facing value."""
    kind = outcome[0]
    if kind == "ok":
        return outcome[1]
    if kind == "exc":
        exc, tb = outcome[1], outcome[2]
        if isinstance(exc, BaseException):
            exc.__cause__ = _RemoteTraceback(tb)
            raise exc
        raise WorkerCrashed(f"task raised an unpicklable exception:\n{tb}")
    failure: TaskFailure = outcome[1]
    if failure_mode == "result":
        return failure
    if failure.kind == "timeout":
        raise TaskDeadlineExceeded(failure.message)
    raise WorkerCrashed(failure.message)


# --------------------------------------------------------------------------- #
# the public map/imap API
# --------------------------------------------------------------------------- #


def imap_with_state(
    task_fn: Callable[..., Any],
    tasks: Iterable[Sequence[Any]],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    init_fn: Callable[[Any], Any] | None = None,
    payload: Any = None,
    shared_state: Any = _UNSET,
    task_timeout: float | None = None,
    failure_mode: str = "raise",
    memory_limit_bytes: int | None = None,
) -> Iterator[Any]:
    """Streaming :func:`map_with_state`: yield results in submission order.

    Same contract and parameters as :func:`map_with_state`, but results are
    yielded one at a time as they become available (the *i*-th yield is the
    result of the *i*-th task, so consumers can aggregate incrementally
    without the full result list ever being materialised).  The serial back
    end executes each task lazily when its result is requested; the pool
    back ends submit work as workers free up and shut the pool down when the
    generator is exhausted or closed early.

    With ``task_timeout`` set, every task's execution is bounded (see the
    module docstring for how each back end enforces it); ``failure_mode``
    selects whether crashes/timeouts raise (``"raise"``, default) or are
    yielded in-stream as :class:`TaskFailure` values (``"result"``).

    ``memory_limit_bytes`` arms a per-worker ``RLIMIT_AS`` soft cap on the
    process back end (over-budget tasks fail as :class:`MemoryError` /
    ``"oom"`` instead of OOM-killing the box); the in-process back ends
    share the caller's address space and ignore it.
    """
    if executor not in EXECUTORS:
        raise ValidationError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    if failure_mode not in ("raise", "result"):
        raise ValidationError(
            f"failure_mode must be 'raise' or 'result', got {failure_mode!r}"
        )
    if task_timeout is not None and task_timeout <= 0:
        raise ValidationError(f"task_timeout must be > 0, got {task_timeout}")
    task_list = [tuple(t) for t in tasks]

    if executor == "serial" or len(task_list) <= 1:
        if shared_state is not _UNSET:
            state = shared_state
        else:
            if init_fn is None:
                raise ValidationError("map_with_state needs init_fn or shared_state")
            state = init_fn(payload)
        for t in task_list:
            if task_timeout is None:
                yield task_fn(state, *t)
                continue
            completed, value = run_with_deadline(
                lambda t=t: task_fn(state, *t), task_timeout
            )
            if completed:
                yield value
            else:
                failure = TaskFailure(
                    "timeout",
                    f"task exceeded the {task_timeout:.6g}s deadline "
                    "(watchdog thread abandoned)",
                )
                if failure_mode == "raise":
                    raise TaskDeadlineExceeded(failure.message)
                yield failure
        return

    if executor == "process":
        if init_fn is None:
            raise ValidationError("map_with_state needs init_fn for pool executors")
        stream = _supervised_imap(
            task_fn,
            task_list,
            max_workers=effective_workers(max_workers, len(task_list)),
            init_fn=init_fn,
            payload=payload,
            task_timeout=task_timeout,
            memory_limit_bytes=memory_limit_bytes,
        )
        try:
            for outcome in stream:
                yield _deliver(outcome, failure_mode)
        finally:
            stream.close()
        return

    # thread back end
    token = next(_RUN_TOKENS)
    use_shared = shared_state is not _UNSET
    if not use_shared and init_fn is None:
        raise ValidationError("map_with_state needs init_fn for pool executors")
    _WORKER_STATE[token] = shared_state if use_shared else init_fn(payload)
    pool = concurrent.futures.ThreadPoolExecutor(
        max_workers=effective_workers(max_workers, len(task_list))
    )
    timed_out = False
    try:
        futures = [pool.submit(_run_task, token, task_fn, t) for t in task_list]
        for index, future in enumerate(futures):
            try:
                yield (
                    future.result()
                    if task_timeout is None
                    else future.result(timeout=task_timeout)
                )
            except concurrent.futures.TimeoutError:
                timed_out = True
                future.cancel()  # not started yet -> never runs
                failure = TaskFailure(
                    "timeout",
                    f"task {index} exceeded the {task_timeout:.6g}s deadline "
                    "(worker thread cannot be reclaimed)",
                )
                if failure_mode == "raise":
                    raise TaskDeadlineExceeded(failure.message) from None
                yield failure
    finally:
        # Abandoned mid-stream (interruption, strict-mode abort): drop the
        # queued work instead of finishing it behind the caller's back.  A
        # pool with timed-out (stuck) threads cannot be waited on; release
        # any chaos-injected hangs so interpreter shutdown is not stalled.
        if timed_out:
            chaos.release_hangs()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
        _WORKER_STATE.pop(token, None)  # thread workers share this module


def map_with_state(
    task_fn: Callable[..., Any],
    tasks: Iterable[Sequence[Any]],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    init_fn: Callable[[Any], Any] | None = None,
    payload: Any = None,
    shared_state: Any = _UNSET,
    task_timeout: float | None = None,
    failure_mode: str = "raise",
    memory_limit_bytes: int | None = None,
) -> list[Any]:
    """Run ``task_fn(state, *task)`` for every task and return results in task order.

    Parameters
    ----------
    task_fn:
        Module-level callable (so it can cross a process boundary) receiving
        the per-worker state followed by the task's own arguments.
    tasks:
        Argument tuples, one per task.
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    max_workers:
        Worker cap for the pool back ends; ``None`` resolves through
        :func:`effective_workers` (``REPRO_JOBS`` env override, then the CPU
        count, clamped to the task count).
    init_fn / payload:
        Build the per-worker state as ``init_fn(payload)``.  Both must be
        picklable for the process back end.  Required for ``"process"``;
        optional for the in-process back ends when *shared_state* is given.
    shared_state:
        Ready-made state for the in-process back ends (``"serial"`` and
        ``"thread"``), short-circuiting the payload round trip.  Ignored by
        the process back end, which always decodes *payload* worker-side.
    task_timeout / failure_mode:
        Per-task deadline and crash/timeout reporting; see
        :func:`imap_with_state`.
    """
    return list(
        imap_with_state(
            task_fn,
            tasks,
            executor=executor,
            max_workers=max_workers,
            init_fn=init_fn,
            payload=payload,
            shared_state=shared_state,
            task_timeout=task_timeout,
            failure_mode=failure_mode,
            memory_limit_bytes=memory_limit_bytes,
        )
    )
