"""Reusable process/thread/serial pool plumbing with per-worker shared state.

This generalises the worker-initializer pattern introduced for the
multi-colony ACO driver (:mod:`repro.aco.parallel`): a payload describing the
shared, read-only inputs of a run is shipped to every worker exactly once (as
pool-initializer arguments) and decoded into per-worker state; the individual
task submissions then carry only small per-task arguments.  For process pools
this avoids paying O(tasks x payload) serialisation cost; for thread pools
and the serial executor the state can be used directly without any
serialisation at all (``shared_state``).

Determinism: tasks are submitted in order and results are collected in
submission order, so the returned list is independent of the executor kind
and the worker count.
"""

from __future__ import annotations

import concurrent.futures
import itertools
from typing import Any, Callable, Iterable, Sequence

from repro.utils.exceptions import ValidationError

__all__ = ["EXECUTORS", "map_with_state"]

#: The supported execution back ends.
EXECUTORS = ("process", "thread", "serial")

#: Monotonically increasing tokens distinguishing concurrent runs.
_RUN_TOKENS = itertools.count()

#: Per-worker state installed by the pool initializer.  Keyed by a per-run
#: token: thread-pool workers share this module with the caller (and with any
#: concurrent runs), process-pool workers get their own copy that dies with
#: the pool.
_WORKER_STATE: dict[int, Any] = {}

#: Sentinel distinguishing "no shared state given" from ``None`` state.
_UNSET = object()


def _init_worker(token: int, init_fn: Callable[[Any], Any], payload: Any) -> None:
    """Pool initializer: decode the shared payload once for this worker."""
    if token not in _WORKER_STATE:
        _WORKER_STATE[token] = init_fn(payload)


def _run_task(token: int, task_fn: Callable[..., Any], args: Sequence[Any]) -> Any:
    """Worker entry point using the state installed by :func:`_init_worker`."""
    return task_fn(_WORKER_STATE[token], *args)


def map_with_state(
    task_fn: Callable[..., Any],
    tasks: Iterable[Sequence[Any]],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
    init_fn: Callable[[Any], Any] | None = None,
    payload: Any = None,
    shared_state: Any = _UNSET,
) -> list[Any]:
    """Run ``task_fn(state, *task)`` for every task and return results in task order.

    Parameters
    ----------
    task_fn:
        Module-level callable (so it can cross a process boundary) receiving
        the per-worker state followed by the task's own arguments.
    tasks:
        Argument tuples, one per task.
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    max_workers:
        Worker cap for the pool back ends (default: pool default).
    init_fn / payload:
        Build the per-worker state as ``init_fn(payload)``.  Both must be
        picklable for the process back end.  Required for ``"process"``;
        optional for the in-process back ends when *shared_state* is given.
    shared_state:
        Ready-made state for the in-process back ends (``"serial"`` and
        ``"thread"``), short-circuiting the payload round trip.  Ignored by
        the process back end, which always decodes *payload* worker-side.
    """
    if executor not in EXECUTORS:
        raise ValidationError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    task_list = [tuple(t) for t in tasks]

    if executor == "serial" or len(task_list) <= 1:
        if shared_state is not _UNSET:
            state = shared_state
        else:
            if init_fn is None:
                raise ValidationError("map_with_state needs init_fn or shared_state")
            state = init_fn(payload)
        return [task_fn(state, *t) for t in task_list]

    token = next(_RUN_TOKENS)
    use_shared = executor == "thread" and shared_state is not _UNSET
    if not use_shared and init_fn is None:
        raise ValidationError("map_with_state needs init_fn for pool executors")
    pool_cls = (
        concurrent.futures.ProcessPoolExecutor
        if executor == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    pool_kwargs: dict[str, Any] = {"max_workers": max_workers}
    if use_shared:
        _WORKER_STATE[token] = shared_state
    else:
        pool_kwargs["initializer"] = _init_worker
        pool_kwargs["initargs"] = (token, init_fn, payload)
    try:
        with pool_cls(**pool_kwargs) as pool:
            futures = [pool.submit(_run_task, token, task_fn, t) for t in task_list]
            return [f.result() for f in futures]
    finally:
        _WORKER_STATE.pop(token, None)  # thread workers share this module
