"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (graph generators, the ant colony,
the experiment harness) accepts a ``seed`` argument that may be ``None``, an
integer, or an existing :class:`numpy.random.Generator`.  The helpers here
normalise those three cases and derive independent child generators for
parallel workers, so that a whole experiment is reproducible from a single
integer seed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "random_permutation"]


def as_generator(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged so that callers can thread a single
        generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | None | np.random.Generator, n: int
) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    independent of each other and of the parent, which is the recommended
    pattern for seeding parallel workers.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing integer seeds from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def random_permutation(
    items: Sequence | Iterable, rng: np.random.Generator
) -> list:
    """Return a new list containing *items* in a uniformly random order."""
    items = list(items)
    order = rng.permutation(len(items))
    return [items[i] for i in order]
