"""Resource governance: cost model, circuit breakers, and memory caps.

PR 6/8 hardened the *time* axis of the execution stack (deadlines, retries,
crash-supervised pools, graceful drain); this module hardens the *resource*
axis.  Three pillars share it:

* **Budgets & cost model** — :func:`estimate_pack_cost` prices a megabatch
  pack from cheap CSR statistics (bytes of transient working set plus a
  rough wall-clock estimate) so the batched planner can split packs that
  would blow a ``--memory-budget`` instead of OOMing, and the layout
  service can answer oversize requests with ``413`` + the estimate instead
  of accepting work it cannot hold.  :func:`apply_memory_limit` arms an
  ``RLIMIT_AS`` soft cap inside supervised pool workers so an over-budget
  cell dies as a *labelled* ``oom`` failure, not an opaque ``crash``.

* **Circuit breakers** — :class:`CircuitBreaker` counts *consecutive*
  failures per backend and opens after a threshold; :class:`ResourceGovernor`
  owns one breaker per rung of the degradation ladder (native kernel →
  NumPy, threaded walks → single thread, packed batched execution →
  per-cell serial, disk cache → memory-only, journal → best-effort, worker
  respawn → in-parent serial, shared-memory publish → in-process).  Every
  transition is logged to stderr exactly once per state change, recorded in
  :attr:`ResourceGovernor.events` for run summaries and ``/stats``, and
  half-open probed after a cooldown so a recovered backend is promoted
  back.  Every degraded rung is bit-identical to the fast path — the
  breakers only ever select between implementations the equivalence test
  matrices already pin together.

* **Disk-full safety** — the cache/journal writers consult the governor's
  ``cache-disk``/``journal-disk`` rungs so ``ENOSPC`` becomes a degradation
  event (memory-only cache, best-effort journal) instead of an unhandled
  ``OSError`` ending the run.

The governor is deliberately process-global (:func:`governor`): a poisoned
backend is a property of the process, not of one engine instance, and the
serving layer constructs a fresh engine per megabatch.  Tests reset it via
:meth:`ResourceGovernor.reset` (an autouse fixture does this).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CostEstimate",
    "LADDER",
    "ResourceGovernor",
    "apply_memory_limit",
    "estimate_pack_cost",
    "governor",
    "pack_cost_from_stats",
    "problem_stats",
]

#: Bytes per float64/int64 slot — everything the kernels allocate is 8-wide.
_WORD = 8

#: Fixed per-process allowance added on top of a worker memory budget when
#: arming ``RLIMIT_AS``: the interpreter + NumPy baseline is address space
#: the *budget* (which prices the transient working set) never counted.
DEFAULT_RLIMIT_SLACK_BYTES = 256 * 1024 * 1024

#: Rough per-unit wall-clock constant for the ACO walk kernels, calibrated
#: against the NumPy lockstep path on small graphs (a deliberate
#: overestimate for the C kernel).  One "unit" is one walk step over one
#: vertex-or-edge: ``n_tours × n_colonies × n_ants × (V + E)``.
_SECONDS_PER_UNIT = 2e-7


@dataclass(frozen=True)
class CostEstimate:
    """Priced resource footprint of running a pack of layering problems."""

    #: Peak transient working-set bytes of the packed runtime (pheromone
    #: stack, per-walk state, CSR arrays) — *not* including the interpreter
    #: or NumPy baseline.
    bytes: int
    #: Rough wall-clock seconds (order-of-magnitude; used for admission
    #: hints, never for deadlines).
    est_wall: float

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready form for error payloads and ``/stats``."""
        return {"bytes": self.bytes, "est_wall": round(self.est_wall, 6)}


def problem_stats(problem: object) -> tuple[int, int, int]:
    """``(n_vertices, n_edges, n_cols)`` from a graph-like or problem-like.

    Accepts :class:`~repro.aco.problem.LayeringProblem` (CSR arrays and
    ``n_layers`` present) and :class:`~repro.graph.digraph.DiGraph`
    (``n_vertices``/``n_edges``).  For a raw graph the eventual proper
    layering adds one dummy vertex per edge per spanned layer; the planner
    only needs a stable, cheap figure, so edges are billed once.
    """
    n_vertices = int(getattr(problem, "n_vertices", 0) or 0)
    indices = getattr(problem, "succ_indices", None)
    if indices is not None:
        n_edges = int(len(indices))
    else:
        n_edges = int(getattr(problem, "n_edges", 0) or 0)
    n_layers = getattr(problem, "n_layers", None)
    n_cols = int(n_layers) + 1 if n_layers is not None else n_vertices + 1
    return n_vertices, n_edges, n_cols


def estimate_pack_cost(
    problems: Iterable[object],
    *,
    n_colonies: int = 1,
    n_ants: int = 10,
    n_tours: int = 10,
    alpha: float = 1.0,
) -> CostEstimate:
    """Price the packed-runtime working set for *problems* run together.

    The model mirrors the allocations :func:`repro.aco.runtime._run_packed_range`
    actually makes — the zero-padded pheromone stack dominates, followed by
    the per-walk assignment/score arrays and the CSR pack — using only
    O(#problems) integer statistics, so the planner can call it on every
    candidate chunk without measurable cost.  It is an *estimate*: padding
    is priced at the pack's true ``max_n``/``max_cols``, but dummy-vertex
    growth from ``build()`` is approximated (see :func:`problem_stats`).
    """
    return pack_cost_from_stats(
        [problem_stats(p) for p in problems],
        n_colonies=n_colonies,
        n_ants=n_ants,
        n_tours=n_tours,
        alpha=alpha,
    )


def pack_cost_from_stats(
    stats: Sequence[tuple[int, int, int]],
    *,
    n_colonies: int = 1,
    n_ants: int = 10,
    n_tours: int = 10,
    alpha: float = 1.0,
) -> CostEstimate:
    """:func:`estimate_pack_cost` on precomputed :func:`problem_stats` tuples.

    Greedy planners price every candidate prefix of a chunk; precomputing
    each graph's ``(n, m, cols)`` once and re-aggregating plain integers
    keeps that loop O(chunk²) tuple arithmetic instead of O(chunk²)
    attribute walks over graph objects.
    """
    if not stats:
        return CostEstimate(bytes=0, est_wall=0.0)
    max_n = max(n for n, _, _ in stats)
    max_cols = max(c for _, _, c in stats)
    sum_n = sum(n for n, _, _ in stats)
    sum_m = sum(m for _, m, _ in stats)

    n_matrices = len(stats) * max(1, n_colonies)
    n_walks = n_matrices * max(1, n_ants)

    # One padded pheromone matrix per colony; alpha != 1 materialises a
    # tau**alpha temporary of the same shape each tour.
    tau_bytes = n_matrices * max_n * max_cols * _WORD
    if alpha != 1.0:
        tau_bytes *= 2
    # Per-walk state: assignment + feasibility spans + scratch (~4 arrays of
    # max_n) and the layer-width triple (real/crossing/occupancy, max_cols).
    walk_bytes = n_walks * (max_n * _WORD * 4 + max_cols * _WORD * 3)
    # The CSR pack itself: ~4 vertex-indexed arrays plus both edge
    # directions (indptr is vertex-indexed, indices edge-indexed).
    csr_bytes = (sum_n * 4 + sum_m * 2) * _WORD

    units = (
        max(1, n_tours)
        * max(1, n_colonies)
        * max(1, n_ants)
        * (sum_n + sum_m)
    )
    return CostEstimate(
        bytes=tau_bytes + walk_bytes + csr_bytes,
        est_wall=units * _SECONDS_PER_UNIT,
    )


def apply_memory_limit(
    budget_bytes: int, *, slack_bytes: int = DEFAULT_RLIMIT_SLACK_BYTES
) -> int | None:
    """Arm an ``RLIMIT_AS`` soft cap of current-usage + budget + slack.

    Called inside supervised pool workers after interpreter/NumPy start-up:
    the cap is *relative* to the address space already mapped, so it bounds
    what a cell may additionally allocate (the thing the budget prices)
    rather than the unknowable interpreter baseline.  Returns the armed
    limit in bytes, or ``None`` where ``RLIMIT_AS`` is unsupported or the
    existing hard limit already forbids raising it.

    A cell that exceeds the cap sees ``malloc`` fail — NumPy raises
    :class:`MemoryError`, which the worker reports as a labelled ``oom``
    failure; a hard allocator death still reaches the parent as a signal
    exit, which the pool also labels ``oom`` once a limit is armed.
    """
    if budget_bytes <= 0:
        return None
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return None
    limit = _current_vm_bytes() + budget_bytes + slack_bytes
    if hard != resource.RLIM_INFINITY:
        limit = min(limit, hard)
    if soft != resource.RLIM_INFINITY and soft <= limit:
        return None  # an outer cap is already tighter; keep it
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - platform-dependent
        return None
    return limit


def _current_vm_bytes() -> int:
    """Current virtual-memory size, via ``/proc`` on Linux (else a guess)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[0])
        try:
            page = os.sysconf("SC_PAGE_SIZE")
        except (ValueError, OSError):
            page = 4096
        return pages * page
    except (OSError, ValueError, IndexError):
        # No /proc (macOS, BSD): assume a generous interpreter baseline so
        # the cap errs on the permissive side rather than killing start-up.
        return 1024 * 1024 * 1024


#: Breaker states.  ``open`` fails fast (degraded path); ``half-open``
#: admits exactly one probe after the cooldown.
BreakerState = str

_CLOSED: BreakerState = "closed"
_OPEN: BreakerState = "open"
_HALF_OPEN: BreakerState = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open recovery probes.

    ``allow()`` answers "may the fast path run?"; callers report outcomes
    via ``record_success()``/``record_failure()``.  After *threshold*
    consecutive failures the breaker opens and ``allow()`` answers False
    until *cooldown_s* has passed, at which point exactly one caller is
    admitted as a half-open probe — its success closes the breaker, its
    failure re-opens it for another cooldown.  All transitions are
    thread-safe (the serving layer trips breakers from worker threads).
    """

    def __init__(
        self,
        name: str,
        *,
        threshold: int,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state: BreakerState = _CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._trips = 0
        self._last_detail = ""

    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def allow(self) -> bool:
        """Whether the guarded fast path may be attempted right now."""
        with self._lock:
            if self._state == _CLOSED:
                return True
            if self._state == _OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = _HALF_OPEN
                    return True  # this caller is the recovery probe
                return False
            return False  # half-open: a probe is already in flight

    def record_success(self) -> bool:
        """Report a fast-path success; returns True when this *closed* an
        open/half-open breaker (the recovery transition to log)."""
        with self._lock:
            recovered = self._state != _CLOSED
            self._state = _CLOSED
            self._consecutive = 0
            return recovered

    def record_failure(self, detail: str = "") -> bool:
        """Report a fast-path failure; returns True when this *opened* the
        breaker (the degradation transition to log)."""
        with self._lock:
            self._last_detail = detail
            if self._state == _HALF_OPEN:
                # Failed probe: straight back to open, no new trip log.
                self._state = _OPEN
                self._opened_at = self._clock()
                self._consecutive = self.threshold
                return False
            self._consecutive += 1
            if self._state == _CLOSED and self._consecutive >= self.threshold:
                self._state = _OPEN
                self._opened_at = self._clock()
                self._trips += 1
                return True
            return False

    def trip(self, detail: str = "forced") -> None:
        """Force the breaker open (tests and explicit degraded modes)."""
        with self._lock:
            self._state = _OPEN
            self._opened_at = self._clock()
            self._consecutive = max(self._consecutive, self.threshold)
            self._trips += 1
            self._last_detail = detail

    def reset(self) -> None:
        with self._lock:
            self._state = _CLOSED
            self._consecutive = 0
            self._opened_at = 0.0
            self._trips = 0
            self._last_detail = ""

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "trips": self._trips,
                "detail": self._last_detail,
            }


@dataclass(frozen=True)
class _Rung:
    """One rung of the degradation ladder."""

    threshold: int
    cooldown_s: float
    degraded: str  # what the system falls back to while open
    restored: str  # what closing the breaker re-enables


#: The explicit degradation ladder: breaker name → policy.  Disk rungs trip
#: on the first failure (a full disk does not get better by retrying the
#: same write) with a longer cooldown; compute rungs tolerate a couple of
#: failures before fencing the backend off.
LADDER: dict[str, _Rung] = {
    "native-kernel": _Rung(3, 30.0, "NumPy lockstep walk kernels", "native C kernels"),
    "native-threads": _Rung(3, 30.0, "single-threaded native walks", "multithreaded native walks"),
    "batched": _Rung(2, 30.0, "per-cell serial execution", "packed cross-graph batching"),
    "cache-disk": _Rung(1, 60.0, "memory-only result cache", "on-disk result cache"),
    "journal-disk": _Rung(1, 60.0, "best-effort journal (resume may recompute)", "durable run journal"),
    "respawn": _Rung(3, 30.0, "in-parent serial execution", "supervised pool respawn"),
    "shm-publish": _Rung(1, 60.0, "in-process colony execution", "shared-memory colony sharding"),
}


class ResourceGovernor:
    """Registry of the ladder's breakers with once-per-transition logging.

    All state transitions append to :attr:`events` (rendered into run
    summaries and ``/stats``) and emit one stderr note, so an operator sees
    *that* the run degraded and *why* exactly once — not once per cell.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                name, threshold=rung.threshold, cooldown_s=rung.cooldown_s, clock=clock
            )
            for name, rung in LADDER.items()
        }
        self._events: list[dict[str, str]] = []
        self._events_lock = threading.Lock()

    def breaker(self, name: str) -> CircuitBreaker:
        return self._breakers[name]

    def allow(self, name: str) -> bool:
        """Whether backend *name*'s fast path may run (probe-admitting)."""
        return self._breakers[name].allow()

    def record_failure(self, name: str, detail: str = "") -> bool:
        """Report a failure; logs + records the trip when it opens."""
        breaker = self._breakers[name]
        opened = breaker.record_failure(detail)
        if opened:
            rung = LADDER[name]
            self._note(
                name,
                "open",
                f"{name}: {breaker.threshold} consecutive failure(s)"
                + (f" ({detail})" if detail else "")
                + f" — degrading to {rung.degraded}",
            )
        return opened

    def record_success(self, name: str) -> None:
        """Report a success; logs + records the recovery when it closes an
        open/half-open breaker."""
        if self._breakers[name].record_success():
            self._note(
                name, "closed", f"{name}: probe succeeded — {LADDER[name].restored} restored"
            )

    def trip(self, name: str, detail: str = "forced") -> None:
        """Force a rung open (explicit degraded modes; tests)."""
        self._breakers[name].trip(detail)
        self._note(name, "open", f"{name}: forced open — {LADDER[name].degraded} ({detail})")

    def degraded(self) -> list[str]:
        """Names of rungs currently not running their fast path."""
        return [
            name
            for name, breaker in sorted(self._breakers.items())
            if breaker.state != _CLOSED
        ]

    @property
    def events(self) -> list[dict[str, str]]:
        with self._events_lock:
            return list(self._events)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Per-rung state for ``/stats`` and run summaries."""
        return {
            name: breaker.snapshot()
            for name, breaker in sorted(self._breakers.items())
        }

    def reset(self) -> None:
        for breaker in self._breakers.values():
            breaker.reset()
        with self._events_lock:
            self._events.clear()

    def _note(self, name: str, state: str, message: str) -> None:
        with self._events_lock:
            self._events.append({"breaker": name, "state": state, "message": message})
        sys.stderr.write(f"repro: resource governor: {message}\n")


#: Process-global governor (see module docstring for why it is global).
_GOVERNOR = ResourceGovernor()


def governor() -> ResourceGovernor:
    """The process-global resource governor."""
    return _GOVERNOR
