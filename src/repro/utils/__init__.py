"""Small shared utilities: exceptions, deterministic RNG handling, timing.

These helpers are intentionally dependency-light so that every other
subpackage (graph substrate, layering algorithms, ACO core, experiment
harness) can import them without creating circular imports.
"""

from repro.utils.exceptions import (
    CycleError,
    GraphError,
    LayeringError,
    ReproError,
    ValidationError,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch, TimingRecord, time_call

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "LayeringError",
    "ValidationError",
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "TimingRecord",
    "time_call",
]
