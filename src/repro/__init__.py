"""repro — Ant Colony Optimization for the DAG Layering Problem.

A from-scratch Python reproduction of

    R. Andreev, P. Healy, N. S. Nikolov,
    "Applying Ant Colony Optimization Metaheuristic to the DAG Layering
    Problem", IPPS/IPDPS 2007.

The package contains the full stack the paper depends on:

* :mod:`repro.graph` — a DAG data structure, generators, I/O and acyclicity
  tools;
* :mod:`repro.layering` — the layering representation, the paper's quality
  metrics, and the baseline algorithms (Longest-Path, MinWidth, Promote
  Layering, Coffman–Graham, exact minimum-dummy layering);
* :mod:`repro.aco` — the paper's contribution: the ACO layering algorithm,
  plus a multi-process multi-colony driver;
* :mod:`repro.sugiyama` — the rest of the Sugiyama pipeline (cycle removal,
  crossing minimisation, coordinates, rendering) so layerings can be turned
  into actual drawings;
* :mod:`repro.datasets` — the synthetic AT&T-like benchmark corpus;
* :mod:`repro.experiments` — the harness that regenerates every figure of the
  paper's evaluation.

Quickstart
----------
>>> from repro import gnp_dag, aco_layering, evaluate_layering, ACOParams
>>> g = gnp_dag(30, 0.1, seed=1)
>>> layering = aco_layering(g, ACOParams(seed=1, n_ants=5, n_tours=5))
>>> evaluate_layering(g, layering).height >= 1
True
"""

from repro.aco import (
    ACOParams,
    AcoLayeringResult,
    aco_layering,
    aco_layering_detailed,
    colonies_aco_layering,
    parallel_aco_layering,
)
from repro.graph import (
    DiGraph,
    att_like_dag,
    from_networkx,
    gnp_dag,
    layered_random_dag,
    make_acyclic,
    to_networkx,
)
from repro.layering import (
    Layering,
    LayeringMetrics,
    coffman_graham_layering,
    evaluate_layering,
    longest_path_layering,
    make_proper,
    minimum_dummy_layering,
    minwidth_layering,
    minwidth_layering_sweep,
    promote_layering,
)
from repro.sugiyama import SugiyamaDrawing, sugiyama_layout

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # graph
    "DiGraph",
    "gnp_dag",
    "att_like_dag",
    "layered_random_dag",
    "make_acyclic",
    "to_networkx",
    "from_networkx",
    # layering
    "Layering",
    "LayeringMetrics",
    "evaluate_layering",
    "make_proper",
    "longest_path_layering",
    "minwidth_layering",
    "minwidth_layering_sweep",
    "promote_layering",
    "coffman_graham_layering",
    "minimum_dummy_layering",
    # aco
    "ACOParams",
    "aco_layering",
    "aco_layering_detailed",
    "AcoLayeringResult",
    "colonies_aco_layering",
    "parallel_aco_layering",
    # sugiyama
    "sugiyama_layout",
    "SugiyamaDrawing",
]
