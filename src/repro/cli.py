"""Command-line interface.

Installed as the ``repro-dag`` console script (also reachable via
``python -m repro``).  Sub-commands:

``layer``
    Layer a graph file with any algorithm in the library and print the
    paper's quality metrics (optionally writing the layer assignment to JSON).
``draw``
    Run the full Sugiyama pipeline on a graph file and render the drawing as
    ASCII and/or SVG.
``compare``
    Run the paper's five-algorithm comparison over a corpus sample and print
    one table per metric.
``figures``
    Regenerate one or all of the paper's evaluation figures (Fig. 4–9).
``tune``
    Reproduce the α/β or ``nd_width`` parameter sweep of Section VIII.
``corpus``
    Materialise the synthetic AT&T-like corpus to a directory of JSON graph
    files (for inspection or for use by external tools).
``cache``
    Inspect (``stats``) or bound (``prune --max-size/--older-than``) a
    result-cache directory.
``clean``
    Reclaim shared-memory blocks leaked by killed runs (sweeps the per-run
    shm manifests; also runs automatically at the start of every
    experiment run).
``serve``
    Run the layout service (:mod:`repro.serving`): an HTTP/JSON front end
    that answers repeat requests from the result cache, coalesces
    concurrent misses into cross-graph megabatches, sheds load beyond a
    bounded queue (429), and drains gracefully on SIGTERM.

The experiment sub-commands (``compare``, ``figures``, ``tune``) dispatch
their (graph × algorithm) cells through the shared experiment engine
(:mod:`repro.experiments.engine`): ``--executor process --jobs N`` spreads
the cells over N worker processes, ``--executor colonies --colonies K``
additionally runs every AntColony cell as a K-colony shared-memory
portfolio (:mod:`repro.aco.runtime`), ``--executor batched [--batch-size N]``
packs same-spec AntColony cells into cross-graph megabatches advanced by
shared lockstep kernel sweeps (bit-identical results, the fast path for
full-corpus runs on any machine), and ``--cache-dir DIR`` enables the
content-addressed result cache so repeated runs over the same corpus and
parameters are incremental.

Full-corpus-scale runs add: ``compare --full`` (the paper's entire
1277-graph corpus), fault isolation by default (a raising cell is recorded
and excluded from the aggregates; ``--strict`` restores fail-fast), a live
stderr progress line (automatic on a terminal, forced with ``--progress``),
and ``--run-dir DIR`` journaling every completed cell so an interrupted run
finishes with ``--resume`` instead of restarting from zero.  Hardening on
top: ``--timeout S`` bounds every cell by a deadline, ``--retries N``
re-executes failed/timed-out/crashed cells, and SIGINT/SIGTERM tear down
cleanly — the journal is flushed, published shared memory is released, and
the exit message names the exact ``--resume`` invocation that finishes the
run.

Graph files may be in the library's edge-list format (``.edgelist``, see
:func:`repro.graph.io.write_edgelist`) or JSON (``.json``,
:func:`repro.graph.io.write_json`).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import re
import shutil
import signal
import sys
import time
from pathlib import Path
from typing import Sequence, TextIO

from repro.aco import _native
from repro.aco.params import ACOParams
from repro.datasets.corpus import GROUP_VERTEX_COUNTS, att_like_corpus
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, RunProgress, default_method_specs
from repro.experiments.figures import FIGURES
from repro.experiments.reporting import format_comparison, format_figure, format_sweep
from repro.experiments.runner import run_comparison
from repro.experiments.tuning import alpha_beta_sweep, nd_width_sweep
from repro.graph.digraph import DiGraph
from repro.graph.io import read_edgelist, read_json, write_json
from repro.layering.metrics import evaluate_layering
from repro.sugiyama.pipeline import LAYERING_METHODS, sugiyama_layout
from repro.sugiyama.render import render_ascii, render_svg
from repro.utils import resources, shm_manifest
from repro.utils.exceptions import ReproError

__all__ = ["main", "build_parser"]

_CLI_METRICS = (
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "running_time",
)


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #


def _load_graph(path: str) -> DiGraph:
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"graph file not found: {path}")
    if file_path.suffix == ".json":
        return read_json(file_path)
    return read_edgelist(file_path)


def _aco_params(args: argparse.Namespace) -> ACOParams:
    return ACOParams(
        alpha=args.alpha,
        beta=args.beta,
        n_ants=args.ants,
        n_tours=args.tours,
        nd_width=args.nd_width,
        seed=args.seed,
    )


def _layering_method(name: str, params: ACOParams):
    if name == "aco":
        from repro.aco.layering_aco import aco_layering

        return lambda g: aco_layering(g, params)
    return LAYERING_METHODS[name]


_SIZE_SUFFIXES = {"": 1, "B": 1, "K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}
_DURATION_SUFFIXES = {"": 1, "S": 1, "M": 60, "H": 3600, "D": 86400, "W": 604800}


def _parse_size(text: str) -> int:
    """``"512M"``/``"2G"``/``"1.5MiB"``/``"1048576"`` → bytes.

    Accepts the ``KiB``/``MiB``/``GiB`` spellings that ``cache stats``
    itself prints, so displayed sizes round-trip as prune inputs.
    """
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([A-Za-z]?)[iI]?[bB]?\s*", text)
    if not match or match.group(2).upper() not in _SIZE_SUFFIXES:
        raise ReproError(
            f"invalid size {text!r}; use e.g. 1048576, 512K, 64MiB, 2G"
        )
    return int(float(match.group(1)) * _SIZE_SUFFIXES[match.group(2).upper()])


def _parse_duration(text: str) -> float:
    """``"7d"``/``"12h"``/``"45m"``/``"30"`` (seconds) → seconds."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([A-Za-z]?)\s*", text)
    if not match or match.group(2).upper() not in _DURATION_SUFFIXES:
        raise ReproError(
            f"invalid duration {text!r}; use e.g. 30s, 45m, 12h, 7d, 2w"
        )
    return float(match.group(1)) * _DURATION_SUFFIXES[match.group(2).upper()]


def _format_bytes(n: int | float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def _format_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


class _ProgressReporter:
    """Live one-line stderr progress display driven by the engine callback.

    The line rewrites itself in place (``\\r``) at most every 0.1 s, only
    when *enabled* (a terminal, or ``--progress``); :meth:`finish` always
    prints the run summary — cells done, executed, replayed, cache hits,
    failures — so scripts (and the CI resume smoke) can assert on it even
    without a tty.
    """

    def __init__(self, *, enabled: bool, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.last: RunProgress | None = None
        self._banked: list[RunProgress] = []
        self._last_write = 0.0
        self._dirty = False

    def __call__(self, progress: RunProgress) -> None:
        if self.last is not None and progress.done <= self.last.done:
            # A new engine run started (figures/tune issue several); bank
            # the finished one so the final summary spans them all.
            self._banked.append(self.last)
        self.last = progress
        if not self.enabled:
            return
        now = time.monotonic()
        if progress.done < progress.total and now - self._last_write < 0.1:
            return
        self._last_write = now
        retried = f"  retried {progress.retried}" if progress.retried else ""
        self.stream.write(
            f"\rcells {progress.done}/{progress.total}"
            f"  failures {progress.failures}"
            f"{retried}"
            f"  cache {progress.cache_hits}"
            f"  replayed {progress.replayed}"
            f"  eta {_format_eta(progress.eta_s)}   "
        )
        self.stream.flush()
        self._dirty = True

    def finish(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self._dirty = False
        if self.last is not None:
            runs = [*self._banked, self.last]
            done = sum(p.done for p in runs)
            total = sum(p.total for p in runs)
            # New counters append after the original four so scripts keying
            # on the `run: D/T cells (E executed, R replayed, ...` prefix
            # (the CI resume smoke among them) keep matching.
            retried = sum(p.retried for p in runs)
            timed_out = sum(p.timed_out for p in runs)
            extras = ""
            if retried or timed_out:
                extras = f", {retried} retried, {timed_out} timed out"
            self.stream.write(
                f"run: {done}/{total} cells "
                f"({sum(p.executed for p in runs)} executed, "
                f"{sum(p.replayed for p in runs)} replayed, "
                f"{sum(p.cache_hits for p in runs)} cache hits, "
                f"{sum(p.failures for p in runs)} failures{extras}) "
                f"in {sum(p.elapsed_s for p in runs):.1f}s\n"
            )
            self.stream.flush()


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process", "colonies", "batched"),
        default="serial",
        help=(
            "how experiment cells are dispatched (default serial); 'colonies' "
            "dispatches like 'process' and pairs with --colonies to run every "
            "AntColony cell through the shared-memory multi-colony runtime; "
            "'batched' packs same-spec AntColony cells into cross-graph "
            "megabatches advanced by shared lockstep kernel sweeps (identical "
            "results, one kernel call per tour per pack)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for the pool executors (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        dest="batch_size",
        help=(
            "graphs per cross-graph pack for --executor batched "
            "(default 128; bounds the padded per-pack arrays)"
        ),
    )
    parser.add_argument(
        "--colonies",
        type=int,
        default=1,
        dest="n_colonies",
        help=(
            "run every AntColony cell as a portfolio of this many independent "
            "colonies (shared-memory lockstep batch, best colony wins; default 1)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="enable the content-addressed result cache in this directory",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "fail fast on the first raising cell (default: record the "
            "failure, exclude it from the aggregates and keep going)"
        ),
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help=(
            "journal every completed cell under this directory so an "
            "interrupted run can be finished with --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay the journaled cells of a previous --run-dir run and "
            "execute only the remainder"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "force the live stderr progress line (cells done/total, "
            "failures, cache hits, ETA); on by default when stderr is a "
            "terminal"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        dest="cell_timeout",
        metavar="SECONDS",
        help=(
            "per-cell deadline: a cell over budget is recorded as a timeout "
            "failure (excluded from the aggregates, never cached) instead "
            "of stalling the run (default: no deadline)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "re-execute failed, timed-out or crashed cells up to this many "
            "extra times with jittered backoff before recording the failure "
            "(default 0)"
        ),
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="SIZE",
        help=(
            "per-pack working-set budget, e.g. 512M or 2G: the batched "
            "planner splits megabatches to fit it (results unchanged), and "
            "process workers run under a matching RLIMIT_AS soft cap so an "
            "over-budget cell dies as a labelled 'oom' failure instead of "
            "taking the run down (default: no budget)"
        ),
    )


class _SignalInterrupt(BaseException):
    """A SIGINT/SIGTERM landed mid-run (BaseException so nothing swallows it)."""

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum

    @property
    def name(self) -> str:
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            return f"signal {self.signum}"


@contextlib.contextmanager
def _engine(args: argparse.Namespace):
    """Engine built from the CLI options, with progress/journal teardown.

    On exit — normal, interrupted or strict-failed — the progress line is
    finalised (the run summary always prints) and the journal handle is
    closed.  While the run is active SIGINT/SIGTERM are converted into a
    clean teardown: the journal is flushed and closed, any shared-memory
    blocks this process still has registered are released, and the error
    message names the ``--resume`` invocation that finishes the run.  Stale
    shm left behind by previously *killed* runs (SIGKILL skips teardown) is
    swept before the engine starts.
    """
    swept = shm_manifest.sweep()
    if swept.blocks_reclaimed:
        sys.stderr.write(
            f"reclaimed {swept.blocks_reclaimed} shared-memory block(s) "
            f"from {swept.manifests_removed} dead run(s)\n"
        )
    reporter = _ProgressReporter(enabled=args.progress or sys.stderr.isatty())
    engine = ExperimentEngine.from_options(
        executor=args.executor,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        strict=args.strict,
        run_dir=args.run_dir,
        resume=args.resume,
        progress=reporter,
        batch_size=args.batch_size,
        cell_timeout=args.cell_timeout,
        retries=args.retries,
        memory_budget=(
            _parse_size(args.memory_budget)
            if args.memory_budget is not None
            else None
        ),
    )

    def _on_signal(signum, frame):
        raise _SignalInterrupt(signum)

    previous: dict[int, object] = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except ValueError:  # pragma: no cover - not the main thread
            pass
    try:
        yield engine
    except (_SignalInterrupt, KeyboardInterrupt) as exc:
        name = exc.name if isinstance(exc, _SignalInterrupt) else "SIGINT"
        if args.run_dir:
            hint = (
                f"; journal flushed — finish with --resume --run-dir {args.run_dir}"
            )
        else:
            hint = "; pair with --run-dir to make runs resumable"
        raise ReproError(f"run interrupted by {name}{hint}") from None
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):  # pragma: no cover
                pass
        released = shm_manifest.release_all()
        if released:
            sys.stderr.write(
                f"released {released} shared-memory block(s) on teardown\n"
            )
        reporter.finish()
        if engine.cache is not None:
            # The per-layer counters live on the in-process cache object, so
            # this run summary is where they are actually observable (a
            # fresh `cache stats` process necessarily reports zeros).
            hits = engine.cache.hit_stats()
            if hits.memory_hits or hits.memory_misses:
                sys.stderr.write(
                    f"cache layers: memory {hits.memory_hits} hits / "
                    f"{hits.memory_misses} misses, disk {hits.disk_hits} hits / "
                    f"{hits.disk_misses} misses\n"
                )
        if engine.journal is not None:
            engine.journal.close()
        degraded = resources.governor().degraded()
        if degraded:
            sys.stderr.write(
                "resource governor: run finished with degraded rungs: "
                + ", ".join(degraded)
                + " (results are unchanged; see README 'Resource limits')\n"
            )


def _add_aco_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=float, default=1.0, help="pheromone exponent (default 1)")
    parser.add_argument("--beta", type=float, default=3.0, help="heuristic exponent (default 3)")
    parser.add_argument("--ants", type=int, default=10, help="colony size (default 10)")
    parser.add_argument("--tours", type=int, default=10, help="number of tours (default 10)")
    parser.add_argument("--nd-width", type=float, default=1.0, help="dummy vertex width (default 1)")
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #


def _cmd_layer(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    params = _aco_params(args)
    method = _layering_method(args.method, params)
    layering = method(graph)
    metrics = evaluate_layering(graph, layering, nd_width=args.nd_width)
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")
    print(f"method: {args.method}")
    for key, value in metrics.as_dict().items():
        print(f"  {key}: {value}")
    if args.output:
        Path(args.output).write_text(
            json.dumps({str(v): layer for v, layer in layering.items()}, indent=2),
            encoding="utf-8",
        )
        print(f"layer assignment written to {args.output}")
    return 0


def _cmd_draw(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    params = _aco_params(args)
    method = _layering_method(args.method, params)
    # The raw nd_width keeps `draw` metrics identical to `layer` for the same
    # graph; the layout itself clamps its dummy width internally.
    drawing = sugiyama_layout(graph, layering_method=method, nd_width=args.nd_width)
    print(
        f"height={drawing.height} width={drawing.width:.2f} "
        f"crossings={drawing.crossings} reversed_edges={len(drawing.reversed_edges)}"
    )
    if not args.no_ascii:
        print(render_ascii(drawing, columns=args.columns))
    if args.svg:
        render_svg(drawing, args.svg)
        print(f"SVG written to {args.svg}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.full and args.graphs_per_group is not None:
        raise ReproError("--full runs the whole corpus; drop --graphs-per-group")
    graphs_per_group = (
        None if args.full else (args.graphs_per_group if args.graphs_per_group is not None else 2)
    )
    vertex_counts = (
        tuple(args.vertex_counts) if args.vertex_counts else GROUP_VERTEX_COUNTS
    )
    corpus = att_like_corpus(
        graphs_per_group=graphs_per_group, vertex_counts=vertex_counts
    )
    params = _aco_params(args)
    algorithms = default_method_specs(
        aco_params=params, include_aco=not args.no_aco, n_colonies=args.n_colonies
    )
    print(f"corpus: {len(corpus)} graphs over groups {sorted(set(vertex_counts))}")
    if args.full:
        # The full corpus is where the walk kernel dominates wall-clock, so
        # announce how it will run.  Resolving the thread count up front also
        # surfaces an invalid REPRO_ACO_THREADS as the canonical error before
        # any work starts.
        print(
            f"walk kernel: {_native.effective_threads()} thread(s), "
            f"{_native.thread_support()} backend"
        )
    with _engine(args) as engine:
        # keep_results=False: the tables only need the per-group aggregates,
        # so even the full 1277-graph corpus holds O(groups) state.
        comparison = run_comparison(
            corpus,
            algorithms,
            nd_width=args.nd_width,
            engine=engine,
            keep_results=False,
        )
    for metric in _CLI_METRICS:
        print()
        print(format_comparison(comparison, metric))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    wanted = list(FIGURES) if args.figure == "all" else [args.figure]
    params = _aco_params(args)
    corpus = att_like_corpus(graphs_per_group=args.graphs_per_group)
    with _engine(args) as engine:
        for figure_id in wanted:
            figure = FIGURES[figure_id](
                corpus=corpus,
                aco_params=params,
                nd_width=args.nd_width,
                engine=engine,
                n_colonies=args.n_colonies,
            )
            print()
            print(format_figure(figure))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    vertex_counts = (
        tuple(args.vertex_counts) if args.vertex_counts else (20, 40, 60)
    )
    corpus = att_like_corpus(
        graphs_per_group=args.graphs_per_group, vertex_counts=vertex_counts
    )
    params = _aco_params(args)
    print(f"corpus: {len(corpus)} graphs over groups {sorted(set(vertex_counts))}")
    with _engine(args) as engine:
        if args.sweep == "alpha-beta":
            sweep = alpha_beta_sweep(
                corpus, base_params=params, engine=engine, n_colonies=args.n_colonies
            )
        else:
            sweep = nd_width_sweep(
                corpus, base_params=params, engine=engine, n_colonies=args.n_colonies
            )
    print(format_sweep(sweep))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache: {cache.directory}")
        print(f"  entries: {stats.entries}")
        print(f"  total size: {_format_bytes(stats.total_bytes)}")
        if stats.quarantined:
            print(f"  quarantined (corrupt/): {stats.quarantined}")
        if stats.oldest_mtime is not None and stats.newest_mtime is not None:
            now = time.time()
            print(f"  oldest entry: {(now - stats.oldest_mtime) / 3600:.1f} h ago")
            print(f"  newest entry: {(now - stats.newest_mtime) / 3600:.1f} h ago")
        hits = cache.hit_stats()
        print(
            "  this-process lookups: "
            f"memory {hits.memory_hits} hits / {hits.memory_misses} misses, "
            f"disk {hits.disk_hits} hits / {hits.disk_misses} misses"
        )
        return 0
    max_size = _parse_size(args.max_size) if args.max_size is not None else None
    older_than = (
        _parse_duration(args.older_than) if args.older_than is not None else None
    )
    free_below = (
        _parse_size(args.free_below) if args.free_below is not None else None
    )
    result = cache.prune(
        max_size_bytes=max_size,
        older_than_seconds=older_than,
        free_below_bytes=free_below,
    )
    print(
        f"pruned {result.removed} entries ({_format_bytes(result.freed_bytes)}); "
        f"kept {result.kept} ({_format_bytes(result.kept_bytes)})"
    )
    if result.quarantine_removed:
        print(f"removed {result.quarantine_removed} quarantined entries")
    if older_than is not None:
        # Age-bounded cache maintenance doubles as shm housekeeping: stale
        # run manifests past the same cutoff are swept too.
        shm = shm_manifest.sweep(older_than_seconds=older_than)
        if shm.manifests_removed or shm.blocks_reclaimed:
            print(
                f"swept {shm.manifests_removed} stale shm manifests "
                f"({shm.blocks_reclaimed} blocks reclaimed)"
            )
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    older_than = (
        _parse_duration(args.older_than) if args.older_than is not None else None
    )
    if args.free_below is not None and older_than is None:
        # Free-space watermark: when the shm filesystem is below it, a
        # stale-but-pid-alive manifest is worth more reclaimed than kept
        # (pids recycle), so escalate to an age-0 sweep-everything pass.
        watermark = _parse_size(args.free_below)
        shm_root = Path("/dev/shm")
        probe = shm_root if shm_root.is_dir() else shm_manifest.manifest_dir()
        try:
            free = shutil.disk_usage(probe).free
        except OSError:
            free = None
        if free is not None and free < watermark:
            print(
                f"free space under {probe} is {_format_bytes(free)} "
                f"(< {_format_bytes(watermark)}): sweeping all stale manifests"
            )
            older_than = 0.0
    result = shm_manifest.sweep(older_than_seconds=older_than)
    print(
        f"swept {result.manifests_removed} stale run manifests; "
        f"reclaimed {result.blocks_reclaimed} shared-memory blocks "
        f"(manifest dir: {shm_manifest.manifest_dir()})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily so plain CLI runs never pay for the serving stack.
    from repro.serving import ServeConfig, serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window_s=args.batch_window,
        batch_size=args.batch_size,
        max_queue=args.max_queue,
        request_timeout_s=args.timeout,
        crash_retries=args.crash_retries,
        drain_timeout_s=args.drain_timeout,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        prewarm=not args.no_prewarm,
        exit_on_drain_timeout=True,
        memory_budget=(
            _parse_size(args.memory_budget)
            if args.memory_budget is not None
            else None
        ),
    )
    return serve(config)


def _cmd_corpus(args: argparse.Namespace) -> int:
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    count = 0
    for entry in att_like_corpus(graphs_per_group=args.graphs_per_group):
        write_json(entry.graph, out_dir / f"{entry.name}.json")
        count += 1
    print(f"{count} graphs written to {out_dir}")
    return 0


# --------------------------------------------------------------------------- #
# parser / entry point
# --------------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-dag",
        description="Ant Colony Optimization for the DAG Layering Problem (IPPS 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    method_names = sorted(set(LAYERING_METHODS) | {"aco"})

    p_layer = sub.add_parser("layer", help="layer a graph file and print its metrics")
    p_layer.add_argument("graph", help="graph file (.edgelist or .json)")
    p_layer.add_argument("--method", choices=method_names, default="aco")
    p_layer.add_argument("--output", help="write the layer assignment to this JSON file")
    _add_aco_options(p_layer)
    p_layer.set_defaults(func=_cmd_layer)

    p_draw = sub.add_parser("draw", help="run the Sugiyama pipeline and render the drawing")
    p_draw.add_argument("graph", help="graph file (.edgelist or .json)")
    p_draw.add_argument("--method", choices=method_names, default="aco")
    p_draw.add_argument("--svg", help="write an SVG rendering to this path")
    p_draw.add_argument("--no-ascii", action="store_true", help="skip the ASCII rendering")
    p_draw.add_argument("--columns", type=int, default=100, help="ASCII rendering width")
    _add_aco_options(p_draw)
    p_draw.set_defaults(func=_cmd_draw)

    p_compare = sub.add_parser("compare", help="run the five-algorithm comparison on the corpus")
    p_compare.add_argument(
        "--graphs-per-group",
        type=int,
        default=None,
        help="corpus sample size per vertex-count group (default 2)",
    )
    p_compare.add_argument(
        "--full",
        action="store_true",
        help=(
            "run the paper's entire 1277-graph corpus (pair with --run-dir/"
            "--resume and --cache-dir for interruption-proof runs)"
        ),
    )
    p_compare.add_argument(
        "--vertex-counts", type=int, nargs="*", help="vertex-count groups (default: all 19)"
    )
    p_compare.add_argument("--no-aco", action="store_true", help="baselines only")
    _add_aco_options(p_compare)
    _add_engine_options(p_compare)
    p_compare.set_defaults(func=_cmd_compare)

    p_figures = sub.add_parser("figures", help="regenerate the paper's evaluation figures")
    p_figures.add_argument("--figure", choices=sorted(FIGURES) + ["all"], default="all")
    p_figures.add_argument("--graphs-per-group", type=int, default=2)
    _add_aco_options(p_figures)
    _add_engine_options(p_figures)
    p_figures.set_defaults(func=_cmd_figures)

    p_tune = sub.add_parser("tune", help="reproduce a Section VIII parameter sweep")
    p_tune.add_argument(
        "--sweep",
        choices=("alpha-beta", "nd-width"),
        default="alpha-beta",
        help="which parameter sweep to run (default alpha-beta)",
    )
    p_tune.add_argument("--graphs-per-group", type=int, default=1)
    p_tune.add_argument(
        "--vertex-counts",
        type=int,
        nargs="*",
        help="vertex-count groups for the sweep corpus (default: 20 40 60)",
    )
    _add_aco_options(p_tune)
    _add_engine_options(p_tune)
    p_tune.set_defaults(func=_cmd_tune)

    p_corpus = sub.add_parser("corpus", help="write the synthetic corpus to a directory")
    p_corpus.add_argument("output_dir")
    p_corpus.add_argument("--graphs-per-group", type=int, default=1)
    p_corpus.set_defaults(func=_cmd_corpus)

    p_cache = sub.add_parser("cache", help="inspect or prune a result-cache directory")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser("stats", help="entry count, size and age range")
    p_cache_stats.add_argument("cache_dir", help="the --cache-dir to inspect")
    p_cache_stats.set_defaults(func=_cmd_cache)
    p_cache_prune = cache_sub.add_parser(
        "prune",
        help="evict entries older than a cutoff and/or oldest-first down to a size budget",
    )
    p_cache_prune.add_argument("cache_dir", help="the --cache-dir to prune")
    p_cache_prune.add_argument(
        "--max-size", help="size budget to prune down to, e.g. 1048576, 512K, 64M, 2G"
    )
    p_cache_prune.add_argument(
        "--older-than", help="evict entries older than this, e.g. 30s, 45m, 12h, 7d"
    )
    p_cache_prune.add_argument(
        "--free-below",
        help=(
            "disk-full watermark: evict oldest-first until the cache "
            "directory's filesystem has at least this much free space, "
            "e.g. 512M, 2G"
        ),
    )
    p_cache_prune.set_defaults(func=_cmd_cache)

    p_clean = sub.add_parser(
        "clean",
        help="reclaim shared-memory blocks leaked by killed runs",
    )
    p_clean.add_argument(
        "--older-than",
        default=None,
        help=(
            "also sweep manifests older than this even if a process with "
            "the recorded pid is still alive (pids recycle), e.g. 12h, 7d"
        ),
    )
    p_clean.add_argument(
        "--free-below",
        default=None,
        help=(
            "shm free-space watermark, e.g. 256M: when /dev/shm has less "
            "free space than this, sweep every stale manifest regardless "
            "of pid liveness (implied --older-than 0)"
        ),
    )
    p_clean.set_defaults(func=_cmd_clean)

    p_serve = sub.add_parser(
        "serve",
        help="run the layout service (HTTP/JSON, megabatching, graceful drain)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p_serve.add_argument(
        "--port", type=int, default=8377, help="TCP port; 0 binds an ephemeral port (default 8377)"
    )
    p_serve.add_argument(
        "--batch-window",
        type=float,
        default=0.02,
        help="seconds to wait for concurrent misses to coalesce (default 0.02)",
    )
    p_serve.add_argument(
        "--batch-size", type=int, default=128, help="megabatch pack size cap (default 128)"
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="admission bound; queued requests beyond this get 429 (default 256)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request budget in seconds (default 30)",
    )
    p_serve.add_argument(
        "--crash-retries",
        type=int,
        default=1,
        help="bounded re-runs of crash-kind cell failures (default 1)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="SIGTERM grace window before the hard-kill fallback (default 10)",
    )
    p_serve.add_argument("--cache-dir", help="result-cache directory shared with CLI runs")
    p_serve.add_argument("--jobs", type=int, help="engine worker cap (default: REPRO_JOBS/CPUs)")
    p_serve.add_argument(
        "--memory-budget",
        default=None,
        metavar="SIZE",
        help=(
            "per-pack working-set budget, e.g. 512M: requests whose own "
            "cost estimate exceeds it answer 413, and megabatches are "
            "split to fit (default: no budget)"
        ),
    )
    p_serve.add_argument(
        "--no-prewarm",
        action="store_true",
        help="skip the packed-runtime warm-up before reporting ready",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="static invariant checks (determinism, signal-safety, shm, kernel contract)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is stdlib-only and must stay importable in
    # minimal environments, and normal CLI runs never pay for it.
    from repro.lint.cli import run as run_lint_cli

    return run_lint_cli(args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
