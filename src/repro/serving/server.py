"""Resilient layout-as-a-service: the ``repro-dag serve`` front end.

One asyncio loop thread accepts HTTP/JSON layering requests and funnels
them through a bounded admission queue to a single warm worker thread.
The worker turns each drained batch of requests into one
:class:`~repro.experiments.engine.ExperimentEngine` run with the
``"batched"`` executor, so concurrent cache misses coalesce into
cross-graph :class:`~repro.aco.problem.PackedProblems` megabatches exactly
as a CLI corpus run would — same planner, same grouping by canonical
method token and ``nd_width``, same two-layer
:class:`~repro.experiments.cache.ResultCache` in front.

Robustness contract (see README "Serving"):

* **Deadlines compose.**  Every request carries a budget
  (``deadline_s``, default :attr:`ServeConfig.request_timeout_s`); the
  smallest remaining budget in a batch becomes the engine's per-cell
  deadline, so the PR 6 timeout machinery bounds pack setup and execution.
  A request whose budget passes — in the queue or mid-pack — answers
  ``504`` without poisoning its batch-mates.
* **Backpressure, not collapse.**  Admission beyond
  :attr:`ServeConfig.max_queue` queued requests answers ``429`` with a
  ``Retry-After`` hint; accepted work is never silently dropped.
* **Bounded crash retries.**  Only ``kind == "crash"`` cell failures
  (a worker process died under the cell) are requeued, at most
  :attr:`ServeConfig.crash_retries` times; exceptions and timeouts answer
  immediately with a correctly-labelled error body.
* **Graceful drain.**  SIGTERM/SIGINT stops accepting connections,
  answers queued requests ``503``, lets the in-flight pack finish,
  releases this run's shared-memory manifests and exits 0 — with a
  hard-kill fallback after :attr:`ServeConfig.drain_timeout_s`.

``REPRO_CHAOS`` rules target request cells by ``method:name`` exactly as
they target CLI cells, because the request path *is* the engine path.
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.aco import _native
from repro.aco.params import ACOParams
from repro.experiments.cache import ResultCache
from repro.experiments.engine import (
    ANT_COLONY,
    BUILTIN_METHODS,
    DEFAULT_BATCH_SIZE,
    CellResult,
    ExperimentEngine,
    MethodSpec,
    WorkUnit,
)
from repro.graph.digraph import DiGraph
from repro.graph.io import from_json_dict
from repro.utils import resources, shm_manifest
from repro.utils.exceptions import ReproError, ValidationError

from repro.serving.http import (
    HttpError,
    HttpRequest,
    read_request,
    response_bytes,
)

__all__ = [
    "LayoutServer",
    "ServeConfig",
    "build_unit",
    "serve",
]

#: Fields a layering request may carry; anything else is a 400.
REQUEST_FIELDS = frozenset(
    {"graph", "method", "aco", "n_colonies", "nd_width", "name", "deadline_s"}
)

#: Floor for the engine deadline derived from request budgets, so a batch
#: admitted with milliseconds left still gets a meaningful cell timeout.
MIN_CELL_TIMEOUT = 0.05

#: Seconds of slack past a request's own budget before the connection
#: handler gives up waiting for its batch outcome (response plumbing time).
RESPONSE_GRACE = 0.25


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`LayoutServer` instance."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (announced on stdout).
    port: int = 8377
    #: Seconds the batcher waits after the first queued miss so concurrent
    #: arrivals coalesce into the same megabatch.  ``0`` disables the window.
    batch_window_s: float = 0.02
    #: Pack size cap handed to the engine's batch planner.
    batch_size: int = DEFAULT_BATCH_SIZE
    #: Admission bound: queued requests beyond this answer ``429``.
    max_queue: int = 256
    #: Default per-request budget when the request carries no ``deadline_s``.
    request_timeout_s: float = 30.0
    #: Upper bound accepted for a request's own ``deadline_s``.
    max_request_timeout_s: float = 300.0
    #: ``Retry-After`` hint (seconds) in ``429`` responses.
    retry_after_s: float = 1.0
    #: Serving-level re-runs of ``kind == "crash"`` cell failures.
    crash_retries: int = 1
    #: Grace window for SIGTERM drain before the hard-kill fallback.
    drain_timeout_s: float = 10.0
    #: Result-cache directory shared with CLI runs (``None``: memory only).
    cache_dir: str | None = None
    #: Worker cap forwarded to the engine (``None``: REPRO_JOBS / CPUs).
    jobs: int | None = None
    #: Largest accepted request body in bytes.
    max_body_bytes: int = 32 * 1024 * 1024
    #: Per-pack working-set budget in bytes (``--memory-budget``).  Requests
    #: whose own cost estimate exceeds it answer ``413`` at admission, and
    #: the batch engine splits planned megabatches to fit (``None``: off).
    memory_budget: int | None = None
    #: Print the ``serving on http://...`` line once the socket is bound.
    announce: bool = True
    #: Run the packed-runtime prewarm before reporting ready.
    prewarm: bool = True
    #: Hard-exit the process (``os._exit(1)``) when the drain deadline
    #: passes.  The CLI sets this; in-process test servers leave it off so
    #: an expired drain cancels tasks instead of killing the test runner.
    exit_on_drain_timeout: bool = False


# --------------------------------------------------------------------------- #
# request decoding
# --------------------------------------------------------------------------- #


def _parse_graph(data: Any) -> DiGraph:
    """Decode the request's graph: full repro-digraph JSON or edge shorthand."""
    if not isinstance(data, Mapping):
        raise ValidationError("request field 'graph' must be a JSON object")
    if data.get("format") == "repro-digraph":
        return from_json_dict(dict(data))
    if "edges" in data:
        graph = DiGraph()
        vertices = data.get("vertices", [])
        if not isinstance(vertices, list):
            raise ValidationError("graph shorthand 'vertices' must be a list of ids")
        for vertex in vertices:
            graph.add_vertex(vertex)
        edges = data["edges"]
        if not isinstance(edges, list):
            raise ValidationError("graph shorthand 'edges' must be a list of pairs")
        for pair in edges:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ValidationError(f"malformed edge {pair!r}: expected [u, v]")
            graph.add_edge(pair[0], pair[1])
        if graph.n_vertices == 0:
            raise ValidationError("graph shorthand decoded to an empty graph")
        return graph
    raise ValidationError(
        "request field 'graph' must be repro-digraph JSON or {'edges': [[u, v], ...]}"
    )


def _parse_method(payload: Mapping[str, Any], nd_width: float) -> MethodSpec:
    """Decode the request's method spec (builtins or a full Ant Colony)."""
    name = payload.get("method", ANT_COLONY)
    if name in BUILTIN_METHODS:
        if payload.get("aco") is not None or payload.get("n_colonies") is not None:
            raise ValidationError(
                f"'aco' / 'n_colonies' only apply to method {ANT_COLONY!r}, "
                f"not {name!r}"
            )
        return MethodSpec.builtin(name)
    if name != ANT_COLONY:
        raise ValidationError(
            f"unknown method {name!r}; choose from "
            f"{sorted(BUILTIN_METHODS) + [ANT_COLONY]}"
        )
    aco = payload.get("aco") or {}
    if not isinstance(aco, Mapping):
        raise ValidationError("request field 'aco' must be a JSON object")
    aco = dict(aco)
    # Deterministic by default: an unseeded request would bypass both the
    # result cache and the pack planner.  Clients that *want* fresh entropy
    # pass "seed": null explicitly.
    if "seed" not in aco:
        aco["seed"] = 0
    if "nd_width" in aco:
        if float(aco["nd_width"]) != nd_width:
            raise ValidationError(
                f"aco.nd_width ({aco['nd_width']}) contradicts request "
                f"nd_width ({nd_width}); set one"
            )
    else:
        aco["nd_width"] = nd_width
    try:
        params = ACOParams(**aco)
    except TypeError as exc:
        raise ValidationError(f"bad 'aco' parameters: {exc}") from exc
    n_colonies = payload.get("n_colonies")
    n_colonies = 1 if n_colonies is None else int(n_colonies)
    return MethodSpec.ant_colony(params, n_colonies=n_colonies)


def build_unit(
    payload: Any,
    *,
    default_deadline_s: float = ServeConfig.request_timeout_s,
    max_deadline_s: float = ServeConfig.max_request_timeout_s,
) -> tuple[WorkUnit, float]:
    """Decode one request body into a :class:`WorkUnit` and its budget.

    Raises :class:`ValidationError` (→ 400) on any defect; never partially
    succeeds.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError("request body must be a JSON object")
    unknown = sorted(set(payload) - REQUEST_FIELDS)
    if unknown:
        raise ValidationError(f"unknown request fields {unknown}")
    if "graph" not in payload:
        raise ValidationError("request field 'graph' is required")
    try:
        nd_width = float(payload.get("nd_width", 1.0))
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"nd_width must be a number: {exc}") from exc
    if nd_width <= 0:
        raise ValidationError(f"nd_width must be > 0, got {nd_width}")
    graph = _parse_graph(payload["graph"])
    method = _parse_method(payload, nd_width)
    name = payload.get("name", "")
    if not isinstance(name, str):
        raise ValidationError("request field 'name' must be a string")
    try:
        deadline_s = float(payload.get("deadline_s", default_deadline_s))
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"deadline_s must be a number: {exc}") from exc
    if not deadline_s > 0:
        raise ValidationError(f"deadline_s must be > 0, got {deadline_s}")
    deadline_s = min(deadline_s, max_deadline_s)
    unit = WorkUnit(graph=graph, method=method, nd_width=nd_width, graph_name=name)
    return unit, deadline_s


def _success_payload(cell: CellResult, attempts: int) -> dict[str, Any]:
    assert cell.metrics is not None
    return {
        "name": cell.graph_name,
        "algorithm": cell.algorithm,
        "nd_width": cell.nd_width,
        "metrics": cell.metrics.as_dict(),
        "running_time": cell.running_time,
        "cached": cell.cached,
        "attempts": attempts,
    }


# --------------------------------------------------------------------------- #
# the server
# --------------------------------------------------------------------------- #


@dataclass
class _Pending:
    """One admitted request waiting for (or riding in) a megabatch."""

    unit: WorkUnit
    budget: float
    deadline: float  # absolute, time.monotonic() terms
    future: "asyncio.Future[tuple[int, dict[str, Any]]]"
    retries_left: int
    attempts: int = 1


@dataclass
class _Counters:
    """Monotonic serving counters surfaced by ``GET /stats``."""

    accepted: int = 0
    rejected_overload: int = 0
    rejected_oversize: int = 0
    rejected_draining: int = 0
    bad_requests: int = 0
    batches: int = 0
    batched_cells: int = 0
    crash_requeues: int = 0
    responses: dict[str, int] = field(default_factory=dict)

    def count_response(self, status: int) -> None:
        key = str(status)
        self.responses[key] = self.responses.get(key, 0) + 1


class LayoutServer:
    """The asyncio front end plus its single warm batch-worker thread."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.port: int | None = None
        self.counters = _Counters()
        # Repeats must hit the two-layer cache even without a configured
        # directory: a server-owned temp dir backs the disk layer then.
        if self.config.cache_dir:
            self._tmp_cache_dir: tempfile.TemporaryDirectory[str] | None = None
            self._cache = ResultCache(self.config.cache_dir)
        else:
            self._tmp_cache_dir = tempfile.TemporaryDirectory(
                prefix="repro-serve-cache-"
            )
            self._cache = ResultCache(self._tmp_cache_dir.name)
        self._queue: deque[_Pending] = deque()
        self._writers: set[asyncio.StreamWriter] = set()
        self._ready = False
        self._draining = False
        self._closing = False
        self._finished = False
        self._inflight = 0
        self._exit_code = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._worker: ThreadPoolExecutor | None = None
        self._batcher: "asyncio.Task[None] | None" = None
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._drain_guard: asyncio.TimerHandle | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def run(self) -> int:
        """Serve until drained; returns the process exit code."""
        # Resolve the walk-kernel thread count before binding the socket so
        # an invalid REPRO_ACO_THREADS fails startup with the canonical
        # error instead of surfacing mid-batch.
        n_threads = _native.effective_threads()
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers(loop)
        self._batcher = loop.create_task(self._batch_loop())
        if self.config.prewarm:
            # Warm the packed-colony runtime (native kernels, shm round
            # trip) off-loop so the first real megabatch pays no lazy
            # initialisation cost.  Failure is non-fatal: the pure-Python
            # engine path still serves.
            try:
                await loop.run_in_executor(self._worker, _prewarm_runtime)
            except Exception:
                pass
        self._ready = True
        if self.config.announce:
            # The URL line stays bare: load tools anchor a port regex on it.
            print(f"serving on http://{self.config.host}:{self.port}", flush=True)
            print(
                f"walk kernel: {n_threads} thread(s), "
                f"{_native.thread_support()} backend",
                flush=True,
            )
        await self._stopped.wait()
        return self._exit_code

    def _install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        for sig in (getattr(signal, "SIGTERM", None), getattr(signal, "SIGINT", None)):
            if sig is None:
                continue
            try:
                loop.add_signal_handler(sig, self.initiate_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-POSIX loop or non-main thread: best-effort fallback.
                try:
                    signal.signal(
                        sig,
                        lambda *_: loop.call_soon_threadsafe(self.initiate_drain),
                    )
                except (ValueError, OSError):
                    pass

    def initiate_drain(self) -> None:
        """Begin the graceful drain (idempotent; safe from a signal handler)."""
        if self._draining or self._loop is None:
            return
        self._draining = True
        self._ready = False
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        assert self._loop is not None and self._wake is not None
        self._drain_guard = self._loop.call_later(
            self.config.drain_timeout_s, self._drain_expired
        )
        if self._server is not None:
            self._server.close()
        # Queued-but-undispatched requests answer 503 immediately; the
        # in-flight pack (if any) runs to completion below.
        while self._queue:
            pending = self._queue.popleft()
            self.counters.rejected_draining += 1
            self._resolve(
                pending,
                503,
                {"error": "draining", "name": pending.unit.resolved_graph_name},
            )
        self._closing = True
        self._wake.set()
        if self._batcher is not None:
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        # Let connection handlers flush the final responses.
        await asyncio.sleep(0.05)
        await self._shutdown(0)

    def _drain_expired(self) -> None:
        if self._finished:
            return
        if self.config.exit_on_drain_timeout:
            # The in-flight pack refused to die within the grace window;
            # abandon everything.  The shm sweep on next start reclaims
            # whatever this leaves behind.
            os._exit(1)
        if self._loop is not None:
            self._loop.create_task(self._shutdown(1, force=True))

    async def _shutdown(self, code: int, *, force: bool = False) -> None:
        if self._finished:
            return
        self._finished = True
        self._exit_code = code
        if self._drain_guard is not None:
            self._drain_guard.cancel()
        if force and self._batcher is not None:
            self._batcher.cancel()
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), 1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pass
        for writer in list(self._writers):
            writer.close()
        if self._worker is not None:
            self._worker.shutdown(wait=False, cancel_futures=force)
        shm_manifest.release_all()
        if self._tmp_cache_dir is not None:
            try:
                self._tmp_cache_dir.cleanup()
            except OSError:
                pass
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except HttpError as exc:
                    self.counters.bad_requests += 1
                    self.counters.count_response(exc.status)
                    writer.write(
                        response_bytes(
                            exc.status, {"error": exc.detail}, close=True
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    status, payload, headers = await self._route(request)
                except Exception as exc:  # route bugs must not drop the conn
                    status, payload, headers = (
                        500,
                        {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"},
                        {},
                    )
                close = request.wants_close or self._draining
                self.counters.count_response(status)
                writer.write(response_bytes(status, payload, headers, close=close))
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _route(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if request.path == "/healthz":
            if request.method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return 200, {"status": "ok"}, {}
        if request.path == "/readyz":
            if request.method != "GET":
                return 405, {"error": "method not allowed"}, {}
            if self._ready and not self._draining:
                # Degraded rungs don't fail readiness — every rung serves
                # bit-identical results — but operators get to see them.
                return 200, {
                    "status": "ready",
                    "degraded": resources.governor().degraded(),
                }, {}
            return 503, {"status": "draining" if self._draining else "warming"}, {}
        if request.path == "/stats":
            if request.method != "GET":
                return 405, {"error": "method not allowed"}, {}
            return 200, self._stats_payload(), {}
        if request.path == "/layer":
            if request.method != "POST":
                return 405, {"error": "method not allowed"}, {}
            return await self._layer(request)
        return 404, {"error": f"no such endpoint {request.path!r}"}, {}

    def _stats_payload(self) -> dict[str, Any]:
        counters = self.counters
        governor = resources.governor()
        payload: dict[str, Any] = {
            "accepted": counters.accepted,
            "rejected_overload": counters.rejected_overload,
            "rejected_oversize": counters.rejected_oversize,
            "rejected_draining": counters.rejected_draining,
            "bad_requests": counters.bad_requests,
            "batches": counters.batches,
            "batched_cells": counters.batched_cells,
            "crash_requeues": counters.crash_requeues,
            "responses": dict(counters.responses),
            "queue_depth": len(self._queue),
            "inflight": self._inflight,
            "ready": self._ready,
            "draining": self._draining,
            "resources": {
                "memory_budget_bytes": self.config.memory_budget,
                "degraded": governor.degraded(),
                "breakers": governor.snapshot(),
            },
        }
        if self._cache is not None:
            hits = self._cache.hit_stats()
            payload["cache"] = {
                "memory_hits": hits.memory_hits,
                "memory_misses": hits.memory_misses,
                "disk_hits": hits.disk_hits,
                "disk_misses": hits.disk_misses,
            }
        return payload

    async def _layer(
        self, request: HttpRequest
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        assert self._loop is not None and self._wake is not None
        if self._draining:
            self.counters.rejected_draining += 1
            return 503, {"error": "draining"}, {}
        if len(self._queue) >= self.config.max_queue:
            self.counters.rejected_overload += 1
            retry_after = self.config.retry_after_s
            return (
                429,
                {"error": "overloaded", "retry_after_s": retry_after},
                {"Retry-After": str(max(1, math.ceil(retry_after)))},
            )
        try:
            payload = request.json()
            unit, budget = build_unit(
                payload,
                default_deadline_s=self.config.request_timeout_s,
                max_deadline_s=self.config.max_request_timeout_s,
            )
        except HttpError as exc:
            self.counters.bad_requests += 1
            return exc.status, {"error": exc.detail}, {}
        except ReproError as exc:
            self.counters.bad_requests += 1
            return 400, {"error": "bad request", "detail": str(exc)}, {}
        if self.config.memory_budget is not None:
            spec = unit.method
            aco = dict(spec.aco_params or {})
            estimate = resources.estimate_pack_cost(
                [unit.graph],
                n_colonies=spec.n_colonies,
                n_ants=int(aco.get("n_ants", 10)),
                n_tours=int(aco.get("n_tours", 10)),
                alpha=float(aco.get("alpha", 1.0)),
            )
            if estimate.bytes > self.config.memory_budget:
                self.counters.rejected_oversize += 1
                return (
                    413,
                    {
                        "error": "request exceeds the server memory budget",
                        "name": unit.resolved_graph_name,
                        "memory_budget_bytes": self.config.memory_budget,
                        "estimate": estimate.as_dict(),
                    },
                    {},
                )
        pending = _Pending(
            unit=unit,
            budget=budget,
            deadline=time.monotonic() + budget,
            future=self._loop.create_future(),
            retries_left=self.config.crash_retries,
        )
        self.counters.accepted += 1
        self._queue.append(pending)
        self._wake.set()
        try:
            status, body = await asyncio.wait_for(
                pending.future, budget + RESPONSE_GRACE
            )
        except asyncio.TimeoutError:
            status, body = 504, {
                "error": "deadline",
                "kind": "timeout",
                "name": unit.resolved_graph_name,
                "detail": f"no result within the {budget:.6g}s request budget",
            }
        return status, body, {}

    # ------------------------------------------------------------------ #
    # batching
    # ------------------------------------------------------------------ #

    async def _batch_loop(self) -> None:
        assert self._loop is not None and self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._closing and not self._queue:
                return
            if not self._queue:
                continue
            if self.config.batch_window_s > 0 and not self._closing:
                # The coalescing window: one short sleep after the first
                # miss lets a concurrent burst land in the same megabatch.
                await asyncio.sleep(self.config.batch_window_s)
            batch: list[_Pending] = []
            while self._queue:
                batch.append(self._queue.popleft())
            if not batch:
                continue
            self._inflight = len(batch)
            try:
                await self._loop.run_in_executor(
                    self._worker, self._run_batch, batch
                )
            finally:
                self._inflight = 0

    def _run_batch(self, batch: list[_Pending]) -> None:
        """Worker-thread entry: one drained batch → one engine run."""
        now = time.monotonic()
        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline - now <= 0:
                self._resolve_threadsafe(
                    pending,
                    504,
                    {
                        "error": "deadline",
                        "kind": "timeout",
                        "name": pending.unit.resolved_graph_name,
                        "detail": "request budget expired while queued",
                    },
                )
            else:
                live.append(pending)
        if not live:
            return
        # The tightest remaining budget in the batch becomes the engine's
        # per-cell deadline: the pack budget (deadline × survivors, PR 6
        # semantics) then bounds the whole megabatch, and no member can be
        # held past its own deadline by a slower batch-mate's allowance.
        cell_timeout = max(
            MIN_CELL_TIMEOUT, min(p.deadline - now for p in live)
        )
        engine = ExperimentEngine(
            executor="batched",
            batch_size=self.config.batch_size,
            cache=self._cache,
            cell_timeout=cell_timeout,
            jobs=self.config.jobs,
            memory_budget=self.config.memory_budget,
        )
        self.counters.batches += 1
        self.counters.batched_cells += len(live)
        try:
            results = engine.run([p.unit for p in live])
        except BaseException as exc:  # engine bugs must not kill the loop
            detail = f"{type(exc).__name__}: {exc}"
            for pending in live:
                self._resolve_threadsafe(
                    pending,
                    500,
                    {
                        "error": "batch failed",
                        "kind": "exception",
                        "name": pending.unit.resolved_graph_name,
                        "detail": detail,
                    },
                )
            return
        for pending, cell in zip(live, results):
            self._finish(pending, cell)

    def _finish(self, pending: _Pending, cell: CellResult) -> None:
        """Map one cell outcome onto the pending request (worker thread)."""
        if cell.ok:
            self._resolve_threadsafe(
                pending, 200, _success_payload(cell, pending.attempts)
            )
            return
        error = cell.error
        assert error is not None
        if error.kind == "crash" and pending.retries_left > 0 and not self._draining:
            pending.retries_left -= 1
            pending.attempts += 1
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._requeue, pending)
            return
        if error.kind == "timeout":
            self._resolve_threadsafe(
                pending,
                504,
                {
                    "error": "deadline",
                    "kind": "timeout",
                    "name": cell.graph_name,
                    "detail": error.message,
                },
            )
            return
        self._resolve_threadsafe(
            pending,
            500,
            {
                "error": "cell failed",
                "kind": error.kind,
                "exc_type": error.exc_type,
                "name": cell.graph_name,
                "detail": error.message,
            },
        )

    def _requeue(self, pending: _Pending) -> None:
        """Loop-thread re-admission of a crash-kind failure (bounded)."""
        assert self._wake is not None
        if self._draining:
            self.counters.rejected_draining += 1
            self._resolve(
                pending,
                503,
                {"error": "draining", "name": pending.unit.resolved_graph_name},
            )
            return
        self.counters.crash_requeues += 1
        self._queue.append(pending)
        self._wake.set()

    # ------------------------------------------------------------------ #
    # future plumbing
    # ------------------------------------------------------------------ #

    def _resolve(
        self, pending: _Pending, status: int, body: dict[str, Any]
    ) -> None:
        if not pending.future.done():
            pending.future.set_result((status, body))

    def _resolve_threadsafe(
        self, pending: _Pending, status: int, body: dict[str, Any]
    ) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._resolve, pending, status, body)


def _prewarm_runtime() -> None:
    # Imported lazily so `import repro.serving.server` stays cheap.
    from repro.aco.runtime import prewarm

    prewarm()


def serve(config: ServeConfig | None = None) -> int:
    """Blocking entry point: run a :class:`LayoutServer` until drained."""
    server = LayoutServer(config)
    return asyncio.run(server.run())
