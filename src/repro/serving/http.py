"""A minimal HTTP/1.1 layer over asyncio streams.

Just enough protocol for the layout service: request-line + header parsing,
``Content-Length`` bodies, keep-alive by default, JSON responses.  No
chunked encoding, no TLS, no multipart — callers that need a real edge put
a reverse proxy in front.  Kept separate from the server so the protocol
plumbing can be unit-tested without a running service and reused by the
load generator's client side.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "HttpError",
    "HttpRequest",
    "REASONS",
    "read_request",
    "response_bytes",
]

#: Reason phrases for every status the service emits.
REASONS: dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on the request head (request line + headers) in bytes.
MAX_HEAD_BYTES = 32 * 1024

#: Default upper bound on request bodies (an ~100k-vertex graph JSON).
DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024


class HttpError(Exception):
    """A protocol-level request defect, carrying the status to answer with."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def wants_close(self) -> bool:
        """Whether the client asked to drop the connection after the response."""
        return self.headers.get("connection", "").lower() == "close"

    def json(self) -> Any:
        """Decode the body as JSON (:class:`HttpError` 400 on garbage)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one request off *reader*.

    Returns ``None`` when the peer closed the connection cleanly before
    sending a request line (the keep-alive idle case); raises
    :class:`HttpError` on malformed input, which the caller answers and
    then closes on.
    """
    try:
        request_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request line too long") from exc
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, path, _version = parts

    headers: dict[str, str] = {}
    head_bytes = len(request_line)
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise HttpError(400, "truncated headers") from exc
        head_bytes += len(line)
        if head_bytes > MAX_HEAD_BYTES:
            raise HttpError(400, "request head too large")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "non-numeric Content-Length") from exc
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, f"request body exceeds {max_body_bytes} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "request body shorter than Content-Length") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def response_bytes(
    status: int,
    payload: Mapping[str, Any] | bytes,
    headers: Mapping[str, str] | None = None,
    *,
    close: bool = False,
) -> bytes:
    """Serialise one response.  Dict payloads become ``application/json``.

    Responses are rendered with sorted keys so a repeated request yields a
    byte-identical body — the chaos acceptance test compares whole tables
    across fault-free and faulted runs.
    """
    if isinstance(payload, bytes):
        body = payload
        content_type = "application/octet-stream"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        content_type = "application/json"
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"content-type: {content_type}",
        f"content-length: {len(body)}",
        f"connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
