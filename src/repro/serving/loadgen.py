"""Open-loop load generator for the layout service.

Fires requests at a fixed arrival rate regardless of completions (the
open-loop discipline: a slow server faces a growing backlog instead of a
politely self-throttling client, which is what makes p99 under load an
honest number).  Used by ``benchmarks/emit_serving_bench.py`` and the CI
serving-smoke job; importable so tests can drive a server in-process.

The client side speaks the same minimal HTTP/1.1 as the server, one
connection per request (``Connection: close``) so no pooling artefact
hides queueing behaviour.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["LoadReport", "percentile", "request_once", "run_load", "run_load_sync"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 1]) of *values*."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass
class LoadReport:
    """Outcome of one load run: throughput, latency spread, status mix."""

    sent: int = 0
    completed: int = 0
    connect_errors: int = 0
    duration_s: float = 0.0
    by_status: dict[str, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def requests_per_s(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Benchmark-file form: summary numbers only, no raw latency list."""
        return {
            "sent": self.sent,
            "completed": self.completed,
            "connect_errors": self.connect_errors,
            "duration_s": self.duration_s,
            "requests_per_s": self.requests_per_s,
            "by_status": dict(sorted(self.by_status.items())),
            "latency_ms": {
                "p50": percentile(self.latencies_ms, 0.50),
                "p99": percentile(self.latencies_ms, 0.99),
                "mean": (
                    sum(self.latencies_ms) / len(self.latencies_ms)
                    if self.latencies_ms
                    else 0.0
                ),
            },
        }


async def request_once(
    host: str,
    port: int,
    payload: Mapping[str, Any],
    *,
    path: str = "/layer",
    method: str = "POST",
    timeout_s: float = 30.0,
) -> tuple[int, dict[str, Any]]:
    """One request over a fresh connection; returns (status, decoded body).

    Status ``0`` means the connection itself failed (refused, reset,
    timed out) — the server never answered.
    """
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"host: {host}\r\n"
        "content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
        "connection: close\r\n\r\n"
    ).encode("latin-1")
    try:
        async with asyncio.timeout(timeout_s):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(head + body)
                await writer.drain()
                status_line = await reader.readline()
                parts = status_line.split()
                if len(parts) < 2:
                    return 0, {"error": "malformed status line"}
                status = int(parts[1])
                raw = status_line + await reader.read()
                _, _, response_body = raw.partition(b"\r\n\r\n")
                try:
                    decoded = json.loads(response_body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = {}
                return status, decoded if isinstance(decoded, dict) else {}
            finally:
                writer.close()
    except (OSError, asyncio.TimeoutError, ValueError):
        return 0, {"error": "connection failed"}


async def run_load(
    host: str,
    port: int,
    payloads: Sequence[Mapping[str, Any]],
    *,
    total: int,
    rate_per_s: float,
    timeout_s: float = 30.0,
) -> LoadReport:
    """Drive *total* requests at *rate_per_s*, cycling through *payloads*.

    Open loop: request ``i`` launches at ``i / rate_per_s`` whether or not
    earlier requests have finished.  Returns once every launched request
    has completed or failed.
    """
    if not payloads:
        raise ValueError("need at least one request payload")
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
    report = LoadReport()
    interval = 1.0 / rate_per_s
    started = time.perf_counter()

    async def one(index: int) -> None:
        launch_at = started + index * interval
        delay = launch_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        begin = time.perf_counter()
        status, _body = await request_once(
            host, port, payloads[index % len(payloads)], timeout_s=timeout_s
        )
        elapsed_ms = (time.perf_counter() - begin) * 1000.0
        if status == 0:
            report.connect_errors += 1
        else:
            report.completed += 1
            report.latencies_ms.append(elapsed_ms)
        key = str(status)
        report.by_status[key] = report.by_status.get(key, 0) + 1

    report.sent = total
    await asyncio.gather(*(one(i) for i in range(total)))
    report.duration_s = time.perf_counter() - started
    return report


def run_load_sync(
    host: str,
    port: int,
    payloads: Sequence[Mapping[str, Any]],
    *,
    total: int,
    rate_per_s: float,
    timeout_s: float = 30.0,
) -> LoadReport:
    """Blocking wrapper around :func:`run_load` for CLI/benchmark callers."""
    return asyncio.run(
        run_load(
            host,
            port,
            payloads,
            total=total,
            rate_per_s=rate_per_s,
            timeout_s=timeout_s,
        )
    )
