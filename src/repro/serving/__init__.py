"""Layout-as-a-service: the ``repro-dag serve`` subsystem.

An asyncio HTTP/JSON front end (:mod:`repro.serving.server`) that answers
repeat layering requests from the two-layer result cache and coalesces
concurrent misses into cross-graph megabatches via the experiment engine's
``"batched"`` executor, plus the minimal HTTP plumbing
(:mod:`repro.serving.http`) and an open-loop load generator
(:mod:`repro.serving.loadgen`).
"""

from repro.serving.server import LayoutServer, ServeConfig, build_unit, serve

__all__ = ["LayoutServer", "ServeConfig", "build_unit", "serve"]
