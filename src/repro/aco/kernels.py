"""Array-native kernels for the ACO hot path.

The ant walk is inherently sequential — every construction step re-reads the
layer widths left behind by the previous step — so the vectorization axis is
*across ants*: all ants of a tour advance one vertex per kernel step, and
every per-step quantity (layer spans, candidate widths, heuristic values,
scores, selections) is computed for the whole colony with a handful of
``(n_ants, n_layers + 1)`` NumPy operations instead of thousands of tiny
per-vertex calls.

Bit-identical engines
---------------------

The per-vertex reference walk (``ACOParams(engine="python")``) and the
batched walk (``engine="vectorized"``) must produce *bit-identical*
assignments, objectives and tour histories for a fixed seed.  Three shared
protocols guarantee this:

1. **Randomness** — :func:`draw_walk_randomness` draws, per walk, the vertex
   order followed by one uniform array ``u`` (only when the effective
   exploitation probability ``q0 < 1``).  ``numpy``'s ``Generator.random(n)``
   produces the same doubles as ``n`` successive scalar draws, so both
   engines consume the generator identically, and pre-drawing decouples the
   randomness from the execution order (which is what lets the batched
   engine interleave ants).
2. **Scoring** — :func:`fused_pow` is the single definition of
   ``x ** exponent`` used by both engines.  Small integer exponents are
   decomposed into multiplications (``x*x*x`` is faster than, and not
   bit-equal to, ``np.power(x, 3.0)``, so the decomposition must be shared).
   All other score arithmetic keeps the exact element-wise operation order of
   :meth:`repro.aco.heuristic.LayerWidths.eta`.
3. **Selection** — :func:`select_from_scores` implements the degenerate
   fallback, the pseudo-random-proportional exploit test and roulette
   sampling (``searchsorted`` on the sequential cumulative sum).  The batched
   engine evaluates the same decisions on zero-masked full layer rows; a
   zero prefix leaves a sequential cumulative sum bit-unchanged, so the
   roulette index is the same in both views.

Degenerate scores (all-zero, non-finite) fall back to a uniform choice from
``u`` when it exists and to the lower span bound in pure-argmax mode; the
latter is the one deliberate behaviour change versus the historical code
(which consumed an extra generator draw on a path that finite ``tau``/``eta``
floors make unreachable in practice).
"""

from __future__ import annotations

import numpy as np

from repro.aco import _native
from repro.aco.heuristic import AssignmentScore, LayerWidths, compact_ranks
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem
from repro.utils import resources

__all__ = [
    "fused_pow",
    "select_from_scores",
    "draw_walk_randomness",
    "batched_layer_spans",
    "run_walks_batch",
    "run_walks_packed",
    "run_tour_vectorized",
    "evaluate_assignment_vectorized",
]


# ---------------------------------------------------------------------- #
# shared scoring / selection primitives
# ---------------------------------------------------------------------- #


def fused_pow(x: np.ndarray, exponent: float) -> np.ndarray:
    """``x ** exponent`` with small integer exponents decomposed into products.

    This is the single power implementation shared by both walk engines, so
    the decomposition (which is not bit-equal to ``np.power`` for exponents
    above 2) cannot cause engine divergence.  ``exponent`` is validated to be
    non-negative by :class:`~repro.aco.params.ACOParams`.
    """
    if exponent == 1.0:
        return x
    if exponent == 0.0:
        return np.ones_like(x)
    if exponent == 2.0:
        return x * x
    if exponent == 3.0:
        return x * x * x
    if exponent == 4.0:
        sq = x * x
        return sq * sq
    if exponent == 5.0:
        sq = x * x
        return sq * sq * x
    return np.power(x, exponent)


def select_from_scores(
    scores: np.ndarray, k: int, q0: float, u: float | None
) -> int:
    """Pick a span-relative index from a non-negative score vector of length *k*.

    The shared selection protocol:

    * all-zero / non-finite scores fall back to ``int(u * k)`` (or index 0
      when no uniform was drawn, i.e. in pure-argmax mode);
    * with probability ``q0`` (decided by ``u < q0``) the best index wins;
    * otherwise roulette: ``searchsorted`` of ``t * total`` on the sequential
      cumulative sum, with ``t = (u - q0) / (1 - q0)`` the exploration
      uniform rescaled to ``[0, 1)``.
    """
    best = int(scores.argmax())
    m = scores[best]
    if not (m > 0.0) or m == np.inf:  # not-> also catches NaN
        if u is None:
            return 0
        idx = int(u * k)
        return k - 1 if idx >= k else idx
    if q0 >= 1.0 or (q0 > 0.0 and u < q0):
        return best
    cumulative = np.cumsum(scores)
    total = cumulative[-1]
    if not np.isfinite(total) or total <= 0.0:
        idx = int(u * k)
        return k - 1 if idx >= k else idx
    t = (u - q0) / (1.0 - q0)
    idx = int(np.searchsorted(cumulative, t * total, side="right"))
    return k - 1 if idx >= k else idx


def draw_walk_randomness(
    problem: LayeringProblem, params: ACOParams, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray | None]:
    """Draw everything one walk consumes from *rng*: the vertex order, then
    one uniform per visit (skipped entirely in pure-argmax mode).

    Both engines call this at the start of every walk, in ant order, so the
    generator stream is consumed identically no matter how the walks are
    executed afterwards.
    """
    if params.vertex_order == "bfs":
        order = problem.random_bfs_order(rng)
    elif params.vertex_order == "topological":
        order = problem.random_topological_order(rng)
    else:
        order = problem.random_order(rng)
    u = rng.random(problem.n_vertices) if params.exploitation_probability < 1.0 else None
    return order, u


# ---------------------------------------------------------------------- #
# batched primitives
# ---------------------------------------------------------------------- #


def _csr_gather(
    indptr: np.ndarray, indices: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the ragged CSR neighbour segments of ``v`` into two aligned arrays.

    Returns ``(owner, neighbours)`` where ``neighbours`` is the concatenation
    of every row's neighbour segment ``indices[indptr[v[a]]:indptr[v[a]+1]]``
    and ``owner[j]`` names the row the ``j``-th neighbour belongs to.  This is
    the O(E-touched) building block behind the batched span bounds — no
    rectangular padded matrix is ever materialised.
    """
    start = indptr[v]
    count = indptr[v + 1] - start
    total = int(count.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    owner = np.repeat(np.arange(v.shape[0]), count)
    seg_start = np.cumsum(count) - count
    within = np.arange(total) - seg_start[owner]
    return owner, indices[start[owner] + within]


def batched_layer_spans(
    problem: LayeringProblem, assignment_ext: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Feasible layer spans of vertex ``v[a]`` under each ant's assignment.

    *assignment_ext* is the per-ant assignment matrix (row ``a`` holds ant
    ``a``'s layers; only the first ``n_vertices`` columns are read, so the
    historical two-sentinel-column extended matrix is still accepted).  The
    bounds come straight from the CSR adjacency: a segmented ``max`` over
    each vertex's successors (``+1``) and a segmented ``min`` over its
    predecessors (``-1``), with the empty-segment identities layer ``0`` and
    ``n_layers + 1``.
    """
    n_rows = assignment_ext.shape[0]
    lo = np.zeros(n_rows, dtype=np.int64)
    owner, nbrs = _csr_gather(problem.succ_indptr, problem.succ_indices, v)
    if owner.size:
        np.maximum.at(lo, owner, assignment_ext[owner, nbrs])
    lo += 1
    hi = np.full(n_rows, problem.n_layers + 1, dtype=np.int64)
    owner, nbrs = _csr_gather(problem.pred_indptr, problem.pred_indices, v)
    if owner.size:
        np.minimum.at(hi, owner, assignment_ext[owner, nbrs])
    hi -= 1
    return lo, hi


def evaluate_assignment_vectorized(
    problem: LayeringProblem, assignment: np.ndarray
) -> AssignmentScore:
    """Score an assignment from scratch with array-native operations.

    Height, dummy count and the per-layer dummy occupancy are exact integer
    computations; the real-width sums use ``np.bincount`` and can differ from
    the sequential reference :func:`repro.aco.heuristic.evaluate_assignment`
    in the last float ulp (the two are interchangeable everywhere the
    reference's ``pytest.approx``-level accuracy is).
    """
    height, compact = compact_ranks(problem, assignment)
    real = np.bincount(compact, weights=problem.widths, minlength=height + 1)
    dummies = 0
    totals = real
    if len(problem.edge_src):
        spans = compact[problem.edge_src] - compact[problem.edge_dst]
        dummies = int(spans.sum()) - len(spans)
        if problem.nd_width > 0 and dummies:
            # One dummy on every layer strictly between head and tail:
            # accumulate interval endpoints, then prefix-sum.
            delta = np.zeros(height + 2, dtype=np.int64)
            np.add.at(delta, compact[problem.edge_dst] + 1, 1)
            np.add.at(delta, compact[problem.edge_src], -1)
            crossing = np.cumsum(delta[: height + 1])
            totals = real + problem.nd_width * crossing
    width_incl = float(totals[1:].max()) if height else 0.0
    denom = height + width_incl
    return AssignmentScore(
        objective=1.0 / denom if denom > 0 else 0.0,
        height=height,
        width_including_dummies=width_incl,
        dummy_vertex_count=dummies,
    )


# ---------------------------------------------------------------------- #
# the lockstep tour
# ---------------------------------------------------------------------- #


def _native_walks_guarded(
    native_lib: object,
    *,
    n_tasks: int,
    assignment: np.ndarray,
    real: np.ndarray,
    crossing: np.ndarray,
    occupancy: np.ndarray,
    **native_kwargs: object,
) -> np.ndarray | None:
    """Run the native kernel under the resource governor's breakers.

    Two degradation rungs apply, in order: an open ``native-kernel``
    breaker skips the native library entirely (the NumPy lockstep is
    bit-identical, so the fallback is invisible in results); an open
    ``native-threads`` breaker keeps the native kernel but forces a
    single-threaded call.  The kernel mutates ``real``/``crossing``/
    ``occupancy`` in place, so they are snapshotted before the attempt and
    restored on failure — the NumPy fallback must start from the exact
    pre-call layer state or bit-identity is lost.

    Returns the assignment array on success, ``None`` when the caller
    should take the NumPy fallback.
    """
    governor = resources.governor()
    if not governor.allow("native-kernel"):
        return None
    n_threads = _native.effective_threads(n_tasks=n_tasks)
    if n_threads > 1 and not governor.allow("native-threads"):
        n_threads = 1
    saved = (real.copy(), crossing.copy(), occupancy.copy())
    try:
        _native.run_walks_native(
            native_lib,
            n_threads=n_threads,
            assignment=assignment,
            real=real,
            crossing=crossing,
            occupancy=occupancy,
            **native_kwargs,
        )
    except Exception as exc:  # noqa: BLE001 - any native fault degrades
        real[:], crossing[:], occupancy[:] = saved
        rung = "native-threads" if n_threads > 1 else "native-kernel"
        governor.record_failure(rung, f"{type(exc).__name__}: {exc}")
        return None
    governor.record_success("native-kernel")
    if n_threads > 1:
        governor.record_success("native-threads")
    return assignment


def run_walks_batch(
    problem: LayeringProblem,
    params: ACOParams,
    tau_pow: np.ndarray,
    tau_index: np.ndarray,
    orders: np.ndarray,
    uniforms: np.ndarray | None,
    base_assignment: np.ndarray,
    real: np.ndarray,
    crossing: np.ndarray,
    occupancy: np.ndarray,
) -> np.ndarray:
    """Run a batch of complete walks in lockstep and return the assignments.

    The batch axis is *walks*, not ants of one colony: ``tau_pow`` is a
    contiguous ``(n_matrices, n_vertices, n_cols)`` stack of pre-powered
    pheromone matrices and ``tau_index[a]`` names the matrix walk ``a``
    reads, so one call can sweep the ants of several independent colonies
    (the shared-memory multi-colony runtime batches 8 colonies × 10 ants
    into one 80-walk call).  ``base_assignment`` is either one row
    (broadcast to every walk) or one row per walk; ``real``/``crossing``/
    ``occupancy`` are per-walk ``(n_walks, n_cols)`` arrays mutated in
    place.  Returns the final ``(n_walks, n_vertices)`` assignments.

    Every walk is bit-identical to :meth:`repro.aco.ant.Ant.perform_walk`
    run sequentially on its own colony's generator stream.
    """
    n_ants = orders.shape[0]
    n = problem.n_vertices
    n_cols = problem.n_layers + 1

    beta = params.beta
    epsilon = params.eta_epsilon
    nd_width = problem.nd_width
    q0 = params.exploitation_probability
    explore_possible = q0 < 1.0

    # Prefer the compiled backend (one C call per batch, same bit-exact
    # protocol); fall back to the NumPy lockstep below when it is absent or
    # cannot replicate a non-integer beta exponent.
    native_lib = _native.load_native() if _native.native_supports(beta) else None
    if native_lib is not None:
        assignment = np.empty((n_ants, n), dtype=np.int64)
        assignment[:] = base_assignment
        result = _native_walks_guarded(
            native_lib,
            n_tasks=n_ants,
            orders=orders,
            uniforms=uniforms,
            succ_indptr=problem.succ_indptr,
            succ_indices=problem.succ_indices,
            pred_indptr=problem.pred_indptr,
            pred_indices=problem.pred_indices,
            out_degree=problem.out_degree,
            in_degree=problem.in_degree,
            vertex_widths=problem.widths,
            tau=tau_pow,
            tau_index=tau_index,
            beta=beta,
            nd_width=nd_width,
            epsilon=epsilon,
            q0=q0,
            assignment=assignment,
            real=real,
            crossing=crossing,
            occupancy=occupancy,
        )
        if result is not None:
            return result

    # NumPy fallback: the shared lockstep core with uniform per-walk
    # parameters (every walk is the same graph at offset zero).
    return _lockstep_walks(
        succ_indptr=problem.succ_indptr,
        succ_indices=problem.succ_indices,
        pred_indptr=problem.pred_indptr,
        pred_indices=problem.pred_indices,
        widths=problem.widths,
        out_degree=problem.out_degree,
        in_degree=problem.in_degree,
        steps=np.full(n_ants, n, dtype=np.int64),
        voff=np.zeros(n_ants, dtype=np.int64),
        ibase=np.zeros(n_ants, dtype=np.int64),
        layers_w=np.full(n_ants, problem.n_layers, dtype=np.int64),
        max_n=n,
        max_cols=n_cols,
        params=params,
        nd_width=nd_width,
        tau_pow=tau_pow,
        tau_index=tau_index,
        orders=orders,
        uniforms=uniforms,
        base_assignment=base_assignment,
        real=real,
        crossing=crossing,
        occupancy=occupancy,
    )


def run_walks_packed(
    packed,
    params: ACOParams,
    tau_pow: np.ndarray,
    tau_index: np.ndarray,
    walk_graph: np.ndarray,
    orders: np.ndarray,
    uniforms: np.ndarray | None,
    base_assignment: np.ndarray,
    real: np.ndarray,
    crossing: np.ndarray,
    occupancy: np.ndarray,
) -> np.ndarray:
    """Run walks belonging to *different graphs* in one lockstep sweep.

    The cross-graph twin of :func:`run_walks_batch`: *packed* is a
    :class:`~repro.aco.problem.PackedProblems`, ``walk_graph[a]`` names the
    graph walk ``a`` builds a layering for, and every per-walk row (orders,
    uniforms, assignments, layer-state) is padded to the pack-wide strides
    ``max_n_vertices`` / ``max_n_cols``.  Walks of graphs smaller than the
    pack maximum terminate early (masked out of later steps), and every
    per-step quantity is computed with exactly the element-wise operations
    of the single-graph batch, so each walk is bit-identical to running it
    through its own graph's :func:`run_walks_batch`.

    ``tau_pow`` is a contiguous ``(n_matrices, max_n_vertices, max_n_cols)``
    stack of zero-padded pre-powered pheromone matrices; ``tau_index[a]``
    names the matrix walk ``a`` reads (one per colony per graph).  Padded
    tau entries never influence a decision: the feasibility mask confines
    scores to ``[lo, hi] ⊆ [1, n_layers_g]``.

    Returns the final ``(n_walks, max_n_vertices)`` assignments; rows are
    meaningful only up to each walk's own vertex count.
    """
    n_walks = orders.shape[0]
    max_n = packed.max_n_vertices
    max_cols = packed.max_n_cols

    beta = params.beta
    epsilon = params.eta_epsilon
    nd_width = packed.nd_width
    q0 = params.exploitation_probability

    steps = packed.n_vertices_per[walk_graph]
    voff = packed.vert_offset[walk_graph]
    layers_w = packed.n_layers_per[walk_graph]

    native_lib = _native.load_native() if _native.native_supports(beta) else None
    if native_lib is not None:
        assignment = np.empty((n_walks, max_n), dtype=np.int64)
        assignment[:] = base_assignment
        result = _native_walks_guarded(
            native_lib,
            n_tasks=n_walks,
            orders=orders,
            uniforms=uniforms,
            succ_indptr=packed.succ_indptr,
            succ_indices=packed.succ_indices,
            pred_indptr=packed.pred_indptr,
            pred_indices=packed.pred_indices,
            out_degree=packed.out_degree,
            in_degree=packed.in_degree,
            vertex_widths=packed.widths,
            tau=tau_pow,
            tau_index=tau_index,
            beta=beta,
            nd_width=nd_width,
            epsilon=epsilon,
            q0=q0,
            assignment=assignment,
            real=real,
            crossing=crossing,
            occupancy=occupancy,
            walk_steps=np.ascontiguousarray(steps),
            walk_vbase=np.ascontiguousarray(voff),
            walk_ibase=np.ascontiguousarray(packed.indptr_offset[walk_graph]),
            walk_layers=np.ascontiguousarray(layers_w),
        )
        if result is not None:
            return result

    return _lockstep_walks(
        succ_indptr=packed.succ_indptr,
        succ_indices=packed.succ_indices,
        pred_indptr=packed.pred_indptr,
        pred_indices=packed.pred_indices,
        widths=packed.widths,
        out_degree=packed.out_degree,
        in_degree=packed.in_degree,
        steps=steps,
        voff=voff,
        ibase=packed.indptr_offset[walk_graph],
        layers_w=layers_w,
        max_n=max_n,
        max_cols=max_cols,
        params=params,
        nd_width=nd_width,
        tau_pow=tau_pow,
        tau_index=tau_index,
        orders=orders,
        uniforms=uniforms,
        base_assignment=base_assignment,
        real=real,
        crossing=crossing,
        occupancy=occupancy,
    )


def _lockstep_walks(
    *,
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    widths: np.ndarray,
    out_degree: np.ndarray,
    in_degree: np.ndarray,
    steps: np.ndarray,
    voff: np.ndarray,
    ibase: np.ndarray,
    layers_w: np.ndarray,
    max_n: int,
    max_cols: int,
    params: ACOParams,
    nd_width: float,
    tau_pow: np.ndarray,
    tau_index: np.ndarray,
    orders: np.ndarray,
    uniforms: np.ndarray | None,
    base_assignment: np.ndarray,
    real: np.ndarray,
    crossing: np.ndarray,
    occupancy: np.ndarray,
) -> np.ndarray:
    """The one NumPy lockstep walk loop shared by both batch entry points.

    ``run_walks_batch`` calls it with uniform per-walk parameters (one
    graph, offset zero); ``run_walks_packed`` with the packed per-walk
    steps/offsets/layer counts.  Keeping a single implementation is what
    protects the bit-identity contract between the serial and batched
    executors from the two copies drifting apart — the same altitude the C
    kernel takes with its nullable per-walk arrays.

    The adjacency is CSR-only: ``ibase[a]`` offsets walk ``a``'s vertices
    into the (possibly packed) ``indptr`` arrays, and the span bounds are
    segmented ``max``/``min`` reductions over the ragged neighbour gathers —
    O(V+E) state, no rectangular padded matrices at any point.
    """
    n_walks = orders.shape[0]
    beta = params.beta
    epsilon = params.eta_epsilon
    q0 = params.exploitation_probability
    explore_possible = q0 < 1.0

    assignment = np.empty((n_walks, max_n), dtype=np.int64)
    assignment[:] = base_assignment

    cols = np.arange(max_cols)

    for step in range(max_n):
        # Masked termination: only walks whose graph still has vertices to
        # place advance on this step.
        act = np.flatnonzero(steps > step)
        if act.size == 0:
            break
        rows = np.arange(act.size)
        v = orders[act, step]
        gv = voff[act] + v
        iv = ibase[act] + v
        current = assignment[act, v]
        # Span bounds from the CSR segments: segmented max over successors
        # (empty-segment identity: layer 0), segmented min over predecessors
        # (identity: this walk's n_layers + 1) — integer-exact, so identical
        # to any padded-gather formulation.
        lo = np.zeros(act.size, dtype=np.int64)
        owner, nbrs = _csr_gather(succ_indptr, succ_indices, iv)
        if owner.size:
            np.maximum.at(lo, owner, assignment[act[owner], nbrs])
        lo += 1
        hi = layers_w[act] + 1
        owner, nbrs = _csr_gather(pred_indptr, pred_indices, iv)
        if owner.size:
            np.minimum.at(hi, owner, assignment[act[owner], nbrs])
        hi -= 1
        wv = widths[gv]

        candidate = real[act] + nd_width * crossing[act]
        candidate += wv[:, None]
        candidate[rows, current] -= wv
        np.maximum(candidate, epsilon, out=candidate)
        eta = np.divide(1.0, candidate, out=candidate)

        scores = tau_pow[tau_index[act], v] * fused_pow(eta, beta)
        inside = (cols >= lo[:, None]) & (cols <= hi[:, None])
        scores = np.where(inside, scores, 0.0)

        best = scores.argmax(axis=1)
        m = scores[rows, best]
        valid = (m > 0.0) & (m != np.inf)

        new_layer = best
        if not explore_possible:
            if not valid.all():
                new_layer = np.where(valid, best, lo)
        else:
            u = uniforms[act, step]
            exploit = u < q0 if q0 > 0.0 else np.zeros(act.size, dtype=bool)
            explore = valid & ~exploit
            if explore.any():
                cumulative = np.cumsum(scores, axis=1)
                totals = cumulative[:, -1]
                targets = (u - q0) / (1.0 - q0) * totals
                for a in np.flatnonzero(explore):
                    total = totals[a]
                    if not np.isfinite(total) or total <= 0.0:
                        span = int(hi[a] - lo[a] + 1)
                        idx = int(u[a] * span)
                        idx = span - 1 if idx >= span else idx
                        new_layer[a] = lo[a] + idx
                    else:
                        picked = int(
                            np.searchsorted(cumulative[a], targets[a], side="right")
                        )
                        new_layer[a] = picked if picked <= hi[a] else hi[a]
            if not valid.all():
                for a in np.flatnonzero(~valid):
                    span = int(hi[a] - lo[a] + 1)
                    idx = int(u[a] * span)
                    idx = span - 1 if idx >= span else idx
                    new_layer[a] = lo[a] + idx

        moved = np.flatnonzero(new_layer != current)
        if len(moved):
            rows_m = act[moved]
            moved_v = v[moved]
            old = current[moved]
            new = new_layer[moved]
            w_moved = wv[moved]
            real[rows_m, old] -= w_moved
            real[rows_m, new] += w_moved
            occupancy[rows_m, old] -= 1
            occupancy[rows_m, new] += 1
            assignment[rows_m, moved_v] = new
            gv_moved = gv[moved]
            for r, vertex, old_l, new_l in zip(rows_m, gv_moved, old, new):
                outdeg = int(out_degree[vertex])
                indeg = int(in_degree[vertex])
                row = crossing[r]
                if new_l > old_l:
                    if outdeg:
                        row[old_l:new_l] += outdeg
                    if indeg:
                        row[old_l + 1 : new_l + 1] -= indeg
                else:
                    if indeg:
                        row[new_l + 1 : old_l + 1] += indeg
                    if outdeg:
                        row[new_l:old_l] -= outdeg

    return assignment


def run_tour_vectorized(
    problem: LayeringProblem,
    params: ACOParams,
    pheromone: PheromoneMatrix,
    base_assignment: np.ndarray,
    base_widths: LayerWidths,
    rng: np.random.Generator,
    ant_ids: list[int],
):
    """Run one tour — every ant's complete walk — in lockstep.

    Returns one :class:`~repro.aco.ant.AntSolution` per ant, in ant order,
    bit-identical to running :meth:`repro.aco.ant.Ant.perform_walk`
    sequentially with the same generator.
    """
    n_ants = len(ant_ids)

    # Pre-draw each walk's randomness in ant order (the stream protocol).
    draws = [draw_walk_randomness(problem, params, rng) for _ in range(n_ants)]
    orders = np.stack([order for order, _ in draws])
    uniforms = None if draws[0][1] is None else np.stack([u for _, u in draws])

    alpha = params.alpha
    # tau^alpha over the whole matrix once per tour; element-wise equal to
    # powering each span slice (the trails are read-only during the tour).
    tau_pow = pheromone.values if alpha == 1.0 else fused_pow(pheromone.values, alpha)
    tau_stack = np.ascontiguousarray(tau_pow)[None]

    real = np.tile(base_widths.real, (n_ants, 1))
    crossing = np.tile(base_widths.crossing, (n_ants, 1))
    occupancy = np.tile(base_widths.occupancy, (n_ants, 1))

    assignment = run_walks_batch(
        problem,
        params,
        tau_stack,
        np.zeros(n_ants, dtype=np.int64),
        orders,
        uniforms,
        base_assignment,
        real,
        crossing,
        occupancy,
    )
    return _collect_solutions(problem, assignment, real, crossing, occupancy, ant_ids)


def _collect_solutions(problem, assignment, real, crossing, occupancy, ant_ids):
    """Wrap the per-ant final state into scored :class:`AntSolution` objects."""
    from repro.aco.ant import AntSolution  # local import breaks the module cycle
    from repro.aco.heuristic import evaluate_with_widths

    solutions = []
    for a in range(len(ant_ids)):
        final_assignment = assignment[a].copy()
        widths = LayerWidths(problem, real[a], crossing[a], occupancy[a])
        score = evaluate_with_widths(problem, final_assignment, widths)
        solutions.append(
            AntSolution(
                assignment=final_assignment,
                score=score,
                ant_id=ant_ids[a],
                widths=widths,
            )
        )
    return solutions
