"""Shared-memory multi-colony runtime.

The classic multi-colony driver (:mod:`repro.aco.parallel`) treats each colony
as an opaque job: the graph is JSON-serialised to every worker, every colony
re-runs the initialisation phase (LPL, stretching, CSR indexing), and every
colony pays its own per-tour Python overhead.  This module removes all three
costs:

1. **One problem build.**  The :class:`~repro.aco.problem.LayeringProblem` is
   constructed once; its flat arrays are either used directly (in-process
   batch) or published into a single :mod:`multiprocessing.shared_memory`
   block (:func:`publish_problem`) that worker processes attach **zero-copy**
   (:func:`attach_problem`) — no JSON, no re-parse, no per-colony
   initialisation.

2. **Lockstep colony batching.**  :func:`run_colonies_batch` advances *all*
   colonies together: each tour is one
   :func:`repro.aco.kernels.run_walks_batch` call sweeping every ant of every
   colony (8 colonies × 10 ants = one 80-walk kernel call), with each walk
   reading its own colony's pheromone matrix through the kernel's
   ``tau_index`` indirection.  Per-colony randomness, evaporation, deposit
   and best-tracking are untouched, so with ``exchange_every = 0`` (the
   default) the outcome is **bit-identical** to running the colonies one by
   one — the property the seed-stability tests pin down.

3. **Optional pheromone exchange.**  ``ACOParams(exchange_every=k)`` migrates
   the overall best layering across colonies every *k* tours: the elite
   assignment deposits pheromone on *every* colony's matrix, the standard
   coarse-grained cooperation scheme for parallel ant colonies.  Because this
   couples the colonies it deliberately changes results (usually for the
   better) and forces the in-process batch (no sharding).

On multi-core machines :func:`colonies_aco_layering` shards the colonies over
worker processes (each shard runs its own lockstep batch against the shared
problem buffers); on a single CPU — or under ``REPRO_JOBS=1`` — everything
runs as one in-process batch, which is already substantially faster than the
per-process driver because the problem is built once and the kernel is called
``n_tours`` times instead of ``n_colonies × n_tours`` times.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Sequence

import numpy as np

from repro.aco.heuristic import AssignmentScore, LayerWidths, evaluate_with_widths
from repro.aco.kernels import (
    draw_walk_randomness,
    fused_pow,
    run_walks_batch,
    run_walks_packed,
)
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem, PackedProblems
from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.metrics import evaluate_layering
from repro.utils import resources, shm_manifest
from repro.utils.exceptions import ValidationError
from repro.utils.pool import effective_workers, map_with_state
from repro.utils.rng import as_generator

__all__ = [
    "SharedProblem",
    "publish_problem",
    "attach_problem",
    "publish_packed",
    "attach_packed",
    "ColonyOutcome",
    "run_colonies_batch",
    "run_packed_colonies",
    "colonies_aco_layering",
    "prewarm",
]

#: The flat arrays of a LayeringProblem that travel through shared memory.
#: ``edge_dst`` is deliberately absent: it is the same array object as
#: ``succ_indices`` and is re-aliased on attach.  The kernel adjacency is
#: CSR-only, so no padded neighbour matrices cross the boundary — the block
#: stays O(V+E) regardless of degree distribution.
_SHARED_ARRAYS = (
    "succ_indptr",
    "succ_indices",
    "pred_indptr",
    "pred_indices",
    "edge_src",
    "out_degree",
    "in_degree",
    "widths",
    "initial_assignment",
)

#: Byte alignment of each array inside the shared block.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


#: Whether SharedMemory supports opting out of resource tracking directly
#: (Python 3.13+); older interpreters fall back to a lock-guarded patch.
_SHM_SUPPORTS_TRACK = (
    "track" in inspect.signature(shared_memory.SharedMemory.__init__).parameters
)

#: Serialises the registration-suppression window on pre-3.13 interpreters.
_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without registering it with the tracker.

    CPython's resource tracker registers *every* SharedMemory mapping, not
    just the creating one (bpo-38119).  Left in place, an attaching worker
    either clobbers the publisher's registration (fork: shared tracker, the
    final unlink logs spurious KeyErrors) or destroys the block when the
    worker exits (spawn: the worker's own tracker "cleans up" a segment the
    publisher still uses).  Ownership lives with the publisher, so the
    attach must not be tracked: Python 3.13+ supports this directly via
    ``track=False``; earlier interpreters suppress ``register`` for the
    duration of the attach under a module lock (the narrow remaining window
    only affects multiprocessing resources created concurrently by *other*
    threads while an attach is in flight).
    """
    if _SHM_SUPPORTS_TRACK:
        return shared_memory.SharedMemory(name=name, track=False)
    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


@dataclass
class SharedProblem:
    """Owner handle for a problem published into a shared-memory block.

    ``manifest`` is a small picklable dictionary (block name, array offsets/
    shapes/dtypes, problem scalars) — the only thing that crosses the process
    boundary.  The creating process must call :meth:`close` and
    :meth:`unlink` (or use the handle as a context manager) once every worker
    is done.
    """

    manifest: dict[str, Any]
    shm: shared_memory.SharedMemory

    def close(self) -> None:
        """Release this process's mapping of the block."""
        self.shm.close()

    def unlink(self) -> None:
        """Destroy the block (idempotent) and drop it from the run manifest."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        shm_manifest.unregister(self.shm.name)

    def __enter__(self) -> "SharedProblem":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
        self.unlink()


def _publish_arrays(arrays: dict[str, np.ndarray]) -> tuple[dict[str, Any], shared_memory.SharedMemory]:
    """Copy named arrays into one new shared-memory block; return (layout, shm)."""
    layout: dict[str, dict[str, Any]] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = _aligned(offset)
        layout[name] = {
            "offset": offset,
            "shape": list(arr.shape),
            "dtype": arr.dtype.str,
        }
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    # Registered the moment it exists: a publisher killed between here and
    # its ``finally`` leaves a manifest entry the next run's sweep reclaims.
    shm_manifest.register(shm.name)
    for name, arr in arrays.items():
        spec = layout[name]
        view = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=spec["offset"]
        )
        view[...] = arr
    return layout, shm


def _attach_views(manifest: dict[str, Any]) -> tuple[dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Zero-copy views over a block published with :func:`_publish_arrays`.

    If any array fails to map (truncated block, corrupted manifest), the
    just-attached handle is closed before the error propagates — otherwise
    the partially-mapped block stays referenced by this process for the
    lifetime of the worker, pinning the segment.
    """
    shm = _attach_untracked(manifest["shm_name"])
    try:
        views: dict[str, np.ndarray] = {}
        for name, spec in manifest["arrays"].items():
            views[name] = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=shm.buf,
                offset=spec["offset"],
            )
    except BaseException:
        views = None  # drop the buffer references before closing the mapping
        shm.close()
        raise
    return views, shm


def publish_problem(problem: LayeringProblem) -> SharedProblem:
    """Copy the problem's flat arrays into one shared-memory block.

    Workers re-materialise a kernel-ready :class:`LayeringProblem` from the
    returned manifest with :func:`attach_problem` without touching the graph
    JSON or re-running the initialisation phase.
    """
    arrays = {
        name: np.ascontiguousarray(getattr(problem, name)) for name in _SHARED_ARRAYS
    }
    layout, shm = _publish_arrays(arrays)
    manifest = {
        "shm_name": shm.name,
        "arrays": layout,
        "n_vertices": problem.n_vertices,
        "n_layers": problem.n_layers,
        "nd_width": problem.nd_width,
        "lpl_height": problem.lpl_height,
    }
    return SharedProblem(manifest=manifest, shm=shm)


def attach_problem(
    manifest: dict[str, Any]
) -> tuple[LayeringProblem, shared_memory.SharedMemory]:
    """Rebuild a worker-side :class:`LayeringProblem` over the shared block.

    The returned problem's arrays are zero-copy views into the block; the
    accompanying :class:`~multiprocessing.shared_memory.SharedMemory` handle
    must stay referenced for as long as the problem is used.  ``graph`` is
    ``None`` on the attached instance (labels never cross the boundary);
    callers convert index assignments back to labels in the parent.
    """
    views, shm = _attach_views(manifest)
    try:
        n = manifest["n_vertices"]
        succ = [
            piece.tolist()
            for piece in np.split(views["succ_indices"], views["succ_indptr"][1:-1])
        ]
        pred = [
            piece.tolist()
            for piece in np.split(views["pred_indices"], views["pred_indptr"][1:-1])
        ]
        problem = LayeringProblem(
            graph=None,  # type: ignore[arg-type] — labels stay in the parent
            vertices=list(range(n)),
            n_vertices=n,
            n_layers=manifest["n_layers"],
            succ=succ,
            pred=pred,
            succ_indptr=views["succ_indptr"],
            succ_indices=views["succ_indices"],
            pred_indptr=views["pred_indptr"],
            pred_indices=views["pred_indices"],
            edge_src=views["edge_src"],
            edge_dst=views["succ_indices"],
            out_degree=views["out_degree"],
            in_degree=views["in_degree"],
            widths=views["widths"],
            nd_width=manifest["nd_width"],
            initial_assignment=views["initial_assignment"],
            lpl_height=manifest["lpl_height"],
        )
    except BaseException:
        # A malformed manifest must not leave the block pinned by this
        # process: drop the view references, then release the mapping.
        views = None
        problem = None
        shm.close()
        raise
    return problem, shm


# ---------------------------------------------------------------------- #
# the lockstep multi-colony loop
# ---------------------------------------------------------------------- #


@dataclass
class ColonyOutcome:
    """Best solution of one colony, in stretched layer coordinates."""

    colony_index: int
    seed: int
    score: AssignmentScore
    assignment: np.ndarray


def run_colonies_batch(
    problem: LayeringProblem,
    params: ACOParams,
    colony_seeds: Sequence[int],
    *,
    colony_indices: Sequence[int] | None = None,
) -> list[ColonyOutcome]:
    """Run several colonies in lockstep over one problem instance.

    Every tour performs exactly one :func:`run_walks_batch` call covering all
    ``len(colony_seeds) × params.n_ants`` walks; each walk reads its own
    colony's pheromone matrix via the ``tau_index`` indirection.  Each colony
    keeps its own generator (seeded from *colony_seeds*), pheromone matrix,
    base layering and global best, consumed in exactly the order the
    single-colony :class:`~repro.aco.colony.AntColony` would, so with
    ``params.exchange_every == 0`` the outcomes are bit-identical to running
    the colonies independently.
    """
    n_colonies = len(colony_seeds)
    if colony_indices is None:
        colony_indices = list(range(n_colonies))
    n_ants = params.n_ants
    n_layers = problem.n_layers

    rngs = [as_generator(seed) for seed in colony_seeds]
    # All colonies' pheromone matrices live as views into one contiguous
    # (n_colonies, n_vertices, n_layers + 1) stack: evaporation and deposit
    # mutate the stack through the views, so with alpha == 1 the kernel call
    # reads the stack directly — no per-tour copy of the trails.
    tau_values = np.full(
        (n_colonies, problem.n_vertices, n_layers + 1), params.tau0, dtype=np.float64
    )
    tau_values[:, :, 0] = 0.0
    pheromones = [PheromoneMatrix.wrap(tau_values[c]) for c in range(n_colonies)]

    init_assignment = problem.initial_assignment
    init_widths = LayerWidths.from_assignment(problem, init_assignment)
    initial_score = evaluate_with_widths(problem, init_assignment, init_widths)
    # Same deposit normalisation as AntColony.run: a tour-best ant as good as
    # the stretched-LPL start deposits exactly `params.deposit`.
    deposit_scale = (
        params.deposit / initial_score.objective
        if initial_score.objective > 0
        else params.deposit
    )

    base_assignment = np.tile(init_assignment, (n_colonies, 1))
    base_real = np.tile(init_widths.real, (n_colonies, 1))
    base_crossing = np.tile(init_widths.crossing, (n_colonies, 1))
    base_occupancy = np.tile(init_widths.occupancy, (n_colonies, 1))

    # The starting layering seeds every colony's global best, so no colony
    # can return something worse than its seed (AntColony invariant).
    best_assignment = base_assignment.copy()
    best_scores: list[AssignmentScore] = [initial_score] * n_colonies

    tau_index = np.repeat(np.arange(n_colonies, dtype=np.int64), n_ants)
    alpha = params.alpha
    exchange = params.exchange_every if n_colonies > 1 else 0
    reference_engine = params.engine == "python"
    if reference_engine:
        from repro.aco.ant import Ant  # local import breaks the module cycle

        ants = [Ant(i, problem, params) for i in range(n_ants)]

    for tour in range(1, params.n_tours + 1):
        # One tour-best tuple per colony: (assignment, score, real, crossing,
        # occupancy), selected as the first maximum in ant order exactly like
        # max(solutions, key=objective).
        tour_best: list[tuple[np.ndarray, AssignmentScore, np.ndarray, np.ndarray, np.ndarray]] = []

        if reference_engine:
            # The per-vertex reference walk, kept selectable through the
            # colonies executor so engine="python" stays a usable escape
            # hatch for cross-checking the kernels on multi-colony runs.
            for c in range(n_colonies):
                base_w = LayerWidths(
                    problem, base_real[c], base_crossing[c], base_occupancy[c]
                )
                solutions = [
                    ant.perform_walk(base_assignment[c], base_w, pheromones[c], rngs[c])
                    for ant in ants
                ]
                best = max(solutions, key=lambda s: s.objective)
                tour_best.append(
                    (
                        best.assignment,
                        best.score,
                        best.widths.real,
                        best.widths.crossing,
                        best.widths.occupancy,
                    )
                )
        else:
            # Per-walk randomness, drawn colony by colony in ant order —
            # exactly how each colony's own generator stream would be
            # consumed.
            draws = [
                draw_walk_randomness(problem, params, rngs[c])
                for c in range(n_colonies)
                for _ in range(n_ants)
            ]
            orders = np.stack([order for order, _ in draws])
            uniforms = None if draws[0][1] is None else np.stack([u for _, u in draws])

            tau_stack = tau_values if alpha == 1.0 else fused_pow(tau_values, alpha)

            real = np.repeat(base_real, n_ants, axis=0)
            crossing = np.repeat(base_crossing, n_ants, axis=0)
            occupancy = np.repeat(base_occupancy, n_ants, axis=0)
            base_rows = np.repeat(base_assignment, n_ants, axis=0)

            assignment = run_walks_batch(
                problem,
                params,
                tau_stack,
                tau_index,
                orders,
                uniforms,
                base_rows,
                real,
                crossing,
                occupancy,
            )

            for c in range(n_colonies):
                start = c * n_ants
                best_row = start
                best_score: AssignmentScore | None = None
                for a in range(start, start + n_ants):
                    widths = LayerWidths(problem, real[a], crossing[a], occupancy[a])
                    score = evaluate_with_widths(problem, assignment[a], widths)
                    if best_score is None or score.objective > best_score.objective:
                        best_row, best_score = a, score
                assert best_score is not None
                tour_best.append(
                    (
                        assignment[best_row],
                        best_score,
                        real[best_row],
                        crossing[best_row],
                        occupancy[best_row],
                    )
                )

        # Evaporate all colonies in one stack-wide pass: each matrix sees the
        # exact element-wise operations PheromoneMatrix.evaporate would apply,
        # and the matrices are independent, so batching preserves bit-identity.
        tau_values[:, :, 1:] *= 1.0 - params.rho
        if params.tau_min > 0.0:
            np.maximum(tau_values[:, :, 1:], params.tau_min, out=tau_values[:, :, 1:])

        for c, (best_asg, best_score, best_real, best_crossing, best_occupancy) in enumerate(
            tour_best
        ):
            pheromones[c].deposit(best_asg, deposit_scale * best_score.objective)

            base_assignment[c] = best_asg
            base_real[c] = best_real
            base_crossing[c] = best_crossing
            base_occupancy[c] = best_occupancy
            if best_score.objective > best_scores[c].objective:
                best_scores[c] = best_score
                best_assignment[c] = best_asg

        if exchange and tour % exchange == 0 and tour < params.n_tours:
            # Elite migration: the overall best layering so far deposits on
            # every colony's matrix (first-best tie-breaking by colony order).
            elite = max(
                range(n_colonies), key=lambda c: best_scores[c].objective
            )
            amount = deposit_scale * best_scores[elite].objective
            for pheromone in pheromones:
                pheromone.deposit(best_assignment[elite], amount)

    return [
        ColonyOutcome(
            colony_index=int(colony_indices[c]),
            seed=int(colony_seeds[c]),
            score=best_scores[c],
            assignment=best_assignment[c].copy(),
        )
        for c in range(n_colonies)
    ]


# ---------------------------------------------------------------------- #
# process sharding over the shared-memory buffers
# ---------------------------------------------------------------------- #


def _attach_state(payload: tuple[dict[str, Any], dict[str, Any]]):
    """Pool initializer: attach the shared problem once per worker."""
    manifest, params_dict = payload
    problem, shm = attach_problem(manifest)
    # The SharedMemory handle rides along so the zero-copy views stay valid
    # for the lifetime of the worker.
    return problem, ACOParams(**params_dict), shm


def _run_shard(state, indices: list[int], seeds: list[int]) -> list[ColonyOutcome]:
    """Worker entry point: run one shard of colonies against the shared problem."""
    problem, params, _shm = state
    return run_colonies_batch(problem, params, seeds, colony_indices=indices)


def _run_sharded(
    problem: LayeringProblem,
    params: ACOParams,
    seeds: Sequence[int],
    workers: int,
) -> list[ColonyOutcome]:
    """Split the colonies into contiguous shards and run them over a process pool."""
    n_colonies = len(seeds)
    n_shards = min(workers, n_colonies)
    bounds = np.linspace(0, n_colonies, n_shards + 1).astype(int)
    tasks = []
    for s in range(n_shards):
        indices = list(range(int(bounds[s]), int(bounds[s + 1])))
        if indices:
            tasks.append((indices, [seeds[i] for i in indices]))

    governor = resources.governor()
    if governor.allow("shm-publish"):
        try:
            shared = publish_problem(problem)
        except OSError as exc:
            # /dev/shm full (ENOSPC) or otherwise unusable: degrade to one
            # in-process batch — bit-identical, just not process-sharded.
            governor.record_failure("shm-publish", f"{type(exc).__name__}: {exc}")
        else:
            governor.record_success("shm-publish")
            try:
                shards = map_with_state(
                    _run_shard,
                    tasks,
                    executor="process",
                    max_workers=n_shards,
                    init_fn=_attach_state,
                    payload=(shared.manifest, params.as_dict()),
                )
            finally:
                shared.close()
                shared.unlink()
            return [outcome for shard in shards for outcome in shard]
    return run_colonies_batch(problem, params, seeds)


def colonies_aco_layering(
    graph: DiGraph,
    params: ACOParams | None = None,
    *,
    n_colonies: int = 4,
    max_workers: int | None = None,
):
    """Run *n_colonies* colonies through the shared-memory runtime.

    The drop-in ``executor="colonies"`` back end of
    :func:`repro.aco.parallel.parallel_aco_layering`: same seed derivation,
    same result type, same best-colony selection — but the problem is built
    once, the tours run as lockstep batches, and (on multi-core machines,
    when ``params.exchange_every == 0``) the colonies are sharded over
    processes that attach the problem arrays zero-copy.

    Returns a :class:`repro.aco.parallel.ParallelAcoResult`.
    """
    from repro.aco.parallel import (  # local import breaks the module cycle
        ColonyRunSummary,
        ParallelAcoResult,
        _derive_colony_seeds,
    )

    if n_colonies < 1:
        raise ValidationError(f"n_colonies must be >= 1, got {n_colonies}")
    params = params if params is not None else ACOParams()
    seeds = _derive_colony_seeds(params.seed, n_colonies)
    problem = LayeringProblem.from_graph(graph, nd_width=params.nd_width)

    workers = effective_workers(max_workers, n_colonies)
    if workers > 1 and n_colonies > 1 and params.exchange_every == 0:
        outcomes = _run_sharded(problem, params, seeds, workers)
    else:
        # Pheromone exchange couples the colonies, so it always runs as one
        # in-process batch.
        outcomes = run_colonies_batch(problem, params, seeds)
    outcomes.sort(key=lambda o: o.colony_index)

    summaries = []
    for outcome in outcomes:
        layering = problem.assignment_to_layering(outcome.assignment, normalize=True)
        metrics = evaluate_layering(graph, layering, nd_width=params.nd_width)
        summaries.append(
            ColonyRunSummary(
                colony_index=outcome.colony_index,
                seed=outcome.seed,
                objective=metrics.objective,
                height=metrics.height,
                width_including_dummies=metrics.width_including_dummies,
                assignment=layering.to_dict(),
            )
        )
    best = max(summaries, key=lambda s: s.objective)
    layering = Layering(best.assignment)
    layering.validate(graph)
    return ParallelAcoResult(layering=layering, best_colony=best, colonies=summaries)


# ---------------------------------------------------------------------- #
# cross-graph packed execution
# ---------------------------------------------------------------------- #

#: The flat arrays of a PackedProblems that travel through shared memory.
#: CSR-only, like _SHARED_ARRAYS: the lazy padded stacks never cross.
_PACKED_ARRAYS = (
    "n_vertices_per",
    "n_layers_per",
    "vert_offset",
    "indptr_offset",
    "succ_indptr",
    "succ_indices",
    "pred_indptr",
    "pred_indices",
    "out_degree",
    "in_degree",
    "widths",
    "initial_assignment",
    "init_real",
    "init_crossing",
    "init_occupancy",
)


def publish_packed(packed: PackedProblems) -> SharedProblem:
    """Copy a pack's flat arrays into one shared-memory block.

    The packed twin of :func:`publish_problem`: one block carries the
    block-diagonal CSR and initial-state arrays of *every* graph in the
    pack, so worker processes sharding the pack attach the whole corpus
    slice zero-copy.
    """
    arrays = {
        name: np.ascontiguousarray(getattr(packed, name)) for name in _PACKED_ARRAYS
    }
    layout, shm = _publish_arrays(arrays)
    manifest = {
        "shm_name": shm.name,
        "arrays": layout,
        "packed": True,
        "n_graphs": packed.n_graphs,
        "nd_width": packed.nd_width,
        "max_n_vertices": packed.max_n_vertices,
        "max_n_cols": packed.max_n_cols,
        "lpl_heights": [p.lpl_height for p in packed.problems],
    }
    return SharedProblem(manifest=manifest, shm=shm)


def attach_packed(
    manifest: dict[str, Any]
) -> tuple[PackedProblems, shared_memory.SharedMemory]:
    """Rebuild a worker-side :class:`PackedProblems` over the shared block.

    The pack-level arrays are zero-copy views; the per-graph
    :class:`LayeringProblem` instances are re-materialised from slices of
    those views (``graph`` is ``None`` — labels stay in the parent).
    """
    views, shm = _attach_views(manifest)
    try:
        packed = _rebuild_packed(manifest, views)
    except BaseException:
        # Same leak guard as attach_problem: a manifest whose later arrays
        # fail to map must not leave the mapping referenced.
        views = None
        shm.close()
        raise
    return packed, shm


def _rebuild_packed(
    manifest: dict[str, Any], views: dict[str, np.ndarray]
) -> PackedProblems:
    """Materialise the worker-side :class:`PackedProblems` from mapped views."""
    nd_width = manifest["nd_width"]
    lpl_heights = manifest["lpl_heights"]

    vert_offset = views["vert_offset"]
    indptr_offset = views["indptr_offset"]
    problems: list[LayeringProblem] = []
    for g in range(manifest["n_graphs"]):
        n = int(views["n_vertices_per"][g])
        vo = int(vert_offset[g])
        io = int(indptr_offset[g])
        succ_indptr = views["succ_indptr"][io : io + n + 1] - views["succ_indptr"][io]
        pred_indptr = views["pred_indptr"][io : io + n + 1] - views["pred_indptr"][io]
        s0 = int(views["succ_indptr"][io])
        p0 = int(views["pred_indptr"][io])
        succ_indices = views["succ_indices"][s0 : s0 + int(succ_indptr[-1])]
        pred_indices = views["pred_indices"][p0 : p0 + int(pred_indptr[-1])]
        succ = [piece.tolist() for piece in np.split(succ_indices, succ_indptr[1:-1])]
        pred = [piece.tolist() for piece in np.split(pred_indices, pred_indptr[1:-1])]
        out_degree = views["out_degree"][vo : vo + n]
        problems.append(
            LayeringProblem(
                graph=None,  # type: ignore[arg-type] — labels stay in the parent
                vertices=list(range(n)),
                n_vertices=n,
                n_layers=int(views["n_layers_per"][g]),
                succ=succ,
                pred=pred,
                succ_indptr=succ_indptr,
                succ_indices=succ_indices,
                pred_indptr=pred_indptr,
                pred_indices=pred_indices,
                edge_src=np.repeat(np.arange(n, dtype=np.int64), out_degree),
                edge_dst=succ_indices,
                out_degree=out_degree,
                in_degree=views["in_degree"][vo : vo + n],
                widths=views["widths"][vo : vo + n],
                nd_width=nd_width,
                initial_assignment=views["initial_assignment"][g, :n],
                lpl_height=int(lpl_heights[g]),
            )
        )

    return PackedProblems(
        problems=problems,
        n_vertices_per=views["n_vertices_per"],
        n_layers_per=views["n_layers_per"],
        vert_offset=vert_offset,
        indptr_offset=indptr_offset,
        succ_indptr=views["succ_indptr"],
        succ_indices=views["succ_indices"],
        pred_indptr=views["pred_indptr"],
        pred_indices=views["pred_indices"],
        out_degree=views["out_degree"],
        in_degree=views["in_degree"],
        widths=views["widths"],
        nd_width=nd_width,
        max_n_vertices=manifest["max_n_vertices"],
        max_n_cols=manifest["max_n_cols"],
        initial_assignment=views["initial_assignment"],
        init_real=views["init_real"],
        init_crossing=views["init_crossing"],
        init_occupancy=views["init_occupancy"],
    )


def _run_packed_range(
    packed: PackedProblems,
    params: ACOParams,
    seeds_per_graph: Sequence[Sequence[int]],
    graph_ids: Sequence[int],
) -> list[list[ColonyOutcome]]:
    """Run the colonies of the selected pack graphs in one lockstep loop.

    Every tour is a single :func:`run_walks_packed` call sweeping
    ``Σ_g n_colonies_g × n_ants`` walks across all selected graphs; each
    graph keeps its own generators, pheromone matrices, deposit scale and
    best-tracking, consumed in exactly the per-graph order, so the outcomes
    are bit-identical to running each graph through
    :func:`run_colonies_batch` (and therefore to the single-colony
    :class:`~repro.aco.colony.AntColony`) on its own.
    """
    problems = packed.problems
    if params.engine == "python":
        # The per-vertex reference engine has no batching win; delegate to
        # the single-graph loop, which already pins bit-identity to the ants.
        return [
            run_colonies_batch(problems[g], params, seeds_per_graph[g])
            for g in graph_ids
        ]

    n_ants = params.n_ants
    max_n = packed.max_n_vertices
    max_cols = packed.max_n_cols
    nd_width = packed.nd_width

    counts = [len(seeds_per_graph[g]) for g in graph_ids]
    mat_graph = np.repeat(np.asarray(graph_ids, dtype=np.int64), counts)
    n_matrices = int(mat_graph.shape[0])
    walk_matrix = np.repeat(np.arange(n_matrices, dtype=np.int64), n_ants)
    walk_graph = mat_graph[walk_matrix]
    n_walks = n_matrices * n_ants

    rngs = [
        as_generator(seed) for g in graph_ids for seed in seeds_per_graph[g]
    ]

    # One zero-padded pheromone matrix per colony, stacked contiguously so
    # the kernel reads trails through the per-walk tau_index and evaporation
    # is one stack-wide pass.  Padding stays at zero (never inside any
    # walk's feasible span) except for the tau_min clamp, which the masks
    # also keep out of every decision.
    tau_values = np.zeros((n_matrices, max_n, max_cols), dtype=np.float64)
    pheromones: list[PheromoneMatrix] = []
    for m in range(n_matrices):
        p = problems[int(mat_graph[m])]
        tau_values[m, : p.n_vertices, 1 : p.n_layers + 1] = params.tau0
        pheromones.append(PheromoneMatrix.wrap(tau_values[m, : p.n_vertices, : p.n_layers + 1]))

    # Per-graph initial scores and deposit normalisation (AntColony protocol).
    initial_scores: dict[int, AssignmentScore] = {}
    deposit_scale: dict[int, float] = {}
    for g in graph_ids:
        p = problems[g]
        c = p.n_layers + 1
        base = LayerWidths(
            p,
            packed.init_real[g, :c],
            packed.init_crossing[g, :c],
            packed.init_occupancy[g, :c],
        )
        score = evaluate_with_widths(p, p.initial_assignment, base)
        initial_scores[g] = score
        deposit_scale[g] = (
            params.deposit / score.objective if score.objective > 0 else params.deposit
        )

    base_assignment = packed.initial_assignment[mat_graph].copy()
    base_real = packed.init_real[mat_graph].copy()
    base_crossing = packed.init_crossing[mat_graph].copy()
    base_occupancy = packed.init_occupancy[mat_graph].copy()

    best_assignment = base_assignment.copy()
    best_scores: list[AssignmentScore] = [
        initial_scores[int(g)] for g in mat_graph
    ]

    alpha = params.alpha
    draw_uniforms = params.exploitation_probability < 1.0
    scale = np.array([deposit_scale[int(g)] for g in mat_graph])

    for tour in range(1, params.n_tours + 1):
        # Per-walk randomness, drawn graph by graph, colony by colony, in
        # ant order — each graph's generators see exactly the stream its
        # standalone run would consume.
        orders = np.zeros((n_walks, max_n), dtype=np.int64)
        uniforms = np.zeros((n_walks, max_n), dtype=np.float64) if draw_uniforms else None
        w = 0
        for m in range(n_matrices):
            p = problems[int(mat_graph[m])]
            rng = rngs[m]
            for _ in range(n_ants):
                order, u = draw_walk_randomness(p, params, rng)
                orders[w, : order.shape[0]] = order
                if u is not None:
                    uniforms[w, : u.shape[0]] = u
                w += 1

        tau_stack = tau_values if alpha == 1.0 else fused_pow(tau_values, alpha)

        real = np.repeat(base_real, n_ants, axis=0)
        crossing = np.repeat(base_crossing, n_ants, axis=0)
        occupancy = np.repeat(base_occupancy, n_ants, axis=0)
        base_rows = np.repeat(base_assignment, n_ants, axis=0)

        assignment = run_walks_packed(
            packed,
            params,
            tau_stack,
            walk_matrix,
            walk_graph,
            orders,
            uniforms,
            base_rows,
            real,
            crossing,
            occupancy,
        )

        # Vectorized tour-best selection: height, compacted width and the
        # objective of every walk in a handful of array passes, with the
        # exact element-wise operations of evaluate_with_widths (padded
        # layers are unoccupied, so they influence neither count nor max).
        heights = np.count_nonzero(occupancy[:, 1:], axis=1)
        totals = real[:, 1:] + nd_width * crossing[:, 1:]
        width_incl = np.where(occupancy[:, 1:] > 0, totals, -np.inf).max(axis=1)
        objective = 1.0 / (heights + width_incl)
        best_walk = (
            objective.reshape(n_matrices, n_ants).argmax(axis=1)
            + np.arange(n_matrices) * n_ants
        )

        # Evaporate every colony in one stack-wide pass, then each
        # tour-best deposits on its own colony's matrix.
        tau_values[:, :, 1:] *= 1.0 - params.rho
        if params.tau_min > 0.0:
            np.maximum(tau_values[:, :, 1:], params.tau_min, out=tau_values[:, :, 1:])

        for m in range(n_matrices):
            wk = int(best_walk[m])
            p = problems[int(mat_graph[m])]
            n_g = p.n_vertices
            c_g = p.n_layers + 1
            widths_view = LayerWidths(
                p, real[wk, :c_g], crossing[wk, :c_g], occupancy[wk, :c_g]
            )
            score = evaluate_with_widths(p, assignment[wk, :n_g], widths_view)
            pheromones[m].deposit(assignment[wk, :n_g], scale[m] * score.objective)

            base_assignment[m] = assignment[wk]
            base_real[m] = real[wk]
            base_crossing[m] = crossing[wk]
            base_occupancy[m] = occupancy[wk]
            if score.objective > best_scores[m].objective:
                best_scores[m] = score
                best_assignment[m] = assignment[wk]

        if params.exchange_every and tour % params.exchange_every == 0 and tour < params.n_tours:
            # Elite migration stays *within* each graph: the graph's best
            # layering so far deposits on every one of its colonies'
            # matrices (first-best tie-breaking by colony order).
            start = 0
            for count in counts:
                if count > 1:
                    ms = range(start, start + count)
                    elite = max(ms, key=lambda m: best_scores[m].objective)
                    g = int(mat_graph[elite])
                    n_g = problems[g].n_vertices
                    amount = scale[elite] * best_scores[elite].objective
                    for m in ms:
                        pheromones[m].deposit(best_assignment[elite, :n_g], amount)
                start += count

    outcomes: list[list[ColonyOutcome]] = []
    start = 0
    for gi, g in enumerate(graph_ids):
        count = counts[gi]
        n_g = problems[g].n_vertices
        outcomes.append(
            [
                ColonyOutcome(
                    colony_index=c,
                    seed=int(seeds_per_graph[g][c]),
                    score=best_scores[start + c],
                    assignment=best_assignment[start + c, :n_g].copy(),
                )
                for c in range(count)
            ]
        )
        start += count
    return outcomes


def _attach_packed_state(payload: tuple[dict[str, Any], dict[str, Any]]):
    """Pool initializer: attach the shared pack once per worker."""
    manifest, params_dict = payload
    packed, shm = attach_packed(manifest)
    return packed, ACOParams(**params_dict), shm


def _run_packed_shard(
    state, graph_ids: list[int], seeds: dict[int, list[int]]
) -> list[tuple[int, list[ColonyOutcome]]]:
    """Worker entry point: run one contiguous graph range of the pack."""
    packed, params, _shm = state
    seeds_per_graph: list[Sequence[int]] = [()] * packed.n_graphs
    for g, colony_seeds in seeds.items():
        seeds_per_graph[g] = colony_seeds
    results = _run_packed_range(packed, params, seeds_per_graph, graph_ids)
    return list(zip(graph_ids, results))


def run_packed_colonies(
    packed: PackedProblems,
    params: ACOParams,
    seeds_per_graph: Sequence[Sequence[int]],
    *,
    max_workers: int | None = None,
) -> list[list[ColonyOutcome]]:
    """Run every graph's colonies through the cross-graph lockstep runtime.

    Parameters
    ----------
    packed: the problem pack (see :meth:`PackedProblems.pack`).
    params: shared algorithm parameters (one :class:`MethodSpec`'s worth —
        the experiment engine's batch planner only packs cells with
        identical specs).
    seeds_per_graph: one colony-seed list per pack graph — ``[params.seed]``
        for a plain single-colony cell, the derived portfolio seeds for
        ``n_colonies > 1`` cells.
    max_workers: worker cap; on multi-core machines the pack's graphs are
        sharded over processes that attach the published pack arrays
        zero-copy (pheromone exchange couples only colonies of the *same*
        graph, so graph sharding is always safe).

    Returns one ``list[ColonyOutcome]`` per graph, in pack order —
    bit-identical to running each graph on its own for a fixed seed.
    """
    if len(seeds_per_graph) != packed.n_graphs:
        raise ValidationError(
            f"need one seed list per graph: {packed.n_graphs} graphs, "
            f"{len(seeds_per_graph)} seed lists"
        )
    n_graphs = packed.n_graphs
    workers = effective_workers(max_workers, n_graphs)
    if workers <= 1 or n_graphs <= 1:
        return _run_packed_range(packed, params, seeds_per_graph, list(range(n_graphs)))

    bounds = np.linspace(0, n_graphs, workers + 1).astype(int)
    tasks = []
    for s in range(workers):
        graph_ids = list(range(int(bounds[s]), int(bounds[s + 1])))
        if graph_ids:
            tasks.append(
                (graph_ids, {g: list(seeds_per_graph[g]) for g in graph_ids})
            )
    governor = resources.governor()
    if not governor.allow("shm-publish"):
        return _run_packed_range(packed, params, seeds_per_graph, list(range(n_graphs)))
    try:
        shared = publish_packed(packed)
    except OSError as exc:
        # /dev/shm full (ENOSPC) or otherwise unusable: degrade to one
        # in-process sweep — bit-identical, just not process-sharded.
        governor.record_failure("shm-publish", f"{type(exc).__name__}: {exc}")
        return _run_packed_range(packed, params, seeds_per_graph, list(range(n_graphs)))
    governor.record_success("shm-publish")
    try:
        shards = map_with_state(
            _run_packed_shard,
            tasks,
            executor="process",
            max_workers=len(tasks),
            init_fn=_attach_packed_state,
            payload=(shared.manifest, params.as_dict()),
        )
    finally:
        shared.close()
        shared.unlink()
    by_graph = {g: outcome for shard in shards for g, outcome in shard}
    return [by_graph[g] for g in range(n_graphs)]


def prewarm(*, n_vertices: int = 6, seed: int = 0) -> None:
    """Warm the packed-colony runtime before serving traffic.

    Runs one tiny pack end to end — problem build, shared-memory
    publish/attach round trip, a short lockstep colony run — so the first
    real megabatch pays none of the lazy initialisation costs (native
    kernel library load, NumPy buffer pools, shm segment bookkeeping).
    Milliseconds of work, and side-effect free: the published block is
    closed and unlinked before returning.
    """
    graph = DiGraph()
    for v in range(n_vertices):
        graph.add_vertex(v)
    for v in range(n_vertices - 1):
        graph.add_edge(v, v + 1)
    if n_vertices >= 3:
        # One long edge so the warm-up exercises the dummy-vertex path too.
        graph.add_edge(0, n_vertices - 1)
    params = ACOParams(n_ants=2, n_tours=1, seed=seed)
    problem = LayeringProblem.from_graph(graph, nd_width=params.nd_width)
    packed = PackedProblems.pack([problem])
    shared = publish_packed(packed)
    try:
        attached, shm = attach_packed(shared.manifest)
        try:
            run_packed_colonies(attached, params, [[seed]], max_workers=1)
        finally:
            attached = None
            shm.close()
    finally:
        shared.close()
        shared.unlink()
