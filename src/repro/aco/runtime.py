"""Shared-memory multi-colony runtime.

The classic multi-colony driver (:mod:`repro.aco.parallel`) treats each colony
as an opaque job: the graph is JSON-serialised to every worker, every colony
re-runs the initialisation phase (LPL, stretching, CSR indexing), and every
colony pays its own per-tour Python overhead.  This module removes all three
costs:

1. **One problem build.**  The :class:`~repro.aco.problem.LayeringProblem` is
   constructed once; its flat arrays are either used directly (in-process
   batch) or published into a single :mod:`multiprocessing.shared_memory`
   block (:func:`publish_problem`) that worker processes attach **zero-copy**
   (:func:`attach_problem`) — no JSON, no re-parse, no per-colony
   initialisation.

2. **Lockstep colony batching.**  :func:`run_colonies_batch` advances *all*
   colonies together: each tour is one
   :func:`repro.aco.kernels.run_walks_batch` call sweeping every ant of every
   colony (8 colonies × 10 ants = one 80-walk kernel call), with each walk
   reading its own colony's pheromone matrix through the kernel's
   ``tau_index`` indirection.  Per-colony randomness, evaporation, deposit
   and best-tracking are untouched, so with ``exchange_every = 0`` (the
   default) the outcome is **bit-identical** to running the colonies one by
   one — the property the seed-stability tests pin down.

3. **Optional pheromone exchange.**  ``ACOParams(exchange_every=k)`` migrates
   the overall best layering across colonies every *k* tours: the elite
   assignment deposits pheromone on *every* colony's matrix, the standard
   coarse-grained cooperation scheme for parallel ant colonies.  Because this
   couples the colonies it deliberately changes results (usually for the
   better) and forces the in-process batch (no sharding).

On multi-core machines :func:`colonies_aco_layering` shards the colonies over
worker processes (each shard runs its own lockstep batch against the shared
problem buffers); on a single CPU — or under ``REPRO_JOBS=1`` — everything
runs as one in-process batch, which is already substantially faster than the
per-process driver because the problem is built once and the kernel is called
``n_tours`` times instead of ``n_colonies × n_tours`` times.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Sequence

import numpy as np

from repro.aco.heuristic import AssignmentScore, LayerWidths, evaluate_with_widths
from repro.aco.kernels import draw_walk_randomness, fused_pow, run_walks_batch
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem
from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.metrics import evaluate_layering
from repro.utils.exceptions import ValidationError
from repro.utils.pool import effective_workers, map_with_state
from repro.utils.rng import as_generator

__all__ = [
    "SharedProblem",
    "publish_problem",
    "attach_problem",
    "ColonyOutcome",
    "run_colonies_batch",
    "colonies_aco_layering",
]

#: The flat arrays of a LayeringProblem that travel through shared memory.
#: ``edge_dst`` is deliberately absent: it is the same array object as
#: ``succ_indices`` and is re-aliased on attach.
_SHARED_ARRAYS = (
    "succ_indptr",
    "succ_indices",
    "pred_indptr",
    "pred_indices",
    "succ_pad",
    "pred_pad",
    "edge_src",
    "out_degree",
    "in_degree",
    "widths",
    "initial_assignment",
)

#: Byte alignment of each array inside the shared block.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


#: Whether SharedMemory supports opting out of resource tracking directly
#: (Python 3.13+); older interpreters fall back to a lock-guarded patch.
_SHM_SUPPORTS_TRACK = (
    "track" in inspect.signature(shared_memory.SharedMemory.__init__).parameters
)

#: Serialises the registration-suppression window on pre-3.13 interpreters.
_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without registering it with the tracker.

    CPython's resource tracker registers *every* SharedMemory mapping, not
    just the creating one (bpo-38119).  Left in place, an attaching worker
    either clobbers the publisher's registration (fork: shared tracker, the
    final unlink logs spurious KeyErrors) or destroys the block when the
    worker exits (spawn: the worker's own tracker "cleans up" a segment the
    publisher still uses).  Ownership lives with the publisher, so the
    attach must not be tracked: Python 3.13+ supports this directly via
    ``track=False``; earlier interpreters suppress ``register`` for the
    duration of the attach under a module lock (the narrow remaining window
    only affects multiprocessing resources created concurrently by *other*
    threads while an attach is in flight).
    """
    if _SHM_SUPPORTS_TRACK:
        return shared_memory.SharedMemory(name=name, track=False)
    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


@dataclass
class SharedProblem:
    """Owner handle for a problem published into a shared-memory block.

    ``manifest`` is a small picklable dictionary (block name, array offsets/
    shapes/dtypes, problem scalars) — the only thing that crosses the process
    boundary.  The creating process must call :meth:`close` and
    :meth:`unlink` (or use the handle as a context manager) once every worker
    is done.
    """

    manifest: dict[str, Any]
    shm: shared_memory.SharedMemory

    def close(self) -> None:
        """Release this process's mapping of the block."""
        self.shm.close()

    def unlink(self) -> None:
        """Destroy the block (idempotent)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedProblem":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
        self.unlink()


def publish_problem(problem: LayeringProblem) -> SharedProblem:
    """Copy the problem's flat arrays into one shared-memory block.

    Workers re-materialise a kernel-ready :class:`LayeringProblem` from the
    returned manifest with :func:`attach_problem` without touching the graph
    JSON or re-running the initialisation phase.
    """
    arrays = {
        name: np.ascontiguousarray(getattr(problem, name)) for name in _SHARED_ARRAYS
    }
    layout: dict[str, dict[str, Any]] = {}
    offset = 0
    for name, arr in arrays.items():
        offset = _aligned(offset)
        layout[name] = {
            "offset": offset,
            "shape": list(arr.shape),
            "dtype": arr.dtype.str,
        }
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, arr in arrays.items():
        spec = layout[name]
        view = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=spec["offset"]
        )
        view[...] = arr
    manifest = {
        "shm_name": shm.name,
        "arrays": layout,
        "n_vertices": problem.n_vertices,
        "n_layers": problem.n_layers,
        "nd_width": problem.nd_width,
        "lpl_height": problem.lpl_height,
    }
    return SharedProblem(manifest=manifest, shm=shm)


def attach_problem(
    manifest: dict[str, Any]
) -> tuple[LayeringProblem, shared_memory.SharedMemory]:
    """Rebuild a worker-side :class:`LayeringProblem` over the shared block.

    The returned problem's arrays are zero-copy views into the block; the
    accompanying :class:`~multiprocessing.shared_memory.SharedMemory` handle
    must stay referenced for as long as the problem is used.  ``graph`` is
    ``None`` on the attached instance (labels never cross the boundary);
    callers convert index assignments back to labels in the parent.
    """
    shm = _attach_untracked(manifest["shm_name"])

    views: dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        views[name] = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=shm.buf,
            offset=spec["offset"],
        )

    n = manifest["n_vertices"]
    succ = [
        piece.tolist()
        for piece in np.split(views["succ_indices"], views["succ_indptr"][1:-1])
    ]
    pred = [
        piece.tolist()
        for piece in np.split(views["pred_indices"], views["pred_indptr"][1:-1])
    ]
    problem = LayeringProblem(
        graph=None,  # type: ignore[arg-type] — labels stay in the parent
        vertices=list(range(n)),
        n_vertices=n,
        n_layers=manifest["n_layers"],
        succ=succ,
        pred=pred,
        succ_indptr=views["succ_indptr"],
        succ_indices=views["succ_indices"],
        pred_indptr=views["pred_indptr"],
        pred_indices=views["pred_indices"],
        succ_pad=views["succ_pad"],
        pred_pad=views["pred_pad"],
        edge_src=views["edge_src"],
        edge_dst=views["succ_indices"],
        out_degree=views["out_degree"],
        in_degree=views["in_degree"],
        widths=views["widths"],
        nd_width=manifest["nd_width"],
        initial_assignment=views["initial_assignment"],
        lpl_height=manifest["lpl_height"],
    )
    return problem, shm


# ---------------------------------------------------------------------- #
# the lockstep multi-colony loop
# ---------------------------------------------------------------------- #


@dataclass
class ColonyOutcome:
    """Best solution of one colony, in stretched layer coordinates."""

    colony_index: int
    seed: int
    score: AssignmentScore
    assignment: np.ndarray


def run_colonies_batch(
    problem: LayeringProblem,
    params: ACOParams,
    colony_seeds: Sequence[int],
    *,
    colony_indices: Sequence[int] | None = None,
) -> list[ColonyOutcome]:
    """Run several colonies in lockstep over one problem instance.

    Every tour performs exactly one :func:`run_walks_batch` call covering all
    ``len(colony_seeds) × params.n_ants`` walks; each walk reads its own
    colony's pheromone matrix via the ``tau_index`` indirection.  Each colony
    keeps its own generator (seeded from *colony_seeds*), pheromone matrix,
    base layering and global best, consumed in exactly the order the
    single-colony :class:`~repro.aco.colony.AntColony` would, so with
    ``params.exchange_every == 0`` the outcomes are bit-identical to running
    the colonies independently.
    """
    n_colonies = len(colony_seeds)
    if colony_indices is None:
        colony_indices = list(range(n_colonies))
    n_ants = params.n_ants
    n_layers = problem.n_layers

    rngs = [as_generator(seed) for seed in colony_seeds]
    # All colonies' pheromone matrices live as views into one contiguous
    # (n_colonies, n_vertices, n_layers + 1) stack: evaporation and deposit
    # mutate the stack through the views, so with alpha == 1 the kernel call
    # reads the stack directly — no per-tour copy of the trails.
    tau_values = np.full(
        (n_colonies, problem.n_vertices, n_layers + 1), params.tau0, dtype=np.float64
    )
    tau_values[:, :, 0] = 0.0
    pheromones = [PheromoneMatrix.wrap(tau_values[c]) for c in range(n_colonies)]

    init_assignment = problem.initial_assignment
    init_widths = LayerWidths.from_assignment(problem, init_assignment)
    initial_score = evaluate_with_widths(problem, init_assignment, init_widths)
    # Same deposit normalisation as AntColony.run: a tour-best ant as good as
    # the stretched-LPL start deposits exactly `params.deposit`.
    deposit_scale = (
        params.deposit / initial_score.objective
        if initial_score.objective > 0
        else params.deposit
    )

    base_assignment = np.tile(init_assignment, (n_colonies, 1))
    base_real = np.tile(init_widths.real, (n_colonies, 1))
    base_crossing = np.tile(init_widths.crossing, (n_colonies, 1))
    base_occupancy = np.tile(init_widths.occupancy, (n_colonies, 1))

    # The starting layering seeds every colony's global best, so no colony
    # can return something worse than its seed (AntColony invariant).
    best_assignment = base_assignment.copy()
    best_scores: list[AssignmentScore] = [initial_score] * n_colonies

    tau_index = np.repeat(np.arange(n_colonies, dtype=np.int64), n_ants)
    alpha = params.alpha
    exchange = params.exchange_every if n_colonies > 1 else 0
    reference_engine = params.engine == "python"
    if reference_engine:
        from repro.aco.ant import Ant  # local import breaks the module cycle

        ants = [Ant(i, problem, params) for i in range(n_ants)]

    for tour in range(1, params.n_tours + 1):
        # One tour-best tuple per colony: (assignment, score, real, crossing,
        # occupancy), selected as the first maximum in ant order exactly like
        # max(solutions, key=objective).
        tour_best: list[tuple[np.ndarray, AssignmentScore, np.ndarray, np.ndarray, np.ndarray]] = []

        if reference_engine:
            # The per-vertex reference walk, kept selectable through the
            # colonies executor so engine="python" stays a usable escape
            # hatch for cross-checking the kernels on multi-colony runs.
            for c in range(n_colonies):
                base_w = LayerWidths(
                    problem, base_real[c], base_crossing[c], base_occupancy[c]
                )
                solutions = [
                    ant.perform_walk(base_assignment[c], base_w, pheromones[c], rngs[c])
                    for ant in ants
                ]
                best = max(solutions, key=lambda s: s.objective)
                tour_best.append(
                    (
                        best.assignment,
                        best.score,
                        best.widths.real,
                        best.widths.crossing,
                        best.widths.occupancy,
                    )
                )
        else:
            # Per-walk randomness, drawn colony by colony in ant order —
            # exactly how each colony's own generator stream would be
            # consumed.
            draws = [
                draw_walk_randomness(problem, params, rngs[c])
                for c in range(n_colonies)
                for _ in range(n_ants)
            ]
            orders = np.stack([order for order, _ in draws])
            uniforms = None if draws[0][1] is None else np.stack([u for _, u in draws])

            tau_stack = tau_values if alpha == 1.0 else fused_pow(tau_values, alpha)

            real = np.repeat(base_real, n_ants, axis=0)
            crossing = np.repeat(base_crossing, n_ants, axis=0)
            occupancy = np.repeat(base_occupancy, n_ants, axis=0)
            base_rows = np.repeat(base_assignment, n_ants, axis=0)

            assignment = run_walks_batch(
                problem,
                params,
                tau_stack,
                tau_index,
                orders,
                uniforms,
                base_rows,
                real,
                crossing,
                occupancy,
            )

            for c in range(n_colonies):
                start = c * n_ants
                best_row = start
                best_score: AssignmentScore | None = None
                for a in range(start, start + n_ants):
                    widths = LayerWidths(problem, real[a], crossing[a], occupancy[a])
                    score = evaluate_with_widths(problem, assignment[a], widths)
                    if best_score is None or score.objective > best_score.objective:
                        best_row, best_score = a, score
                assert best_score is not None
                tour_best.append(
                    (
                        assignment[best_row],
                        best_score,
                        real[best_row],
                        crossing[best_row],
                        occupancy[best_row],
                    )
                )

        # Evaporate all colonies in one stack-wide pass: each matrix sees the
        # exact element-wise operations PheromoneMatrix.evaporate would apply,
        # and the matrices are independent, so batching preserves bit-identity.
        tau_values[:, :, 1:] *= 1.0 - params.rho
        if params.tau_min > 0.0:
            np.maximum(tau_values[:, :, 1:], params.tau_min, out=tau_values[:, :, 1:])

        for c, (best_asg, best_score, best_real, best_crossing, best_occupancy) in enumerate(
            tour_best
        ):
            pheromones[c].deposit(best_asg, deposit_scale * best_score.objective)

            base_assignment[c] = best_asg
            base_real[c] = best_real
            base_crossing[c] = best_crossing
            base_occupancy[c] = best_occupancy
            if best_score.objective > best_scores[c].objective:
                best_scores[c] = best_score
                best_assignment[c] = best_asg

        if exchange and tour % exchange == 0 and tour < params.n_tours:
            # Elite migration: the overall best layering so far deposits on
            # every colony's matrix (first-best tie-breaking by colony order).
            elite = max(
                range(n_colonies), key=lambda c: best_scores[c].objective
            )
            amount = deposit_scale * best_scores[elite].objective
            for pheromone in pheromones:
                pheromone.deposit(best_assignment[elite], amount)

    return [
        ColonyOutcome(
            colony_index=int(colony_indices[c]),
            seed=int(colony_seeds[c]),
            score=best_scores[c],
            assignment=best_assignment[c].copy(),
        )
        for c in range(n_colonies)
    ]


# ---------------------------------------------------------------------- #
# process sharding over the shared-memory buffers
# ---------------------------------------------------------------------- #


def _attach_state(payload: tuple[dict[str, Any], dict[str, Any]]):
    """Pool initializer: attach the shared problem once per worker."""
    manifest, params_dict = payload
    problem, shm = attach_problem(manifest)
    # The SharedMemory handle rides along so the zero-copy views stay valid
    # for the lifetime of the worker.
    return problem, ACOParams(**params_dict), shm


def _run_shard(state, indices: list[int], seeds: list[int]) -> list[ColonyOutcome]:
    """Worker entry point: run one shard of colonies against the shared problem."""
    problem, params, _shm = state
    return run_colonies_batch(problem, params, seeds, colony_indices=indices)


def _run_sharded(
    problem: LayeringProblem,
    params: ACOParams,
    seeds: Sequence[int],
    workers: int,
) -> list[ColonyOutcome]:
    """Split the colonies into contiguous shards and run them over a process pool."""
    n_colonies = len(seeds)
    n_shards = min(workers, n_colonies)
    bounds = np.linspace(0, n_colonies, n_shards + 1).astype(int)
    tasks = []
    for s in range(n_shards):
        indices = list(range(int(bounds[s]), int(bounds[s + 1])))
        if indices:
            tasks.append((indices, [seeds[i] for i in indices]))

    shared = publish_problem(problem)
    try:
        shards = map_with_state(
            _run_shard,
            tasks,
            executor="process",
            max_workers=n_shards,
            init_fn=_attach_state,
            payload=(shared.manifest, params.as_dict()),
        )
    finally:
        shared.close()
        shared.unlink()
    return [outcome for shard in shards for outcome in shard]


def colonies_aco_layering(
    graph: DiGraph,
    params: ACOParams | None = None,
    *,
    n_colonies: int = 4,
    max_workers: int | None = None,
):
    """Run *n_colonies* colonies through the shared-memory runtime.

    The drop-in ``executor="colonies"`` back end of
    :func:`repro.aco.parallel.parallel_aco_layering`: same seed derivation,
    same result type, same best-colony selection — but the problem is built
    once, the tours run as lockstep batches, and (on multi-core machines,
    when ``params.exchange_every == 0``) the colonies are sharded over
    processes that attach the problem arrays zero-copy.

    Returns a :class:`repro.aco.parallel.ParallelAcoResult`.
    """
    from repro.aco.parallel import (  # local import breaks the module cycle
        ColonyRunSummary,
        ParallelAcoResult,
        _derive_colony_seeds,
    )

    if n_colonies < 1:
        raise ValidationError(f"n_colonies must be >= 1, got {n_colonies}")
    params = params if params is not None else ACOParams()
    seeds = _derive_colony_seeds(params.seed, n_colonies)
    problem = LayeringProblem.from_graph(graph, nd_width=params.nd_width)

    workers = effective_workers(max_workers, n_colonies)
    if workers > 1 and n_colonies > 1 and params.exchange_every == 0:
        outcomes = _run_sharded(problem, params, seeds, workers)
    else:
        # Pheromone exchange couples the colonies, so it always runs as one
        # in-process batch.
        outcomes = run_colonies_batch(problem, params, seeds)
    outcomes.sort(key=lambda o: o.colony_index)

    summaries = []
    for outcome in outcomes:
        layering = problem.assignment_to_layering(outcome.assignment, normalize=True)
        metrics = evaluate_layering(graph, layering, nd_width=params.nd_width)
        summaries.append(
            ColonyRunSummary(
                colony_index=outcome.colony_index,
                seed=outcome.seed,
                objective=metrics.objective,
                height=metrics.height,
                width_including_dummies=metrics.width_including_dummies,
                assignment=layering.to_dict(),
            )
        )
    best = max(summaries, key=lambda s: s.objective)
    layering = Layering(best.assignment)
    layering.validate(graph)
    return ParallelAcoResult(layering=layering, best_colony=best, colonies=summaries)
