"""A single ant: one stochastic constructive walk over the construction graph.

An ant starts from the tour's base layering (the stretched LPL layering on the
first tour, the previous tour-best layering afterwards), visits the vertices
in a uniformly random order, and re-assigns each visited vertex to a layer
from its current layer span using the random-proportional rule

    p(v, l)  =  τ[v, l]^α · η[v, l]^β  /  Σ_{l' ∈ span(v)} τ[v, l']^α · η[v, l']^β

with η[v, l] = 1 / W(l), where W(l) is the dummy-inclusive width layer ``l``
would have with ``v`` on it.  The paper's implementation assigns the vertex to
the layer with the **highest** probability (``selection="argmax"``); classical
roulette-wheel sampling is available as ``selection="roulette"`` for the
ablation study.  After every assignment the ant updates its private copy of
the layer widths (Algorithm 5) so the heuristic stays consistent with the
partial solution, exactly as required by the dynamic-heuristic formulation.

This module is the *per-vertex reference engine* (``ACOParams(engine=
"python")``); the production path runs the same walk batched across ants in
:mod:`repro.aco.kernels`.  Both engines share the randomness, scoring and
selection protocol defined there and produce bit-identical solutions for a
fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aco.heuristic import AssignmentScore, LayerWidths, evaluate_with_widths
from repro.aco.kernels import draw_walk_randomness, fused_pow, select_from_scores
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem

__all__ = ["Ant", "AntSolution"]


@dataclass
class AntSolution:
    """The outcome of one ant walk.

    Attributes
    ----------
    assignment:
        Layer index of every vertex (in the stretched layer numbering).
    score:
        Objective, height, dummy-inclusive width and dummy count of the
        compacted layering.
    ant_id:
        Identifier of the ant that produced the solution (stable within a
        colony; ``-1`` marks the colony's seed layering).
    widths:
        The ant's final :class:`~repro.aco.heuristic.LayerWidths`, consistent
        with ``assignment``; the colony reuses the tour-best ant's instance
        as the next tour's base widths instead of recomputing from scratch.
    """

    assignment: np.ndarray
    score: AssignmentScore
    ant_id: int
    widths: LayerWidths | None = None

    @property
    def objective(self) -> float:
        """Shortcut for ``score.objective`` (the value the colony maximises)."""
        return self.score.objective


class Ant:
    """A computational agent that builds one layering per tour."""

    __slots__ = ("ant_id", "problem", "params")

    def __init__(self, ant_id: int, problem: LayeringProblem, params: ACOParams) -> None:
        self.ant_id = ant_id
        self.problem = problem
        self.params = params

    # ------------------------------------------------------------------ #
    # construction step
    # ------------------------------------------------------------------ #

    def _span_scores(
        self,
        v: int,
        lo: int,
        hi: int,
        current: int,
        widths: LayerWidths,
        pheromone: PheromoneMatrix,
    ) -> np.ndarray:
        """The τ^α·η^β score of every layer in the span ``[lo, hi]``."""
        params = self.params
        tau = pheromone.trail(v, lo, hi)
        eta = widths.eta(v, lo, hi, current, params.eta_epsilon)
        return fused_pow(tau, params.alpha) * fused_pow(eta, params.beta)

    def choose_layer(
        self,
        v: int,
        lo: int,
        hi: int,
        current: int,
        widths: LayerWidths,
        pheromone: PheromoneMatrix,
        rng: np.random.Generator,
    ) -> int:
        """Pick a layer for vertex *v* from its span ``[lo, hi]``.

        Implements the random-proportional rule; degenerate cases (all scores
        zero, a single-layer span) fall back to sensible choices.  Standalone
        entry point for tests and callers outside a walk — the walk itself
        consumes the pre-drawn per-walk uniforms instead of drawing here.
        """
        if lo == hi:
            return lo
        q0 = self.params.exploitation_probability
        u = float(rng.random()) if q0 < 1.0 else None
        scores = self._span_scores(v, lo, hi, current, widths, pheromone)
        return lo + select_from_scores(scores, hi - lo + 1, q0, u)

    # ------------------------------------------------------------------ #
    # the walk
    # ------------------------------------------------------------------ #

    def perform_walk(
        self,
        base_assignment: np.ndarray,
        base_widths: LayerWidths,
        pheromone: PheromoneMatrix,
        rng: np.random.Generator,
    ) -> AntSolution:
        """Build one complete layering starting from the tour's base layering.

        Parameters
        ----------
        base_assignment:
            Layer of every vertex at the start of the tour; not modified.
        base_widths:
            Layer widths matching *base_assignment*; not modified (the ant
            works on its own copy, emulating the parallel work environment of
            the colony).
        pheromone:
            The shared pheromone matrix (read-only during the walk).
        rng:
            Random generator driving the vertex order and any sampling.
        """
        problem = self.problem
        params = self.params
        assignment = base_assignment.copy()
        widths = base_widths.copy()

        order, uniforms = draw_walk_randomness(problem, params, rng)
        q0 = params.exploitation_probability
        for i in range(problem.n_vertices):
            v = int(order[i])
            lo, hi = problem.layer_span(assignment, v)
            current = int(assignment[v])
            if lo == hi:
                new = lo
            else:
                scores = self._span_scores(v, lo, hi, current, widths, pheromone)
                u = None if uniforms is None else float(uniforms[i])
                new = lo + select_from_scores(scores, hi - lo + 1, q0, u)
            if new != current:
                widths.apply_move(v, current, new, assignment)
                assignment[v] = new

        score = evaluate_with_widths(problem, assignment, widths)
        return AntSolution(
            assignment=assignment, score=score, ant_id=self.ant_id, widths=widths
        )
