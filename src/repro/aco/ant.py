"""A single ant: one stochastic constructive walk over the construction graph.

An ant starts from the tour's base layering (the stretched LPL layering on the
first tour, the previous tour-best layering afterwards), visits the vertices
in a uniformly random order, and re-assigns each visited vertex to a layer
from its current layer span using the random-proportional rule

    p(v, l)  =  τ[v, l]^α · η[v, l]^β  /  Σ_{l' ∈ span(v)} τ[v, l']^α · η[v, l']^β

with η[v, l] = 1 / W(l), where W(l) is the dummy-inclusive width layer ``l``
would have with ``v`` on it.  The paper's implementation assigns the vertex to
the layer with the **highest** probability (``selection="argmax"``); classical
roulette-wheel sampling is available as ``selection="roulette"`` for the
ablation study.  After every assignment the ant updates its private copy of
the layer widths (Algorithm 5) so the heuristic stays consistent with the
partial solution, exactly as required by the dynamic-heuristic formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aco.heuristic import AssignmentScore, LayerWidths, evaluate_with_widths
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem

__all__ = ["Ant", "AntSolution"]


@dataclass
class AntSolution:
    """The outcome of one ant walk.

    Attributes
    ----------
    assignment:
        Layer index of every vertex (in the stretched layer numbering).
    score:
        Objective, height, dummy-inclusive width and dummy count of the
        compacted layering.
    ant_id:
        Identifier of the ant that produced the solution (stable within a
        colony; ``-1`` marks the colony's seed layering).
    """

    assignment: np.ndarray
    score: AssignmentScore
    ant_id: int

    @property
    def objective(self) -> float:
        """Shortcut for ``score.objective`` (the value the colony maximises)."""
        return self.score.objective


class Ant:
    """A computational agent that builds one layering per tour."""

    __slots__ = ("ant_id", "problem", "params")

    def __init__(self, ant_id: int, problem: LayeringProblem, params: ACOParams) -> None:
        self.ant_id = ant_id
        self.problem = problem
        self.params = params

    # ------------------------------------------------------------------ #
    # construction step
    # ------------------------------------------------------------------ #

    def choose_layer(
        self,
        v: int,
        lo: int,
        hi: int,
        current: int,
        widths: LayerWidths,
        pheromone: PheromoneMatrix,
        rng: np.random.Generator,
    ) -> int:
        """Pick a layer for vertex *v* from its span ``[lo, hi]``.

        Implements the random-proportional rule; degenerate cases (all scores
        zero, a single-layer span) fall back to sensible choices.
        """
        if lo == hi:
            return lo
        params = self.params
        tau = pheromone.trail(v, lo, hi)
        eta = widths.eta(v, lo, hi, current, params.eta_epsilon)
        scores = np.power(tau, params.alpha) * np.power(eta, params.beta)
        total = scores.sum()
        if not np.isfinite(total) or total <= 0.0:
            # All trails/heuristics degenerate — fall back to a uniform choice.
            return lo + int(rng.integers(0, hi - lo + 1))
        # Pseudo-random proportional rule: exploit (argmax) with probability
        # q0, otherwise sample from the random-proportional distribution.
        # The paper's rule is the q0 = 1 special case.
        q0 = params.exploitation_probability
        if q0 >= 1.0 or (q0 > 0.0 and rng.random() < q0):
            return lo + int(np.argmax(scores))
        probabilities = scores / total
        return lo + int(rng.choice(hi - lo + 1, p=probabilities))

    # ------------------------------------------------------------------ #
    # the walk
    # ------------------------------------------------------------------ #

    def perform_walk(
        self,
        base_assignment: np.ndarray,
        base_widths: LayerWidths,
        pheromone: PheromoneMatrix,
        rng: np.random.Generator,
    ) -> AntSolution:
        """Build one complete layering starting from the tour's base layering.

        Parameters
        ----------
        base_assignment:
            Layer of every vertex at the start of the tour; not modified.
        base_widths:
            Layer widths matching *base_assignment*; not modified (the ant
            works on its own copy, emulating the parallel work environment of
            the colony).
        pheromone:
            The shared pheromone matrix (read-only during the walk).
        rng:
            Random generator driving the vertex order and any sampling.
        """
        problem = self.problem
        assignment = base_assignment.copy()
        widths = base_widths.copy()

        if self.params.vertex_order == "bfs":
            order = problem.random_bfs_order(rng)
        elif self.params.vertex_order == "topological":
            order = problem.random_topological_order(rng)
        else:
            order = problem.random_order(rng)
        for v in order:
            v = int(v)
            lo, hi = problem.layer_span(assignment, v)
            current = int(assignment[v])
            new = self.choose_layer(v, lo, hi, current, widths, pheromone, rng)
            if new != current:
                widths.apply_move(v, current, new, assignment)
                assignment[v] = new

        score = evaluate_with_widths(problem, assignment, widths)
        return AntSolution(assignment=assignment, score=score, ant_id=self.ant_id)
