"""Top-level driver: the complete ACO DAG-layering algorithm.

Chains the two phases of the paper — initialisation (LPL, stretching, matrix
set-up; Algorithm 3) and the layering phase (tours of ant walks; Algorithm 4)
— and converts the best assignment back into a
:class:`~repro.layering.base.Layering` on the original vertex labels, with
empty layers removed exactly like the paper's post-processing step.

Use :func:`aco_layering` when only the layering is needed (it has the same
``graph -> Layering`` signature as every baseline algorithm, so the experiment
harness can treat all algorithms uniformly) and
:func:`aco_layering_detailed` when metrics and convergence history are wanted
too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aco.colony import AntColony, ColonyResult
from repro.aco.params import ACOParams
from repro.aco.problem import LayeringProblem
from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.metrics import LayeringMetrics, evaluate_layering
from repro.utils.rng import as_generator

__all__ = ["AcoLayeringResult", "aco_layering", "aco_layering_detailed"]


@dataclass
class AcoLayeringResult:
    """Full outcome of an ACO layering run.

    Attributes
    ----------
    layering:
        The best layering found, normalised (layers 1..height, no empty layers).
    metrics:
        Paper metrics of that layering (height, widths, DVC, edge density,
        objective) computed with the run's ``nd_width``.
    colony:
        The raw :class:`~repro.aco.colony.ColonyResult` (per-tour history,
        best assignment in stretched coordinates).
    problem:
        The :class:`~repro.aco.problem.LayeringProblem` instance, exposing the
        stretched layer count and the initial LPL height.
    params:
        The parameter set actually used.
    """

    layering: Layering
    metrics: LayeringMetrics
    colony: ColonyResult
    problem: LayeringProblem
    params: ACOParams


def aco_layering_detailed(
    graph: DiGraph,
    params: ACOParams | None = None,
    *,
    stretch_strategy: str = "between",
    n_layers: int | None = None,
) -> AcoLayeringResult:
    """Run the full ACO layering algorithm and return layering plus diagnostics.

    Parameters
    ----------
    graph:
        The DAG to layer (must be acyclic and non-empty; cyclic inputs should
        be pre-processed with :func:`repro.graph.make_acyclic`).
    params:
        Algorithm parameters; defaults to :class:`ACOParams()` (the paper's
        adopted configuration α=1, β=3, 10 tours, nd_width=1).
    stretch_strategy:
        Where the extra layers are inserted before the ants start:
        ``"between"`` is the paper's strategy, ``"above"``/``"below"``/
        ``"split"`` exist for the ablation benchmark.
    n_layers:
        Total number of layers after stretching; defaults to ``|V|``.
    """
    params = params if params is not None else ACOParams()
    problem = LayeringProblem.from_graph(
        graph,
        nd_width=params.nd_width,
        stretch_strategy=stretch_strategy,
        n_layers=n_layers,
    )
    rng = as_generator(params.seed)
    colony = AntColony(problem, params, rng=rng)
    result = colony.run()
    layering = problem.assignment_to_layering(result.best.assignment, normalize=True)
    layering.validate(graph)
    metrics = evaluate_layering(graph, layering, nd_width=params.nd_width)
    return AcoLayeringResult(
        layering=layering,
        metrics=metrics,
        colony=result,
        problem=problem,
        params=params,
    )


def aco_layering(
    graph: DiGraph,
    params: ACOParams | None = None,
    *,
    stretch_strategy: str = "between",
    n_layers: int | None = None,
) -> Layering:
    """Layer *graph* with the ACO algorithm and return only the layering.

    This is the drop-in counterpart of :func:`repro.layering.longest_path_layering`
    and friends; see :func:`aco_layering_detailed` for the full result object.
    """
    return aco_layering_detailed(
        graph, params, stretch_strategy=stretch_strategy, n_layers=n_layers
    ).layering
