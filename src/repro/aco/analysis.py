"""Analysis utilities for the stochastic behaviour of the ACO layering algorithm.

A metaheuristic is characterised not by a single run but by its behaviour
across seeds and tours.  This module provides the small statistical toolkit a
user of the library needs to answer the usual questions:

* *Is the colony still improving?*  — :func:`convergence_curve` /
  :func:`tours_to_convergence`;
* *How much does it gain over the deterministic baseline?* —
  :func:`improvement_over_baseline`;
* *How noisy is it across seeds?* — :func:`run_statistics`.

All functions operate on the public driver
(:func:`repro.aco.layering_aco.aco_layering_detailed`), so they measure
exactly what a caller of the library gets.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable

from repro.aco.layering_aco import AcoLayeringResult, aco_layering_detailed
from repro.aco.params import ACOParams
from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import evaluate_layering
from repro.utils.exceptions import ValidationError

__all__ = [
    "convergence_curve",
    "tours_to_convergence",
    "ImprovementReport",
    "improvement_over_baseline",
    "RunStatistics",
    "run_statistics",
]


def convergence_curve(result: AcoLayeringResult) -> list[float]:
    """Best objective seen up to and including each tour (a non-decreasing series)."""
    best_so_far = 0.0
    curve: list[float] = []
    for record in result.colony.history:
        best_so_far = max(best_so_far, record.best_objective)
        curve.append(best_so_far)
    return curve


def tours_to_convergence(result: AcoLayeringResult, *, rel_tol: float = 1e-9) -> int:
    """The first tour after which the running best objective stops improving.

    Returns the 1-based tour index of the last strict improvement (1 if the
    first tour was never beaten, 0 if the run had no tours).
    """
    curve = convergence_curve(result)
    if not curve:
        return 0
    last_improvement = 1
    for i in range(1, len(curve)):
        if curve[i] > curve[i - 1] * (1.0 + rel_tol):
            last_improvement = i + 1
    return last_improvement


@dataclass(frozen=True)
class ImprovementReport:
    """Relative change of every paper metric of the ACO result versus a baseline.

    Ratios are ``aco / baseline`` (1.0 = unchanged, < 1.0 = the ACO value is
    smaller).  ``objective_gain`` is ``aco_objective − baseline_objective``
    (positive = better, because the objective is maximised).
    """

    baseline_name: str
    width_ratio: float
    width_excl_ratio: float
    height_ratio: float
    dummy_ratio: float
    edge_density_ratio: float
    objective_gain: float


def _ratio(a: float, b: float) -> float:
    return a / b if b else (0.0 if a == 0 else float("inf"))


def improvement_over_baseline(
    graph: DiGraph,
    params: ACOParams | None = None,
    *,
    baseline: Callable[[DiGraph], Layering] = longest_path_layering,
    baseline_name: str = "LPL",
) -> ImprovementReport:
    """Run the ACO once and compare its metrics against a baseline algorithm."""
    params = params if params is not None else ACOParams()
    aco = aco_layering_detailed(graph, params)
    base_layering = baseline(graph)
    base = evaluate_layering(graph, base_layering, nd_width=params.nd_width)
    ours = aco.metrics
    return ImprovementReport(
        baseline_name=baseline_name,
        width_ratio=_ratio(ours.width_including_dummies, base.width_including_dummies),
        width_excl_ratio=_ratio(ours.width_excluding_dummies, base.width_excluding_dummies),
        height_ratio=_ratio(ours.height, base.height),
        dummy_ratio=_ratio(ours.dummy_vertex_count, max(base.dummy_vertex_count, 1)),
        edge_density_ratio=_ratio(ours.edge_density, max(base.edge_density, 1)),
        objective_gain=ours.objective - base.objective,
    )


@dataclass(frozen=True)
class RunStatistics:
    """Distribution of the objective over repeated runs with different seeds."""

    n_runs: int
    mean: float
    std: float
    best: float
    worst: float
    mean_tours_to_convergence: float

    @property
    def spread(self) -> float:
        """Best-minus-worst objective range."""
        return self.best - self.worst


def run_statistics(
    graph: DiGraph,
    params: ACOParams | None = None,
    *,
    n_runs: int = 5,
    base_seed: int = 0,
) -> RunStatistics:
    """Run the colony *n_runs* times with consecutive seeds and summarise the objectives."""
    if n_runs < 1:
        raise ValidationError(f"n_runs must be >= 1, got {n_runs}")
    params = params if params is not None else ACOParams()
    objectives: list[float] = []
    convergence: list[int] = []
    for i in range(n_runs):
        result = aco_layering_detailed(graph, params.replace(seed=base_seed + i))
        objectives.append(result.metrics.objective)
        convergence.append(tours_to_convergence(result))
    return RunStatistics(
        n_runs=n_runs,
        mean=statistics.fmean(objectives),
        std=statistics.pstdev(objectives) if n_runs > 1 else 0.0,
        best=max(objectives),
        worst=min(objectives),
        mean_tours_to_convergence=statistics.fmean(convergence),
    )
