"""The ant colony: tours, evaporation, pheromone deposit and solution inheritance.

One *tour* consists of every ant building a layering from the same base
layering (the previous tour's best).  At the end of a tour:

1. the pheromone matrix evaporates: ``τ ← (1 − ρ) · τ`` (clamped at
   ``τ_min``);
2. the tour-best ant deposits ``deposit · f`` pheromone on every
   (vertex, layer) coupling of its layering, where ``f = 1 / (H + W)``;
3. the tour-best layering (and hence the layer widths / heuristic
   information derived from it) becomes the base layering of the next tour.

The colony additionally tracks the best solution seen across all tours, which
is what :func:`repro.aco.layering_aco.aco_layering` ultimately returns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.aco.ant import Ant, AntSolution
from repro.aco.heuristic import LayerWidths, evaluate_with_widths
from repro.aco.kernels import run_tour_vectorized
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem
from repro.utils.rng import as_generator

#: When set (e.g. ``REPRO_ACO_DEBUG_WIDTHS=1``), the colony cross-checks the
#: tour-best ant's incrementally maintained LayerWidths against a fresh
#: from-scratch recomputation at every tour boundary.
_DEBUG_WIDTHS_ENV = "REPRO_ACO_DEBUG_WIDTHS"

__all__ = ["TourRecord", "ColonyResult", "AntColony"]


@dataclass(frozen=True)
class TourRecord:
    """Summary of one tour, kept for convergence analysis and tests."""

    tour: int
    best_objective: float
    mean_objective: float
    best_height: int
    best_width: float
    best_ant_id: int


@dataclass
class ColonyResult:
    """Everything the colony produced: the best solution plus per-tour history."""

    best: AntSolution
    history: list[TourRecord] = field(default_factory=list)

    @property
    def objective(self) -> float:
        """Objective of the overall best solution."""
        return self.best.objective

    @property
    def n_tours(self) -> int:
        """Number of tours actually executed."""
        return len(self.history)


class AntColony:
    """Runs the layering phase (Algorithm 4 of the paper) for one problem instance."""

    def __init__(
        self,
        problem: LayeringProblem,
        params: ACOParams | None = None,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.problem = problem
        self.params = params if params is not None else ACOParams()
        self.rng = rng if rng is not None else as_generator(self.params.seed)
        self.pheromone = PheromoneMatrix(
            problem.n_vertices, problem.n_layers, tau0=self.params.tau0
        )
        self.ants = [Ant(i, problem, self.params) for i in range(self.params.n_ants)]

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, *, n_tours: int | None = None) -> ColonyResult:
        """Execute the tours and return the best layering found.

        Parameters
        ----------
        n_tours: override for the number of tours (defaults to
            ``params.n_tours``).
        """
        problem = self.problem
        params = self.params
        tours = params.n_tours if n_tours is None else n_tours

        base_assignment = problem.initial_assignment.copy()
        base_widths = LayerWidths.from_assignment(problem, base_assignment)

        # The paper does not specify the absolute scale of the pheromone
        # deposit.  Raw objectives (1 / (H + W)) are tiny compared to tau0, so
        # the deposit is normalised by the objective of the initial (stretched
        # LPL) layering: a tour-best ant as good as the starting point
        # deposits exactly `params.deposit`, better ants deposit more.
        initial_score = evaluate_with_widths(problem, base_assignment, base_widths)
        deposit_scale = (
            params.deposit / initial_score.objective
            if initial_score.objective > 0
            else params.deposit
        )

        # The starting layering (stretched LPL) itself seeds the global best,
        # so the colony can never return something worse than its seed.
        global_best: AntSolution | None = AntSolution(
            assignment=base_assignment.copy(),
            score=initial_score,
            ant_id=-1,
            widths=base_widths,
        )
        history: list[TourRecord] = []
        debug_widths = bool(os.environ.get(_DEBUG_WIDTHS_ENV))

        for tour in range(1, tours + 1):
            if params.engine == "python":
                solutions = [
                    ant.perform_walk(base_assignment, base_widths, self.pheromone, self.rng)
                    for ant in self.ants
                ]
            else:
                solutions = run_tour_vectorized(
                    problem,
                    params,
                    self.pheromone,
                    base_assignment,
                    base_widths,
                    self.rng,
                    [ant.ant_id for ant in self.ants],
                )
            tour_best = max(solutions, key=lambda s: s.objective)
            mean_objective = float(np.mean([s.objective for s in solutions]))

            # Evaporation, then the tour-best ant deposits pheromone.
            self.pheromone.evaporate(params.rho, params.tau_min)
            self.pheromone.deposit(tour_best.assignment, deposit_scale * tour_best.objective)

            # The best ant's layering (and the heuristic state implied by it)
            # seeds the next tour; the ant's incrementally maintained widths
            # are already consistent with it, so no from-scratch rebuild.
            base_assignment = tour_best.assignment.copy()
            base_widths = tour_best.widths
            if debug_widths:
                fresh = LayerWidths.from_assignment(problem, base_assignment)
                assert np.allclose(base_widths.real, fresh.real), (
                    "incremental real widths drifted from recomputation"
                )
                assert np.array_equal(base_widths.crossing, fresh.crossing), (
                    "incremental crossing counts drifted from recomputation"
                )
                assert np.array_equal(base_widths.occupancy, fresh.occupancy), (
                    "incremental occupancy drifted from recomputation"
                )

            if global_best is None or tour_best.objective > global_best.objective:
                global_best = tour_best

            history.append(
                TourRecord(
                    tour=tour,
                    best_objective=tour_best.objective,
                    mean_objective=mean_objective,
                    best_height=tour_best.score.height,
                    best_width=tour_best.score.width_including_dummies,
                    best_ant_id=tour_best.ant_id,
                )
            )

        assert global_best is not None
        return ColonyResult(best=global_best, history=history)
