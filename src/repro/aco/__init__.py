"""Ant Colony Optimization for the DAG layering problem — the paper's contribution.

The public entry points are:

* :func:`repro.aco.layering_aco.aco_layering` — layer a DAG with the ACO
  algorithm and get back a :class:`~repro.layering.base.Layering`;
* :func:`repro.aco.layering_aco.aco_layering_detailed` — same, but returning
  the full :class:`~repro.aco.layering_aco.AcoLayeringResult` with metrics and
  per-tour convergence history;
* :class:`repro.aco.params.ACOParams` — every tunable knob (number of ants and
  tours, α, β, evaporation rate, initial pheromone, dummy-vertex width,
  selection rule);
* :func:`repro.aco.parallel.parallel_aco_layering` — run several independent
  colonies concurrently (processes, threads, or the shared-memory lockstep
  runtime via ``executor="colonies"``) and keep the best layering;
* :func:`repro.aco.runtime.colonies_aco_layering` — the shared-memory
  multi-colony runtime itself: one problem build, batched lockstep tours
  across all colonies, zero-copy worker attachment and optional periodic
  pheromone exchange (``ACOParams(exchange_every=k)``).

Internally the algorithm follows the paper's two phases: an *initialisation
phase* (LPL, stretching to ``|V|`` layers, pheromone/heuristic matrices) and a
*layering phase* (tours of ant walks with dynamic heuristic information,
evaporation and best-ant pheromone deposit).
"""

from repro.aco.analysis import (
    ImprovementReport,
    RunStatistics,
    convergence_curve,
    improvement_over_baseline,
    run_statistics,
    tours_to_convergence,
)
from repro.aco.ant import Ant, AntSolution
from repro.aco.colony import AntColony, ColonyResult, TourRecord
from repro.aco.heuristic import LayerWidths, evaluate_assignment, evaluate_with_widths
from repro.aco.kernels import evaluate_assignment_vectorized, run_tour_vectorized
from repro.aco.layering_aco import AcoLayeringResult, aco_layering, aco_layering_detailed
from repro.aco.parallel import parallel_aco_layering
from repro.aco.params import ACOParams
from repro.aco.pheromone import PheromoneMatrix
from repro.aco.problem import LayeringProblem
from repro.aco.runtime import (
    colonies_aco_layering,
    publish_problem,
    run_colonies_batch,
)

__all__ = [
    "ACOParams",
    "LayeringProblem",
    "PheromoneMatrix",
    "LayerWidths",
    "evaluate_assignment",
    "evaluate_with_widths",
    "evaluate_assignment_vectorized",
    "run_tour_vectorized",
    "Ant",
    "AntSolution",
    "AntColony",
    "ColonyResult",
    "TourRecord",
    "AcoLayeringResult",
    "aco_layering",
    "aco_layering_detailed",
    "parallel_aco_layering",
    "colonies_aco_layering",
    "publish_problem",
    "run_colonies_batch",
    # analysis
    "convergence_curve",
    "tours_to_convergence",
    "ImprovementReport",
    "improvement_over_baseline",
    "RunStatistics",
    "run_statistics",
]
