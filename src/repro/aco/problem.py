"""Index-based problem representation shared by ants, colony and heuristics.

The ants touch the graph structure millions of times per run, so the public
:class:`~repro.graph.digraph.DiGraph` (hashable vertices, dictionaries) is
converted once into a :class:`LayeringProblem` — flat integer indices, NumPy
arrays for widths/degrees, Python lists of integer neighbour lists.  The
conversion also performs the initialisation phase of the paper's Algorithm 3:
LPL layering followed by stretching to ``|V|`` layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DiGraph, Vertex
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.stretch import stretch_above_below, stretch_between
from repro.utils.exceptions import ValidationError

__all__ = ["LayeringProblem", "PackedProblems"]


def _csr_arrays(adjacency: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a list-of-lists adjacency into CSR ``(indptr, indices)`` arrays."""
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    np.cumsum([len(nbrs) for nbrs in adjacency], out=indptr[1:])
    indices = np.fromiter(
        (w for nbrs in adjacency for w in nbrs), dtype=np.int64, count=int(indptr[-1])
    )
    return indptr, indices


def _padded_neighbours(adjacency: list[list[int]], *, sentinel: int) -> np.ndarray:
    """Rectangular neighbour matrix, short rows padded with *sentinel*.

    O(V·max_degree) memory — quadratic on star-heavy graphs — so it is only
    built lazily, behind the ``succ_pad``/``pred_pad`` cached properties, for
    the few padded-gather consumers left outside the CSR kernel path.
    """
    width = max((len(nbrs) for nbrs in adjacency), default=1)
    width = max(width, 1)
    pad = np.full((len(adjacency), width), sentinel, dtype=np.int64)
    for v, nbrs in enumerate(adjacency):
        if nbrs:
            pad[v, : len(nbrs)] = nbrs
    return pad


def _packed_pad_from_lists(
    adjacencies: list[list[list[int]]], vert_offset: np.ndarray, *, sentinel: int
) -> np.ndarray:
    """Padded neighbour stack over a whole pack, one graph block per row range.

    Neighbour ids stay local to each graph (matching the packed CSR
    ``indices``); short rows get the pack-wide *sentinel* column.
    """
    width = max(
        max((len(nbrs) for nbrs in adj), default=1) for adj in adjacencies
    )
    width = max(width, 1)
    pad = np.full((int(vert_offset[-1]), width), sentinel, dtype=np.int64)
    for g, adj in enumerate(adjacencies):
        base = int(vert_offset[g])
        for v, nbrs in enumerate(adj):
            if nbrs:
                pad[base + v, : len(nbrs)] = nbrs
    return pad


@dataclass
class LayeringProblem:
    """Flat, index-based view of one DAG-layering instance.

    Attributes
    ----------
    graph:
        The original graph (kept for converting results back to vertex labels).
    vertices:
        Vertex labels in index order (``vertices[i]`` is the label of index ``i``).
    n_vertices, n_layers:
        Problem dimensions; ``n_layers`` is the stretched layer count
        (``|V|`` with the paper's stretching strategy).
    succ, pred:
        Integer adjacency lists (successors / predecessors per vertex index).
    succ_indptr, succ_indices, pred_indptr, pred_indices:
        The same adjacency in CSR form: the neighbours of vertex ``v`` are
        ``succ_indices[succ_indptr[v]:succ_indptr[v + 1]]`` (flat ``int64``
        arrays).  CSR is the *primary* kernel representation — the NumPy
        lockstep, the C backend and the shared-memory runtime all traverse
        it directly, so the kernel data path stays O(V+E) even on
        star-heavy graphs whose max degree approaches ``|V|``.
    edge_src, edge_dst:
        Flat edge list (``edge_src[e]`` is the tail / upper vertex,
        ``edge_dst[e]`` the head / lower vertex of edge ``e``), aligned with
        ``succ_indices``.
    out_degree, in_degree:
        Degree arrays (``int64``).
    widths:
        Real-vertex drawing widths (``float64``).
    nd_width:
        Dummy-vertex width used in all width computations.
    initial_assignment:
        The stretched LPL layering as an integer array (layer of vertex ``i``),
        the starting point of the first tour.
    lpl_height:
        Height of the un-stretched LPL layering (useful for reporting).
    """

    graph: DiGraph
    vertices: list[Vertex]
    n_vertices: int
    n_layers: int
    succ: list[list[int]]
    pred: list[list[int]]
    succ_indptr: np.ndarray
    succ_indices: np.ndarray
    pred_indptr: np.ndarray
    pred_indices: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    out_degree: np.ndarray
    in_degree: np.ndarray
    widths: np.ndarray
    nd_width: float
    initial_assignment: np.ndarray
    lpl_height: int
    _succ_pad_cache: np.ndarray | None = field(default=None, repr=False, compare=False)
    _pred_pad_cache: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def succ_pad(self) -> np.ndarray:
        """Rectangular ``(n_vertices, max_degree)`` successor matrix, lazily built.

        Short rows are padded with the sentinel column ``n_vertices`` (a
        consumer keeping an extended assignment row maps it to layer ``0``).
        O(V·max_degree) memory — the walk kernels never touch it; it exists
        only for padded-gather consumers and is materialised on first access.
        """
        if self._succ_pad_cache is None:
            self._succ_pad_cache = _padded_neighbours(self.succ, sentinel=self.n_vertices)
        return self._succ_pad_cache

    @property
    def pred_pad(self) -> np.ndarray:
        """Rectangular predecessor matrix with sentinel ``n_vertices + 1``.

        The lazy, O(V·max_degree) twin of :attr:`succ_pad` (sentinel maps to
        layer ``n_layers + 1`` in an extended assignment row).
        """
        if self._pred_pad_cache is None:
            self._pred_pad_cache = _padded_neighbours(
                self.pred, sentinel=self.n_vertices + 1
            )
        return self._pred_pad_cache

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        *,
        nd_width: float = 1.0,
        stretch_strategy: str = "between",
        n_layers: int | None = None,
    ) -> "LayeringProblem":
        """Build a problem instance: LPL, stretch, then index everything.

        Parameters
        ----------
        graph: the DAG to layer.
        nd_width: dummy-vertex width.
        stretch_strategy: ``"between"`` (paper, Fig. 2), ``"above"``,
            ``"below"`` or ``"split"`` (Fig. 1 variants, for ablations).
        n_layers: total layer count after stretching; defaults to ``|V|``
            as in the paper.
        """
        require_nonempty(graph)
        if nd_width < 0:
            raise ValidationError(f"nd_width must be >= 0, got {nd_width}")

        # Acyclicity is enforced by the topological sort inside the LPL call
        # (CycleError), so no separate require_dag pass is paid here.
        lpl = longest_path_layering(graph)
        target = graph.n_vertices if n_layers is None else n_layers
        if target < lpl.height:
            raise ValidationError(
                f"n_layers={target} is below the minimum height {lpl.height}"
            )
        if stretch_strategy == "between":
            stretched, total_layers = stretch_between(lpl, target)
        elif stretch_strategy in {"above", "below", "split"}:
            stretched, total_layers = stretch_above_below(lpl, target, mode=stretch_strategy)
        else:
            raise ValidationError(
                "stretch_strategy must be 'between', 'above', 'below' or 'split', "
                f"got {stretch_strategy!r}"
            )

        vertices = list(graph.vertices())
        index = {v: i for i, v in enumerate(vertices)}
        n = len(vertices)
        succ = [[index[w] for w in graph.successors(v)] for v in vertices]
        pred = [[index[u] for u in graph.predecessors(v)] for v in vertices]
        out_degree = np.array([len(s) for s in succ], dtype=np.int64)
        in_degree = np.array([len(p) for p in pred], dtype=np.int64)
        widths = np.array([graph.vertex_width(v) for v in vertices], dtype=np.float64)
        initial = np.array([stretched.layer_of(v) for v in vertices], dtype=np.int64)

        succ_indptr, succ_indices = _csr_arrays(succ)
        pred_indptr, pred_indices = _csr_arrays(pred)
        # Flat edge list aligned with succ_indices: edge e runs from the
        # (upper) tail edge_src[e] to the (lower) head edge_dst[e].
        edge_src = np.repeat(np.arange(n, dtype=np.int64), out_degree)
        edge_dst = succ_indices

        return cls(
            graph=graph,
            vertices=vertices,
            n_vertices=n,
            n_layers=total_layers,
            succ=succ,
            pred=pred,
            succ_indptr=succ_indptr,
            succ_indices=succ_indices,
            pred_indptr=pred_indptr,
            pred_indices=pred_indices,
            edge_src=edge_src,
            edge_dst=edge_dst,
            out_degree=out_degree,
            in_degree=in_degree,
            widths=widths,
            nd_width=float(nd_width),
            initial_assignment=initial,
            lpl_height=lpl.height,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def layer_span(self, assignment: np.ndarray, v: int) -> tuple[int, int]:
        """Inclusive feasible layer range of vertex index *v* under *assignment*."""
        lo = 1
        hi = self.n_layers
        for w in self.succ[v]:
            lw = assignment[w]
            if lw + 1 > lo:
                lo = lw + 1
        for u in self.pred[v]:
            lu = assignment[u]
            if lu - 1 < hi:
                hi = lu - 1
        return int(lo), int(hi)

    def random_order(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random visiting order of the vertex indices."""
        return rng.permutation(self.n_vertices)

    def random_bfs_order(self, rng: np.random.Generator) -> np.ndarray:
        """A breadth-first visiting order from a random start vertex.

        The BFS treats edges as undirected (successors and predecessors are
        both explored) and restarts from a random unvisited vertex whenever a
        connected component is exhausted — the "linear order of the vertices"
        alternative to random choice that the paper mentions for the ants'
        walks.
        """
        visited = np.zeros(self.n_vertices, dtype=bool)
        order: list[int] = []
        remaining = list(rng.permutation(self.n_vertices))
        from collections import deque

        queue: deque[int] = deque()
        while len(order) < self.n_vertices:
            while remaining and visited[remaining[-1]]:
                remaining.pop()
            if not queue:
                start = int(remaining.pop())
                visited[start] = True
                queue.append(start)
                order.append(start)
            while queue:
                v = queue.popleft()
                neighbours = list(self.succ[v]) + list(self.pred[v])
                for w in rng.permutation(len(neighbours)):
                    u = neighbours[int(w)]
                    if not visited[u]:
                        visited[u] = True
                        order.append(u)
                        queue.append(u)
        return np.array(order, dtype=np.int64)

    def random_topological_order(self, rng: np.random.Generator) -> np.ndarray:
        """A random topological order (sources first, random tie-breaking)."""
        in_deg = self.in_degree.copy()
        available = [v for v in range(self.n_vertices) if in_deg[v] == 0]
        order: list[int] = []
        while available:
            idx = int(rng.integers(0, len(available)))
            v = available.pop(idx)
            order.append(v)
            for w in self.succ[v]:
                in_deg[w] -= 1
                if in_deg[w] == 0:
                    available.append(w)
        return np.array(order, dtype=np.int64)

    def assignment_to_layering(self, assignment: np.ndarray, *, normalize: bool = True) -> Layering:
        """Convert an integer layer array back into a label-keyed :class:`Layering`."""
        layering = Layering(
            {self.vertices[i]: int(assignment[i]) for i in range(self.n_vertices)}
        )
        return layering.normalized() if normalize else layering

    def layering_to_assignment(self, layering: Layering) -> np.ndarray:
        """Convert a label-keyed layering into the integer array form used internally."""
        return np.array(
            [layering.layer_of(v) for v in self.vertices], dtype=np.int64
        )


@dataclass
class PackedProblems:
    """Several :class:`LayeringProblem` instances packed for one kernel sweep.

    Cross-graph batching needs every per-vertex array of every graph in one
    contiguous buffer so a single :func:`repro.aco.kernels.run_walks_packed`
    call can advance walks belonging to *different* graphs in lockstep.  The
    layout is block-diagonal: the vertices of graph ``g`` occupy the global
    index range ``[vert_offset[g], vert_offset[g + 1])`` in the concatenated
    degree/width arrays, while adjacency *values* stay **local** (0-based
    within their graph) because each walk's assignment row is local to its
    own graph.

    Attributes
    ----------
    problems:
        The per-graph problems, in pack order (kept for randomness drawing
        and for converting results back to vertex labels).
    n_vertices_per, n_layers_per:
        Per-graph dimensions (``int64``).
    vert_offset:
        ``(n_graphs + 1,)`` cumulative vertex counts; the global row of local
        vertex ``v`` of graph ``g`` is ``vert_offset[g] + v``.
    indptr_offset:
        Per-graph starting position inside the packed CSR ``indptr`` arrays
        (each graph contributes ``n_g + 1`` entries, so this is
        ``vert_offset[g] + g``).
    succ_indptr, succ_indices, pred_indptr, pred_indices:
        Packed CSR adjacency — the only neighbour representation the kernel
        path reads, O(V+E) over the whole pack.  ``indptr`` values are
        shifted so they index straight into the packed ``indices`` arrays;
        ``indices`` values are local vertex ids.
    out_degree, in_degree, widths:
        Concatenated per-vertex arrays, indexed globally.
    nd_width:
        Shared dummy-vertex width (packing requires it to be identical).
    max_n_vertices, max_n_cols:
        Padded walk dimensions: every per-walk row is ``max_n_vertices``
        entries (+2 sentinel columns) and every per-layer row is
        ``max_n_cols`` = ``max(n_layers) + 1`` entries wide.
    initial_assignment, init_real, init_crossing, init_occupancy:
        Per-graph initial state (stretched LPL), zero-padded to the pack
        width — rows ``g`` seed every colony of graph ``g``.
    """

    problems: list[LayeringProblem]
    n_vertices_per: np.ndarray
    n_layers_per: np.ndarray
    vert_offset: np.ndarray
    indptr_offset: np.ndarray
    succ_indptr: np.ndarray
    succ_indices: np.ndarray
    pred_indptr: np.ndarray
    pred_indices: np.ndarray
    out_degree: np.ndarray
    in_degree: np.ndarray
    widths: np.ndarray
    nd_width: float
    max_n_vertices: int
    max_n_cols: int
    initial_assignment: np.ndarray
    init_real: np.ndarray
    init_crossing: np.ndarray
    init_occupancy: np.ndarray
    _succ_pad_cache: np.ndarray | None = field(default=None, repr=False, compare=False)
    _pred_pad_cache: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def succ_pad(self) -> np.ndarray:
        """Lazy ``(total_vertices, max_degree)`` successor stack (local ids).

        Padded with the *pack-wide* sentinel column ``max_n_vertices``
        (layer 0 in an extended assignment row).  O(V·max_degree) — only
        padded-gather consumers pay for it, never the kernel path.
        """
        if self._succ_pad_cache is None:
            self._succ_pad_cache = _packed_pad_from_lists(
                [p.succ for p in self.problems],
                self.vert_offset,
                sentinel=self.max_n_vertices,
            )
        return self._succ_pad_cache

    @property
    def pred_pad(self) -> np.ndarray:
        """Lazy predecessor stack with the pack-wide sentinel ``max_n_vertices + 1``
        (layer ``n_layers_g + 1`` — a per-walk value, so the sentinel column
        of an extended assignment matrix is filled per walk).
        """
        if self._pred_pad_cache is None:
            self._pred_pad_cache = _packed_pad_from_lists(
                [p.pred for p in self.problems],
                self.vert_offset,
                sentinel=self.max_n_vertices + 1,
            )
        return self._pred_pad_cache

    @property
    def n_graphs(self) -> int:
        return len(self.problems)

    @property
    def total_vertices(self) -> int:
        return int(self.vert_offset[-1])

    @classmethod
    def pack(cls, problems: list[LayeringProblem]) -> "PackedProblems":
        """Stack the flat arrays of *problems* into one block-diagonal pack."""
        if not problems:
            raise ValidationError("cannot pack an empty problem list")
        nd_width = problems[0].nd_width
        for p in problems[1:]:
            if p.nd_width != nd_width:
                raise ValidationError(
                    "all packed problems must share one nd_width, got "
                    f"{nd_width} and {p.nd_width}"
                )

        n_per = np.array([p.n_vertices for p in problems], dtype=np.int64)
        layers_per = np.array([p.n_layers for p in problems], dtype=np.int64)
        vert_offset = np.zeros(len(problems) + 1, dtype=np.int64)
        np.cumsum(n_per, out=vert_offset[1:])
        indptr_offset = vert_offset[:-1] + np.arange(len(problems), dtype=np.int64)
        max_n = int(n_per.max())
        max_cols = int(layers_per.max()) + 1

        def _packed_csr(indptr_name: str, indices_name: str):
            indptrs = []
            edge_offset = 0
            for p in problems:
                local = getattr(p, indptr_name)
                indptrs.append(local + edge_offset)
                edge_offset += int(local[-1])
            return (
                np.concatenate(indptrs),
                np.concatenate([getattr(p, indices_name) for p in problems]),
            )

        succ_indptr, succ_indices = _packed_csr("succ_indptr", "succ_indices")
        pred_indptr, pred_indices = _packed_csr("pred_indptr", "pred_indices")

        initial = np.zeros((len(problems), max_n), dtype=np.int64)
        init_real = np.zeros((len(problems), max_cols), dtype=np.float64)
        init_crossing = np.zeros((len(problems), max_cols), dtype=np.int64)
        init_occupancy = np.zeros((len(problems), max_cols), dtype=np.int64)
        # Local import: heuristic.py imports this module at load time.
        from repro.aco.heuristic import LayerWidths

        for g, p in enumerate(problems):
            initial[g, : p.n_vertices] = p.initial_assignment
            base = LayerWidths.from_assignment(p, p.initial_assignment)
            init_real[g, : p.n_layers + 1] = base.real
            init_crossing[g, : p.n_layers + 1] = base.crossing
            init_occupancy[g, : p.n_layers + 1] = base.occupancy

        return cls(
            problems=list(problems),
            n_vertices_per=n_per,
            n_layers_per=layers_per,
            vert_offset=vert_offset,
            indptr_offset=indptr_offset,
            succ_indptr=succ_indptr,
            succ_indices=succ_indices,
            pred_indptr=pred_indptr,
            pred_indices=pred_indices,
            out_degree=np.concatenate([p.out_degree for p in problems]),
            in_degree=np.concatenate([p.in_degree for p in problems]),
            widths=np.concatenate([p.widths for p in problems]),
            nd_width=float(nd_width),
            max_n_vertices=max_n,
            max_n_cols=max_cols,
            initial_assignment=initial,
            init_real=init_real,
            init_crossing=init_crossing,
            init_occupancy=init_occupancy,
        )
