"""Dynamic heuristic information: per-layer widths and the η values derived from them.

The heuristic information of the paper is ``η[v, l] = 1 / W(l)`` where
``W(l)`` is the *current* width of layer ``l`` including dummy vertices.  It
is dynamic: every time an ant moves a vertex, the widths of every layer
between the old and new position change (Algorithm 5 of the paper), so the
ant carries its own :class:`LayerWidths` instance and updates it incrementally
after each construction step.

Working in the stretched layer space introduces one subtlety that the width
bookkeeping has to respect: a stretched layer that holds **no real vertex**
will be deleted by the final empty-layer-removal step, and the dummy vertices
that sit on it disappear with it.  :class:`LayerWidths` therefore tracks the
real-vertex width and the edge-crossing count of every layer separately, so

* the width a candidate layer *would* have if the vertex joined it (the
  quantity whose reciprocal is the heuristic value η), and
* the objective ``f = 1 / (H + W)`` of the compacted layering

can both be computed exactly and incrementally, and the value the ants
optimise is the very number reported by
:func:`repro.layering.metrics.evaluate_layering` at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aco.problem import LayeringProblem
from repro.utils.exceptions import ValidationError

__all__ = [
    "LayerWidths",
    "AssignmentScore",
    "compact_ranks",
    "evaluate_assignment",
    "evaluate_with_widths",
]


class LayerWidths:
    """Per-layer width bookkeeping for one (stretched) layer assignment.

    For every layer ``l`` (1-based; entry 0 unused) the instance tracks:

    ``real[l]``
        Sum of the drawing widths of the real vertices currently on ``l``.
    ``crossing[l]``
        Number of edges ``(u, v)`` with ``assignment[u] > l > assignment[v]``
        — each contributes one dummy vertex of width ``nd_width`` if layer
        ``l`` survives compaction.
    ``occupancy[l]``
        Number of real vertices on ``l`` (used to know which layers are
        non-empty, i.e. which layers the final layering will keep).

    :meth:`apply_move` implements the incremental update of Algorithm 5;
    :meth:`from_assignment` rebuilds everything from scratch and is used by
    tests to verify the incremental updates never drift.
    """

    __slots__ = ("problem", "real", "crossing", "occupancy")

    def __init__(
        self,
        problem: LayeringProblem,
        real: np.ndarray,
        crossing: np.ndarray,
        occupancy: np.ndarray,
    ) -> None:
        self.problem = problem
        self.real = real
        self.crossing = crossing
        self.occupancy = occupancy

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_assignment(cls, problem: LayeringProblem, assignment: np.ndarray) -> "LayerWidths":
        """Compute all per-layer quantities for *assignment* from scratch."""
        n_cols = problem.n_layers + 1
        real = np.zeros(n_cols, dtype=np.float64)
        crossing = np.zeros(n_cols, dtype=np.int64)
        occupancy = np.zeros(n_cols, dtype=np.int64)
        np.add.at(real, assignment, problem.widths)
        np.add.at(occupancy, assignment, 1)
        if len(problem.edge_src):
            # Every edge spanning more than one layer contributes a crossing
            # to the layers strictly between its endpoints; accumulate the
            # interval endpoints and prefix-sum (exact integer arithmetic).
            tail = assignment[problem.edge_src]
            head = assignment[problem.edge_dst]
            long_edge = tail - head > 1
            delta = np.zeros(n_cols + 1, dtype=np.int64)
            np.add.at(delta, head[long_edge] + 1, 1)
            np.add.at(delta, tail[long_edge], -1)
            np.cumsum(delta[:n_cols], out=crossing)
        return cls(problem, real, crossing, occupancy)

    def copy(self) -> "LayerWidths":
        """Independent copy sharing the same problem instance."""
        return LayerWidths(
            self.problem, self.real.copy(), self.crossing.copy(), self.occupancy.copy()
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def width_of(self, layer: int) -> float:
        """Dummy-inclusive width of one layer under the current assignment."""
        return float(self.real[layer] + self.problem.nd_width * self.crossing[layer])

    def totals(self) -> np.ndarray:
        """Dummy-inclusive width of every layer (index 0 unused)."""
        return self.real + self.problem.nd_width * self.crossing

    def eta(self, v: int, lo: int, hi: int, current: int, epsilon: float) -> np.ndarray:
        """Heuristic values for vertex *v* over the inclusive layer range ``[lo, hi]``.

        η of a candidate layer is the reciprocal of the width that layer would
        have with *v* on it: its current real width plus its crossing dummies
        plus the width of *v* itself (for every layer except the one *v*
        already occupies, whose width already includes *v*).  The *epsilon*
        floor guards against degenerate zero widths.
        """
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be positive, got {epsilon}")
        p = self.problem
        widths = (
            self.real[lo : hi + 1]
            + p.nd_width * self.crossing[lo : hi + 1]
            + p.widths[v]
        )
        if lo <= current <= hi:
            widths = widths.copy()
            widths[current - lo] -= p.widths[v]
        return 1.0 / np.maximum(widths, epsilon)

    def n_nonempty_layers(self) -> int:
        """Number of layers holding at least one real vertex (the compacted height)."""
        return int(np.count_nonzero(self.occupancy[1:]))

    def max_compacted_width(self) -> float:
        """Maximum dummy-inclusive width over the non-empty layers.

        This equals the width of the compacted layering: removing an empty
        layer removes its dummies but leaves the crossing counts of every
        kept layer unchanged.
        """
        mask = self.occupancy[1:] > 0
        if not mask.any():
            return 0.0
        totals = self.real[1:] + self.problem.nd_width * self.crossing[1:]
        return float(totals[mask].max())

    # ------------------------------------------------------------------ #
    # incremental update (Algorithm 5)
    # ------------------------------------------------------------------ #

    def apply_move(self, v: int, current_layer: int, new_layer: int, assignment: np.ndarray) -> None:
        """Update the per-layer quantities for moving vertex *v* between layers.

        *assignment* must still hold the **old** layer of *v*; the caller is
        responsible for writing the new layer into the assignment afterwards.
        The update assumes *new_layer* lies inside the layer span of *v*
        (every successor strictly below both layers, every predecessor
        strictly above), which is guaranteed when the move was produced by the
        random-proportional rule over the span.
        """
        if current_layer == new_layer:
            return
        p = self.problem
        self.real[current_layer] -= p.widths[v]
        self.real[new_layer] += p.widths[v]
        self.occupancy[current_layer] -= 1
        self.occupancy[new_layer] += 1
        outdeg = int(p.out_degree[v])
        indeg = int(p.in_degree[v])
        if new_layer > current_layer:
            # Moving up: outgoing edges (to successors below) now additionally
            # cross [current, new); incoming edges no longer cross (current, new].
            if outdeg:
                self.crossing[current_layer:new_layer] += outdeg
            if indeg:
                self.crossing[current_layer + 1 : new_layer + 1] -= indeg
        else:
            # Moving down: incoming edges (from predecessors above) now
            # additionally cross (new, current]; outgoing edges no longer
            # cross [new, current).
            if indeg:
                self.crossing[new_layer + 1 : current_layer + 1] += indeg
            if outdeg:
                self.crossing[new_layer:current_layer] -= outdeg


@dataclass(frozen=True)
class AssignmentScore:
    """Objective value ``f = 1 / (H + W)`` of an assignment plus its components.

    ``height`` and ``width_including_dummies`` refer to the compacted
    layering (empty layers removed), i.e. exactly the quantities reported by
    the paper's evaluation.
    """

    objective: float
    height: int
    width_including_dummies: float
    dummy_vertex_count: int


def compact_ranks(problem: LayeringProblem, assignment: np.ndarray) -> tuple[int, np.ndarray]:
    """Height and compacted (empty-layers-removed) layer of every vertex."""
    used = np.unique(assignment)
    height = len(used)
    ranks = np.zeros(problem.n_layers + 2, dtype=np.int64)
    ranks[used] = np.arange(1, height + 1, dtype=np.int64)
    return height, ranks[assignment]


def _dummy_count(problem: LayeringProblem, compact: np.ndarray) -> int:
    """Dummy-vertex count of a compacted assignment (sum of span − 1 over edges).

    Pure integer arithmetic over the flat edge arrays, exactly equal to the
    per-edge loop it replaced.
    """
    if len(problem.edge_src) == 0:
        return 0
    spans = compact[problem.edge_src] - compact[problem.edge_dst]
    return int(spans.sum()) - len(spans)


def evaluate_assignment(problem: LayeringProblem, assignment: np.ndarray) -> AssignmentScore:
    """Score an assignment from scratch, compacting empty layers first.

    This is the reference implementation used by tests; the ants use
    :func:`evaluate_with_widths`, which produces identical numbers from their
    incrementally-maintained :class:`LayerWidths`.
    """
    used = np.unique(assignment)
    rank_of = {int(layer): r + 1 for r, layer in enumerate(used)}
    height = len(used)
    compact = np.array([rank_of[int(layer)] for layer in assignment], dtype=np.int64)

    widths = np.zeros(height + 1, dtype=np.float64)
    np.add.at(widths, compact, problem.widths)
    dummies = 0
    for v in range(problem.n_vertices):
        lv = int(compact[v])
        for w in problem.succ[v]:
            lw = int(compact[w])
            span = lv - lw
            if span > 1:
                dummies += span - 1
                if problem.nd_width > 0:
                    widths[lw + 1 : lv] += problem.nd_width
    width_incl = float(widths[1:].max()) if height else 0.0
    denom = height + width_incl
    return AssignmentScore(
        objective=1.0 / denom if denom > 0 else 0.0,
        height=height,
        width_including_dummies=width_incl,
        dummy_vertex_count=dummies,
    )


def evaluate_with_widths(
    problem: LayeringProblem,
    assignment: np.ndarray,
    widths: LayerWidths,
) -> AssignmentScore:
    """Score an assignment using the ant's maintained :class:`LayerWidths`.

    Returns the same values as :func:`evaluate_assignment` but in
    ``O(n_layers + |E|)`` without rebuilding any per-layer data.
    """
    height = widths.n_nonempty_layers()
    width_incl = widths.max_compacted_width()
    # Spans measured in the stretched space over-count layers that will be
    # compacted away; correct by re-ranking only when dummies were seen.
    dummies = _dummy_count(problem, assignment)
    if dummies:
        _, compact = compact_ranks(problem, assignment)
        dummies = _dummy_count(problem, compact)
    denom = height + width_incl
    return AssignmentScore(
        objective=1.0 / denom if denom > 0 else 0.0,
        height=height,
        width_including_dummies=width_incl,
        dummy_vertex_count=dummies,
    )
