"""The pheromone matrix τ.

``τ[v, l]`` expresses the colony's learned desirability of assigning vertex
``v`` to layer ``l`` (the paper chooses this pairing over the alternative of
learning a vertex order).  The matrix is initialised uniformly to ``τ0``,
evaporates by a factor ``(1 − ρ)`` at the end of every tour, and receives a
deposit from the tour-best ant on exactly the (vertex, layer) couplings of its
layering.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import ValidationError

__all__ = ["PheromoneMatrix"]


class PheromoneMatrix:
    """Dense (n_vertices × n_layers) pheromone store with 1-based layer indexing.

    Internally the array has ``n_layers + 1`` columns so that layer ``l`` maps
    to column ``l`` directly; column 0 is unused and kept at zero.
    """

    __slots__ = ("n_vertices", "n_layers", "values", "_row_index")

    def __init__(self, n_vertices: int, n_layers: int, tau0: float) -> None:
        if n_vertices < 1 or n_layers < 1:
            raise ValidationError(
                f"pheromone matrix needs positive dimensions, got {n_vertices}x{n_layers}"
            )
        if tau0 <= 0:
            raise ValidationError(f"tau0 must be positive, got {tau0}")
        self.n_vertices = n_vertices
        self.n_layers = n_layers
        self.values = np.full((n_vertices, n_layers + 1), tau0, dtype=np.float64)
        self.values[:, 0] = 0.0
        # Cached row index for deposit(): allocating an arange per tour is
        # measurable on large matrices.
        self._row_index = np.arange(n_vertices)

    @classmethod
    def wrap(cls, values: np.ndarray) -> "PheromoneMatrix":
        """Wrap an existing ``(n_vertices, n_layers + 1)`` trail array, no copy.

        Used by the multi-colony runtime, whose matrices are views into one
        contiguous stack; the caller is responsible for the array's contents
        (column 0 zeroed, trails initialised).
        """
        if values.ndim != 2 or values.shape[0] < 1 or values.shape[1] < 2:
            raise ValidationError(
                f"trail array must be (n_vertices, n_layers + 1), got shape {values.shape}"
            )
        out = cls.__new__(cls)
        out.n_vertices = values.shape[0]
        out.n_layers = values.shape[1] - 1
        out.values = values
        out._row_index = np.arange(out.n_vertices)
        return out

    def trail(self, v: int, lo: int, hi: int) -> np.ndarray:
        """Pheromone values of vertex *v* over the inclusive layer range ``[lo, hi]``."""
        return self.values[v, lo : hi + 1]

    def evaporate(self, rho: float, tau_min: float = 0.0) -> None:
        """Multiply every trail by ``(1 − rho)`` and clamp from below at *tau_min*."""
        if not 0.0 <= rho <= 1.0:
            raise ValidationError(f"rho must be in [0, 1], got {rho}")
        self.values[:, 1:] *= 1.0 - rho
        if tau_min > 0.0:
            np.maximum(self.values[:, 1:], tau_min, out=self.values[:, 1:])

    def deposit(self, assignment: np.ndarray, amount: float) -> None:
        """Add *amount* of pheromone on every (vertex, assigned-layer) coupling."""
        if amount < 0:
            raise ValidationError(f"deposit amount must be >= 0, got {amount}")
        self.values[self._row_index, assignment] += amount

    def copy(self) -> "PheromoneMatrix":
        """Independent copy (used by tests and by the parallel colonies)."""
        out = PheromoneMatrix(self.n_vertices, self.n_layers, tau0=1.0)
        out.values = self.values.copy()
        return out
