"""Parallel execution of independent ant colonies.

The paper frames a tour as "emulating a parallel work environment for all the
ants".  On a multi-core machine the natural coarse-grained parallelisation in
pure Python is to run several *independent colonies* — each with its own seed
and pheromone matrix — and keep the best layering.  This module provides
exactly that, with three execution back ends:

* ``"process"`` — a :class:`concurrent.futures.ProcessPoolExecutor`; the graph
  is shipped to workers as a JSON dictionary so no unpicklable state crosses
  the process boundary.  This is the back end that actually uses multiple
  cores (CPython's GIL prevents thread-level speed-up for this workload).
* ``"thread"`` — a thread pool; useful when process start-up costs dominate
  (tiny graphs) or on platforms where spawning processes is undesirable.
* ``"serial"`` — run the colonies one after another in-process; the
  deterministic reference used by tests to check that the parallel back ends
  return equivalent results.
* ``"colonies"`` — the shared-memory runtime of :mod:`repro.aco.runtime`:
  the problem is built once, every tour sweeps all colonies' ants in one
  lockstep kernel call, and on multi-core machines the colonies are sharded
  over processes that attach the problem arrays zero-copy.  Bit-identical to
  ``"serial"`` for a fixed seed while ``params.exchange_every == 0``.

Determinism: given ``params.seed`` the per-colony seeds are derived with
:func:`repro.utils.rng.spawn_generators`-style seed spawning, so the set of
colony results (and therefore the best layering) is the same for every back
end and worker count.

The pool plumbing itself (ship the shared payload once per worker via the
pool initializer, submit only small per-task arguments) lives in
:mod:`repro.utils.pool` and is shared with the experiment engine
(:mod:`repro.experiments.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aco.layering_aco import AcoLayeringResult, aco_layering_detailed
from repro.aco.params import ACOParams
from repro.graph.digraph import DiGraph
from repro.graph.io import from_json_dict, to_json_dict
from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError
from repro.utils.pool import EXECUTORS, map_with_state

__all__ = ["ColonyRunSummary", "ParallelAcoResult", "parallel_aco_layering", "run_single_colony"]

_EXECUTORS = EXECUTORS + ("colonies",)


@dataclass(frozen=True)
class ColonyRunSummary:
    """Best layering and objective of one independent colony."""

    colony_index: int
    seed: int
    objective: float
    height: int
    width_including_dummies: float
    assignment: dict[Any, int]


@dataclass
class ParallelAcoResult:
    """Outcome of a multi-colony run: overall best layering plus per-colony summaries."""

    layering: Layering
    best_colony: ColonyRunSummary
    colonies: list[ColonyRunSummary]

    @property
    def objective(self) -> float:
        """Objective of the overall best layering."""
        return self.best_colony.objective


def _derive_colony_seeds(seed: int | None, n_colonies: int) -> list[int]:
    """Deterministic per-colony seeds derived from the run seed."""
    seq = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in seq.spawn(n_colonies)]


def _colony_summary(
    graph: DiGraph, params_dict: dict[str, Any], colony_index: int, seed: int
) -> ColonyRunSummary:
    """Run one colony on an already-decoded graph and summarise the result."""
    params = ACOParams(**{**params_dict, "seed": seed})
    result: AcoLayeringResult = aco_layering_detailed(graph, params)
    return ColonyRunSummary(
        colony_index=colony_index,
        seed=seed,
        objective=result.metrics.objective,
        height=result.metrics.height,
        width_including_dummies=result.metrics.width_including_dummies,
        assignment=result.layering.to_dict(),
    )


def run_single_colony(
    graph_json: dict[str, Any], params_dict: dict[str, Any], colony_index: int, seed: int
) -> ColonyRunSummary:
    """Worker entry point: run one colony on a JSON-encoded graph.

    Module-level (and operating only on plain dictionaries) so it can be
    dispatched through a process pool.
    """
    return _colony_summary(from_json_dict(graph_json), params_dict, colony_index, seed)


def _decode_colony_payload(
    payload: tuple[dict[str, Any], dict[str, Any]]
) -> tuple[DiGraph, dict[str, Any]]:
    """Per-worker state: decode the shared graph JSON once for this worker."""
    graph_json, params_dict = payload
    return from_json_dict(graph_json), dict(params_dict)


def _run_colony_task(
    state: tuple[DiGraph, dict[str, Any]], colony_index: int, seed: int
) -> ColonyRunSummary:
    """Worker entry point operating on the per-worker ``(graph, params)`` state."""
    graph, params_dict = state
    return _colony_summary(graph, params_dict, colony_index, seed)


def parallel_aco_layering(
    graph: DiGraph,
    params: ACOParams | None = None,
    *,
    n_colonies: int = 4,
    max_workers: int | None = None,
    executor: str = "process",
) -> ParallelAcoResult:
    """Run *n_colonies* independent colonies and keep the best layering.

    Parameters
    ----------
    graph: the DAG to layer.
    params: shared algorithm parameters; ``params.seed`` seeds the whole run.
    n_colonies: how many independent colonies to run.
    max_workers: worker cap for the pool back ends (default: resolved via
        :func:`repro.utils.pool.effective_workers`, i.e. ``REPRO_JOBS`` or
        the CPU count, clamped to the colony count).
    executor: ``"process"``, ``"thread"``, ``"serial"`` or ``"colonies"``
        (the shared-memory batched runtime, see :mod:`repro.aco.runtime`).

    Returns
    -------
    ParallelAcoResult
        The best layering (validated against *graph*) plus one summary per
        colony, sorted by colony index.
    """
    if n_colonies < 1:
        raise ValidationError(f"n_colonies must be >= 1, got {n_colonies}")
    if executor not in _EXECUTORS:
        raise ValidationError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    if executor == "colonies":
        from repro.aco.runtime import colonies_aco_layering  # avoid module cycle

        return colonies_aco_layering(
            graph, params, n_colonies=n_colonies, max_workers=max_workers
        )
    params = params if params is not None else ACOParams()
    seeds = _derive_colony_seeds(params.seed, n_colonies)
    params_dict = params.as_dict()

    tasks = [(i, seeds[i]) for i in range(n_colonies)]
    summaries: list[ColonyRunSummary]
    if executor != "process" or n_colonies == 1:
        # In-process: the caller's graph is used directly, no JSON round trip.
        summaries = map_with_state(
            _run_colony_task,
            tasks,
            executor="serial" if n_colonies == 1 else executor,
            max_workers=max_workers,
            shared_state=(graph, params_dict),
        )
    else:
        # The graph travels to each worker exactly once (as initializer
        # arguments); the per-colony submissions carry only an index and a
        # seed, so multi-colony runs do not pay O(colonies x graph)
        # serialisation cost.
        summaries = map_with_state(
            _run_colony_task,
            tasks,
            executor="process",
            max_workers=max_workers,
            init_fn=_decode_colony_payload,
            payload=(to_json_dict(graph), params_dict),
        )

    summaries.sort(key=lambda s: s.colony_index)
    best = max(summaries, key=lambda s: s.objective)
    layering = Layering(best.assignment)
    layering.validate(graph)
    return ParallelAcoResult(layering=layering, best_colony=best, colonies=summaries)
