"""Parameters of the ACO layering algorithm.

The paper's Section VIII tunes two of these (α and β, best at 3 and 5 with
(1, 3) a close, cheaper runner-up that the authors adopt) plus the dummy
vertex width ``nd_width`` (best at 1.1, with 1.0 adopted for speed).  The
remaining knobs — number of ants, number of tours, evaporation rate, initial
pheromone — follow the paper where stated (10 tours) and the standard Ant
System defaults of Dorigo & Stützle otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from repro.utils.exceptions import ValidationError

__all__ = ["ACOParams", "ENGINES", "SELECTION_RULES", "VERTEX_ORDERS"]

#: Supported layer-selection rules for an ant's construction step.
#: ``"argmax"`` is what the paper implements ("the layer that corresponds to
#: the highest probability value is chosen"); ``"roulette"`` is the classical
#: random-proportional sampling and is used in an ablation benchmark.
SELECTION_RULES = ("argmax", "roulette")

#: Supported vertex visiting orders for an ant's walk.  The paper's
#: implementation iterates "randomly over all vertices"; Section IV-D notes
#: that a BFS-style linear order is an equally valid alternative, and a random
#: topological order is provided as a third natural choice.
VERTEX_ORDERS = ("random", "bfs", "topological")

#: Supported execution engines for the ant walks.  ``"vectorized"`` (default)
#: runs every ant of a tour in lockstep over batched NumPy arrays (see
#: :mod:`repro.aco.kernels`); ``"python"`` is the per-vertex reference
#: implementation kept for A/B determinism tests.  Both engines follow the
#: same randomness and selection protocol and produce bit-identical results
#: for a fixed seed.
ENGINES = ("vectorized", "python")


@dataclass(frozen=True)
class ACOParams:
    """All tunable parameters of the ACO DAG-layering algorithm.

    Attributes
    ----------
    n_ants:
        Colony size — how many ants build a layering per tour.
    n_tours:
        Number of tours; the paper uses 10.
    alpha:
        Exponent of the pheromone trail in the random-proportional rule.
        ``alpha = 0`` reduces the algorithm to a stochastic greedy search.
    beta:
        Exponent of the heuristic information ``η = 1 / W(layer)``.
        ``beta = 0`` leaves only the pheromone at work (poor results and
        early stagnation, per the paper).
    rho:
        Pheromone evaporation rate applied at the end of every tour:
        ``τ ← (1 − rho) · τ``.
    tau0:
        Initial pheromone value for every (vertex, layer) pair.
    tau_min:
        Lower clamp applied after evaporation so trails never vanish
        completely (standard MAX-MIN style safeguard).
    deposit:
        Scale factor of the tour-best ant's pheromone deposit; the deposited
        amount on each of its assignments is ``deposit · f`` with
        ``f = 1 / (H + W)``.
    nd_width:
        Width attributed to a dummy vertex when computing layer widths and
        the objective (the paper's ``nd_width`` parameter).
    node_width_default:
        Width used for real vertices that carry no explicit width.  Kept for
        completeness; graphs built with :class:`repro.graph.DiGraph` always
        carry an explicit width.
    selection:
        ``"argmax"`` (paper) or ``"roulette"`` (classical sampling).
    q0:
        Optional exploitation probability implementing the Ant Colony System
        *pseudo-random proportional rule*: with probability ``q0`` the ant
        exploits (argmax of τ^α·η^β), otherwise it samples from the
        distribution.  ``None`` (default) keeps the pure behaviour selected
        by *selection* (argmax ⇔ ``q0 = 1``, roulette ⇔ ``q0 = 0``); setting
        an intermediate value blends the two and is used by the exploration
        ablation.
    vertex_order:
        Order in which an ant visits the vertices during its walk:
        ``"random"`` (paper default), ``"bfs"`` (breadth-first from a random
        start, the alternative the paper mentions) or ``"topological"``
        (random topological order, sources first).
    eta_epsilon:
        Floor applied to layer widths before inverting them, so empty layers
        (width 0) yield a large-but-finite heuristic value instead of a
        division by zero.
    engine:
        ``"vectorized"`` (default) runs all ants of a tour in lockstep on the
        batched array kernels of :mod:`repro.aco.kernels`; ``"python"`` keeps
        the per-vertex reference walk.  Identical results either way.
    exchange_every:
        Multi-colony only (see :mod:`repro.aco.runtime`): every
        ``exchange_every`` tours the overall best layering across the
        colonies deposits pheromone on *every* colony's matrix, migrating
        the elite solution between otherwise independent colonies.  ``0``
        (default) disables the exchange, which keeps a multi-colony run
        bit-identical to running the colonies separately.  Ignored by
        single-colony runs.
    seed:
        Optional RNG seed making the whole run deterministic.
    """

    n_ants: int = 10
    n_tours: int = 10
    alpha: float = 1.0
    beta: float = 3.0
    rho: float = 0.5
    tau0: float = 1.0
    tau_min: float = 1e-6
    deposit: float = 1.0
    nd_width: float = 1.0
    node_width_default: float = 1.0
    selection: str = "argmax"
    q0: float | None = None
    vertex_order: str = "random"
    eta_epsilon: float = 0.1
    engine: str = "vectorized"
    exchange_every: int = 0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_ants < 1:
            raise ValidationError(f"n_ants must be >= 1, got {self.n_ants}")
        if self.n_tours < 1:
            raise ValidationError(f"n_tours must be >= 1, got {self.n_tours}")
        if self.alpha < 0 or self.beta < 0:
            raise ValidationError(
                f"alpha and beta must be >= 0, got alpha={self.alpha}, beta={self.beta}"
            )
        if not 0.0 <= self.rho <= 1.0:
            raise ValidationError(f"rho must be in [0, 1], got {self.rho}")
        if self.tau0 <= 0:
            raise ValidationError(f"tau0 must be positive, got {self.tau0}")
        if self.tau_min < 0:
            raise ValidationError(f"tau_min must be >= 0, got {self.tau_min}")
        if self.tau_min > self.tau0:
            raise ValidationError(
                f"tau_min ({self.tau_min}) must not exceed tau0 ({self.tau0})"
            )
        if self.deposit < 0:
            raise ValidationError(f"deposit must be >= 0, got {self.deposit}")
        if self.nd_width < 0:
            raise ValidationError(f"nd_width must be >= 0, got {self.nd_width}")
        if self.node_width_default <= 0:
            raise ValidationError(
                f"node_width_default must be positive, got {self.node_width_default}"
            )
        if self.selection not in SELECTION_RULES:
            raise ValidationError(
                f"selection must be one of {SELECTION_RULES}, got {self.selection!r}"
            )
        if self.q0 is not None and not 0.0 <= self.q0 <= 1.0:
            raise ValidationError(f"q0 must be in [0, 1] or None, got {self.q0}")
        if self.vertex_order not in VERTEX_ORDERS:
            raise ValidationError(
                f"vertex_order must be one of {VERTEX_ORDERS}, got {self.vertex_order!r}"
            )
        if self.eta_epsilon <= 0:
            raise ValidationError(f"eta_epsilon must be positive, got {self.eta_epsilon}")
        if self.engine not in ENGINES:
            raise ValidationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.exchange_every < 0:
            raise ValidationError(
                f"exchange_every must be >= 0, got {self.exchange_every}"
            )

    @property
    def exploitation_probability(self) -> float:
        """The effective ``q0``: explicit value, or 1/0 implied by *selection*."""
        if self.q0 is not None:
            return self.q0
        return 1.0 if self.selection == "argmax" else 0.0

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def replace(self, **changes: Any) -> "ACOParams":
        """Return a copy with the given fields replaced (validated again)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return ACOParams(**current)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (used for process-pool serialisation and reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def paper_defaults(cls) -> "ACOParams":
        """The configuration adopted by the paper for its experiments.

        α = 1, β = 3 (the cheaper runner-up of the tuning study), 10 tours,
        dummy-vertex width 1.
        """
        return cls(alpha=1.0, beta=3.0, n_tours=10, nd_width=1.0)

    @classmethod
    def paper_best_quality(cls) -> "ACOParams":
        """The best-quality configuration of the tuning study (α = 3, β = 5, nd_width = 1.1)."""
        return cls(alpha=3.0, beta=5.0, n_tours=10, nd_width=1.1)
