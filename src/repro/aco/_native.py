"""Optional JIT-compiled native backend for the ACO walk kernels.

The NumPy lockstep kernel in :mod:`repro.aco.kernels` removes most of the
per-vertex interpreter overhead, but each construction step still pays a few
dozen NumPy dispatches.  This module compiles (once, with the system C
compiler, cached by content hash) a small C kernel that executes *all* walks
of a tour in a single call over the exact same flat arrays: CSR adjacency,
pre-powered pheromone matrix, pre-drawn vertex orders and uniforms.

Bit-identity with the Python and NumPy engines is preserved by construction:

* the kernel is compiled with ``-ffp-contract=off`` so no FMA contraction
  reorders the float arithmetic;
* every float expression replicates the element-wise operation order of
  ``LayerWidths.eta`` / ``fused_pow`` (``((real + nd*crossing) + w_v)``,
  the current-layer correction, ``max(.., eps)``, reciprocal, decomposed
  small-integer powers);
* argmax is a first-maximum scan with NumPy's NaN-propagation semantics,
  the roulette cumulative sum is sequential, and the roulette pick is a
  ``searchsorted(..., side="right")``-equivalent upper-bound binary search.

The backend is *optional*: :func:`load_native` returns ``None`` when no C
compiler is available, compilation fails, or ``REPRO_ACO_NATIVE=0`` is set,
and the caller silently falls back to the NumPy lockstep kernel.  The
generic (non-integer) ``beta`` exponent is not replicated in C — callers
must check :func:`native_supports` first.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings

import numpy as np

__all__ = ["load_native", "native_supports", "run_walks_native", "native_status"]

#: Small integer exponents whose decomposition the C kernel mirrors
#: (must stay in sync with kernels.fused_pow).
_SMALL_EXPONENTS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Decomposed small-integer power; must mirror kernels.fused_pow exactly. */
static inline double pow_small(double x, int64_t mode)
{
    double sq;
    switch (mode) {
        case 0: return 1.0;
        case 1: return x;
        case 2: return x * x;
        case 3: return x * x * x;
        case 4: sq = x * x; return sq * sq;
        default: sq = x * x; return sq * sq * x;  /* mode 5 */
    }
}

/* numpy searchsorted(cum, target, side="right"): first index with
   cum[index] > target, i.e. the count of elements <= target. */
static inline int64_t upper_bound(const double *cum, int64_t k, double target)
{
    int64_t lo = 0, hi = k;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (cum[mid] <= target) lo = mid + 1; else hi = mid;
    }
    return lo;
}

void run_walks(
    int64_t n_ants,
    int64_t n_vertices,             /* walk-row stride (max vertices over the batch) */
    int64_t n_cols,                 /* layer-row stride: max n_layers + 1 (column 0 unused) */
    const int64_t *orders,          /* n_ants x n_vertices */
    const double *uniforms,         /* n_ants x n_vertices, or NULL */
    const int64_t *succ_indptr,
    const int64_t *succ_indices,
    const int64_t *pred_indptr,
    const int64_t *pred_indices,
    const int64_t *out_degree,
    const int64_t *in_degree,
    const double *vertex_widths,
    const double *tau,              /* n_matrices x n_vertices x n_cols, pre-powered by alpha */
    const int64_t *tau_index,       /* n_ants: which tau matrix each walk reads */
    const int64_t *walk_steps,      /* n_ants: construction steps per walk, or NULL (= n_vertices) */
    const int64_t *walk_vbase,      /* n_ants: per-walk offset into degree/width arrays, or NULL */
    const int64_t *walk_ibase,      /* n_ants: per-walk offset into the CSR indptr arrays, or NULL */
    const int64_t *walk_layers,     /* n_ants: per-walk layer count, or NULL (= n_cols - 1) */
    int64_t beta_mode,              /* 0..5: decomposed integer exponent */
    double nd_width,
    double epsilon,
    double q0,
    int64_t *assignment,            /* n_ants x n_vertices, in/out */
    double *real,                   /* n_ants x n_cols, in/out */
    int64_t *crossing,              /* n_ants x n_cols, in/out */
    int64_t *occupancy,             /* n_ants x n_cols, in/out */
    double *scores)                 /* scratch, n_cols doubles */
{
    for (int64_t a = 0; a < n_ants; a++) {
        int64_t *asg = assignment + a * n_vertices;
        double *re = real + a * n_cols;
        int64_t *cr = crossing + a * n_cols;
        int64_t *oc = occupancy + a * n_cols;
        const int64_t *order = orders + a * n_vertices;
        const double *u_row = uniforms ? uniforms + a * n_vertices : 0;
        const double *tau_mat = tau + tau_index[a] * n_vertices * n_cols;
        /* Cross-graph batching: each walk may belong to a different graph,
           named by per-walk base offsets into the packed (block-diagonal)
           arrays.  NULL per-walk arrays mean the uniform single-graph case;
           walks shorter than the batch stride simply stop early (masked
           termination). */
        int64_t steps = walk_steps ? walk_steps[a] : n_vertices;
        int64_t vbase = walk_vbase ? walk_vbase[a] : 0;
        const int64_t *sip = succ_indptr + (walk_ibase ? walk_ibase[a] : 0);
        const int64_t *pip = pred_indptr + (walk_ibase ? walk_ibase[a] : 0);
        int64_t n_layers = walk_layers ? walk_layers[a] : n_cols - 1;

        for (int64_t step = 0; step < steps; step++) {
            int64_t v = order[step];
            int64_t current = asg[v];

            /* Feasible span [lo, hi] from the CSR adjacency. */
            int64_t lo = 1, hi = n_layers;
            for (int64_t e = sip[v]; e < sip[v + 1]; e++) {
                int64_t lw = asg[succ_indices[e]];
                if (lw + 1 > lo) lo = lw + 1;
            }
            for (int64_t e = pip[v]; e < pip[v + 1]; e++) {
                int64_t lu = asg[pred_indices[e]];
                if (lu - 1 < hi) hi = lu - 1;
            }

            int64_t chosen;
            if (lo == hi) {
                chosen = lo;
            } else {
                double wv = vertex_widths[vbase + v];
                const double *tau_row = tau_mat + v * n_cols;
                int64_t k = hi - lo + 1;

                /* scores[l - lo] = tau^alpha[l] * eta[l]^beta, with the exact
                   element-wise operation order of LayerWidths.eta and
                   fused_pow. */
                for (int64_t l = lo; l <= hi; l++) {
                    double w = (re[l] + nd_width * (double)cr[l]) + wv;
                    if (l == current) w -= wv;
                    if (!(w > epsilon)) w = epsilon;   /* np.maximum(w, eps) */
                    double eta = 1.0 / w;
                    scores[l - lo] = tau_row[l] * pow_small(eta, beta_mode);
                }

                /* First-maximum argmax with NumPy's NaN propagation. */
                int64_t best = 0;
                for (int64_t i = 0; i < k; i++) {
                    if (isnan(scores[i])) { best = i; break; }
                    if (scores[i] > scores[best]) best = i;
                }
                double m = scores[best];

                if (!(m > 0.0) || m == INFINITY) {
                    if (!u_row) {
                        chosen = lo;  /* deterministic pure-argmax fallback */
                    } else {
                        int64_t idx = (int64_t)(u_row[step] * (double)k);
                        if (idx >= k) idx = k - 1;
                        chosen = lo + idx;
                    }
                } else if (q0 >= 1.0 || (q0 > 0.0 && u_row[step] < q0)) {
                    chosen = lo + best;
                } else {
                    /* Roulette: sequential cumulative sum + upper bound. */
                    double acc = 0.0;
                    for (int64_t i = 0; i < k; i++) {
                        acc += scores[i];
                        scores[i] = acc;
                    }
                    double total = scores[k - 1];
                    if (!isfinite(total) || total <= 0.0) {
                        int64_t idx = (int64_t)(u_row[step] * (double)k);
                        if (idx >= k) idx = k - 1;
                        chosen = lo + idx;
                    } else {
                        double t = (u_row[step] - q0) / (1.0 - q0);
                        int64_t idx = upper_bound(scores, k, t * total);
                        if (idx >= k) idx = k - 1;
                        chosen = lo + idx;
                    }
                }
            }

            if (chosen != current) {
                /* Algorithm 5 incremental width update (same op order as
                   LayerWidths.apply_move). */
                double wv = vertex_widths[vbase + v];
                re[current] -= wv;
                re[chosen] += wv;
                oc[current] -= 1;
                oc[chosen] += 1;
                int64_t outdeg = out_degree[vbase + v];
                int64_t indeg = in_degree[vbase + v];
                if (chosen > current) {
                    if (outdeg)
                        for (int64_t l = current; l < chosen; l++) cr[l] += outdeg;
                    if (indeg)
                        for (int64_t l = current + 1; l <= chosen; l++) cr[l] -= indeg;
                } else {
                    if (indeg)
                        for (int64_t l = chosen + 1; l <= current; l++) cr[l] += indeg;
                    if (outdeg)
                        for (int64_t l = chosen; l < current; l++) cr[l] -= outdeg;
                }
                asg[v] = chosen;
            }
        }
    }
}
"""

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

_lib: ctypes.CDLL | None = None
_load_attempted = False
_status = "not loaded"


def _cache_dir() -> str:
    """Directory for the compiled kernel cache.

    ``REPRO_ACO_NATIVE_CACHE`` (explicit override) wins over
    ``XDG_CACHE_HOME`` wins over ``~/.cache``.
    """
    override = os.environ.get("REPRO_ACO_NATIVE_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-aco-native")


def _compile_library() -> str | None:
    """Compile the kernel into a content-addressed cached shared object."""
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    digest = hashlib.sha256(
        (_C_SOURCE + " ".join(_CFLAGS) + compiler).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"aco_kernel_{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            src = os.path.join(tmp, "kernel.c")
            out = os.path.join(tmp, "kernel.so")
            with open(src, "w") as fh:
                fh.write(_C_SOURCE)
            subprocess.run(
                [compiler, *_CFLAGS, src, "-o", out, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(out, lib_path)  # atomic: concurrent builders converge
    except (OSError, subprocess.SubprocessError):
        return None
    return lib_path


_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


def load_native() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable/disabled."""
    global _lib, _load_attempted, _status
    if os.environ.get("REPRO_ACO_NATIVE", "1") == "0":
        _status = "disabled via REPRO_ACO_NATIVE=0"
        return None
    if _load_attempted:
        return _lib
    _load_attempted = True
    path = _compile_library()
    if path is None:
        _status = "no C compiler or compilation failed"
        # One warning per process, never a retry: _load_attempted keeps every
        # later call on the cached NumPy fallback without re-running the
        # compiler probe.
        warnings.warn(
            "native ACO kernel unavailable (no C compiler, or compilation "
            "failed); falling back to the NumPy lockstep kernel.  Set "
            "REPRO_ACO_NATIVE=0 to silence this warning.",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        lib = ctypes.CDLL(path)
        lib.run_walks.restype = None
        lib.run_walks.argtypes = [
            ctypes.c_int64,  # n_ants
            ctypes.c_int64,  # n_vertices
            ctypes.c_int64,  # n_cols
            _I64,  # orders
            ctypes.c_void_p,  # uniforms (nullable)
            _I64,  # succ_indptr
            _I64,  # succ_indices
            _I64,  # pred_indptr
            _I64,  # pred_indices
            _I64,  # out_degree
            _I64,  # in_degree
            _F64,  # vertex_widths
            _F64,  # tau (stack of matrices)
            _I64,  # tau_index
            ctypes.c_void_p,  # walk_steps (nullable)
            ctypes.c_void_p,  # walk_vbase (nullable)
            ctypes.c_void_p,  # walk_ibase (nullable)
            ctypes.c_void_p,  # walk_layers (nullable)
            ctypes.c_int64,  # beta_mode
            ctypes.c_double,  # nd_width
            ctypes.c_double,  # epsilon
            ctypes.c_double,  # q0
            _I64,  # assignment
            _F64,  # real
            _I64,  # crossing
            _I64,  # occupancy
            _F64,  # scores scratch
        ]
    except OSError:
        _status = "failed to load compiled library"
        return None
    _lib = lib
    _status = f"loaded ({path})"
    return _lib


def native_status() -> str:
    """Human-readable state of the native backend (for diagnostics)."""
    return _status


def native_supports(beta: float) -> bool:
    """Whether the C kernel replicates this ``beta`` exponent bit-exactly."""
    return beta in _SMALL_EXPONENTS


def run_walks_native(
    lib: ctypes.CDLL,
    *,
    orders: np.ndarray,
    uniforms: np.ndarray | None,
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    out_degree: np.ndarray,
    in_degree: np.ndarray,
    vertex_widths: np.ndarray,
    tau: np.ndarray,
    tau_index: np.ndarray,
    beta: float,
    nd_width: float,
    epsilon: float,
    q0: float,
    assignment: np.ndarray,
    real: np.ndarray,
    crossing: np.ndarray,
    occupancy: np.ndarray,
    walk_steps: np.ndarray | None = None,
    walk_vbase: np.ndarray | None = None,
    walk_ibase: np.ndarray | None = None,
    walk_layers: np.ndarray | None = None,
) -> None:
    """Run all walks of one tour in C, mutating the per-ant state in place.

    *tau* is a contiguous stack of one or more pre-powered pheromone matrices
    (``(n_matrices, n_vertices, n_cols)``); ``tau_index[a]`` names the matrix
    walk *a* reads, which is what lets one call sweep the ants of several
    independent colonies in lockstep.  The optional ``walk_*`` arrays extend
    the same indirection across *graphs*: per-walk step counts, offsets into
    the packed degree/width and CSR ``indptr`` arrays, and per-walk layer
    counts (see :class:`repro.aco.problem.PackedProblems`).  ``None`` means
    the uniform single-graph batch.
    """
    n_ants, n_vertices = orders.shape
    n_cols = real.shape[1]
    scratch = np.empty(n_cols, dtype=np.float64)

    def _opt_i64(arr: np.ndarray | None) -> ctypes.c_void_p | None:
        return None if arr is None else arr.ctypes.data_as(ctypes.c_void_p)

    uniforms_ptr = (
        None
        if uniforms is None
        else uniforms.ctypes.data_as(ctypes.c_void_p)
    )
    lib.run_walks(
        n_ants,
        n_vertices,
        n_cols,
        orders,
        uniforms_ptr,
        succ_indptr,
        succ_indices,
        pred_indptr,
        pred_indices,
        out_degree,
        in_degree,
        vertex_widths,
        tau.reshape(-1, n_cols),
        tau_index,
        _opt_i64(walk_steps),
        _opt_i64(walk_vbase),
        _opt_i64(walk_ibase),
        _opt_i64(walk_layers),
        int(beta),
        nd_width,
        epsilon,
        q0,
        assignment,
        real,
        crossing,
        occupancy,
        scratch,
    )
