"""Optional JIT-compiled native backend for the ACO walk kernels.

The NumPy lockstep kernel in :mod:`repro.aco.kernels` removes most of the
per-vertex interpreter overhead, but each construction step still pays a few
dozen NumPy dispatches.  This module compiles (once, with the system C
compiler, cached by content hash) a small C kernel that executes *all* walks
of a tour in a single call over the exact same flat arrays: CSR adjacency,
pre-powered pheromone matrix, pre-drawn vertex orders and uniforms.

The kernel is multithreaded over the *walk axis*: every walk owns its output
rows (assignment, real/crossing/occupancy) and consumes pre-drawn randomness,
so the walks are embarrassingly parallel and one process can saturate a
multi-core box without pickling anything.  The compile probe prefers OpenMP,
falls back to a small pthread fan-out, and degrades to the single-threaded
loop when neither is available (``thread_support()`` reports which one
compiled in).  The worker count is resolved per call by
:func:`effective_threads` — explicit argument > ``REPRO_ACO_THREADS`` >
``os.cpu_count()`` — with the same canonical errors as ``REPRO_JOBS``.

Bit-identity with the Python and NumPy engines is preserved by construction:

* the kernel is compiled with ``-ffp-contract=off`` so no FMA contraction
  reorders the float arithmetic;
* every float expression replicates the element-wise operation order of
  ``LayerWidths.eta`` / ``fused_pow`` (``((real + nd*crossing) + w_v)``,
  the current-layer correction, ``max(.., eps)``, reciprocal, decomposed
  small-integer powers);
* argmax is a first-maximum scan with NumPy's NaN-propagation semantics,
  the roulette cumulative sum is sequential, and the roulette pick is a
  ``searchsorted(..., side="right")``-equivalent upper-bound binary search;
* threading cannot break any of this: each walk writes only its own rows,
  reads only shared read-only inputs, and uses a per-chunk scratch slice,
  so the result is byte-identical at every thread count and under every
  partitioning.

The backend is *optional*: :func:`load_native` returns ``None`` when no C
compiler is available, compilation fails, or ``REPRO_ACO_NATIVE=0`` is set,
and the caller silently falls back to the NumPy lockstep kernel.  The
generic (non-integer) ``beta`` exponent is not replicated in C — callers
must check :func:`native_supports` first.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings

import numpy as np

from repro.utils.pool import effective_workers

__all__ = [
    "load_native",
    "native_supports",
    "run_walks_native",
    "native_status",
    "thread_support",
    "effective_threads",
    "REPRO_ACO_THREADS_ENV",
]

#: Small integer exponents whose decomposition the C kernel mirrors
#: (must stay in sync with kernels.fused_pow).
_SMALL_EXPONENTS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)

#: Environment variable capping the native kernel's walk-axis thread count.
REPRO_ACO_THREADS_ENV = "REPRO_ACO_THREADS"

#: Hard ceiling on the walk-axis thread count (bounds the pthread handle
#: array in C and the per-thread scratch rows allocated by the wrapper; must
#: stay in sync with MAX_THREADS in _C_SOURCE).
_MAX_THREADS = 64

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

#if defined(REPRO_THREADS_PTHREADS)
#include <pthread.h>
#endif

#define MAX_THREADS 64

/* Decomposed small-integer power; must mirror kernels.fused_pow exactly. */
static inline double pow_small(double x, int64_t mode)
{
    double sq;
    switch (mode) {
        case 0: return 1.0;
        case 1: return x;
        case 2: return x * x;
        case 3: return x * x * x;
        case 4: sq = x * x; return sq * sq;
        default: sq = x * x; return sq * sq * x;  /* mode 5 */
    }
}

/* numpy searchsorted(cum, target, side="right"): first index with
   cum[index] > target, i.e. the count of elements <= target. */
static inline int64_t upper_bound(const double *cum, int64_t k, double target)
{
    int64_t lo = 0, hi = k;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        if (cum[mid] <= target) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* The full read-only + per-walk-output argument set of one kernel call,
   bundled so the walk loop can run on any thread. */
typedef struct {
    int64_t n_vertices;
    int64_t n_cols;
    const int64_t *orders;
    const double *uniforms;
    const int64_t *succ_indptr;
    const int64_t *succ_indices;
    const int64_t *pred_indptr;
    const int64_t *pred_indices;
    const int64_t *out_degree;
    const int64_t *in_degree;
    const double *vertex_widths;
    const double *tau;
    const int64_t *tau_index;
    const int64_t *walk_steps;
    const int64_t *walk_vbase;
    const int64_t *walk_ibase;
    const int64_t *walk_layers;
    int64_t beta_mode;
    double nd_width;
    double epsilon;
    double q0;
    int64_t *assignment;
    double *real;
    int64_t *crossing;
    int64_t *occupancy;
} walk_args;

/* Run walks [start, end).  Each walk writes only its own rows and reads only
   shared read-only inputs, so ranges can run concurrently; *scores* is this
   range's private n_cols-double scratch. */
static void run_walk_range(const walk_args *wa, int64_t start, int64_t end,
                           double *scores)
{
    int64_t n_vertices = wa->n_vertices;
    int64_t n_cols = wa->n_cols;
    const int64_t *succ_indices = wa->succ_indices;
    const int64_t *pred_indices = wa->pred_indices;
    const double *vertex_widths = wa->vertex_widths;
    int64_t beta_mode = wa->beta_mode;
    double nd_width = wa->nd_width;
    double epsilon = wa->epsilon;
    double q0 = wa->q0;

    for (int64_t a = start; a < end; a++) {
        int64_t *asg = wa->assignment + a * n_vertices;
        double *re = wa->real + a * n_cols;
        int64_t *cr = wa->crossing + a * n_cols;
        int64_t *oc = wa->occupancy + a * n_cols;
        const int64_t *order = wa->orders + a * n_vertices;
        const double *u_row = wa->uniforms ? wa->uniforms + a * n_vertices : 0;
        const double *tau_mat = wa->tau + wa->tau_index[a] * n_vertices * n_cols;
        /* Cross-graph batching: each walk may belong to a different graph,
           named by per-walk base offsets into the packed (block-diagonal)
           arrays.  NULL per-walk arrays mean the uniform single-graph case;
           walks shorter than the batch stride simply stop early (masked
           termination). */
        int64_t steps = wa->walk_steps ? wa->walk_steps[a] : n_vertices;
        int64_t vbase = wa->walk_vbase ? wa->walk_vbase[a] : 0;
        const int64_t *sip = wa->succ_indptr + (wa->walk_ibase ? wa->walk_ibase[a] : 0);
        const int64_t *pip = wa->pred_indptr + (wa->walk_ibase ? wa->walk_ibase[a] : 0);
        int64_t n_layers = wa->walk_layers ? wa->walk_layers[a] : n_cols - 1;

        for (int64_t step = 0; step < steps; step++) {
            int64_t v = order[step];
            int64_t current = asg[v];

            /* Feasible span [lo, hi] from the CSR adjacency. */
            int64_t lo = 1, hi = n_layers;
            for (int64_t e = sip[v]; e < sip[v + 1]; e++) {
                int64_t lw = asg[succ_indices[e]];
                if (lw + 1 > lo) lo = lw + 1;
            }
            for (int64_t e = pip[v]; e < pip[v + 1]; e++) {
                int64_t lu = asg[pred_indices[e]];
                if (lu - 1 < hi) hi = lu - 1;
            }

            int64_t chosen;
            if (lo == hi) {
                chosen = lo;
            } else {
                double wv = vertex_widths[vbase + v];
                const double *tau_row = tau_mat + v * n_cols;
                int64_t k = hi - lo + 1;

                /* scores[l - lo] = tau^alpha[l] * eta[l]^beta, with the exact
                   element-wise operation order of LayerWidths.eta and
                   fused_pow. */
                for (int64_t l = lo; l <= hi; l++) {
                    double w = (re[l] + nd_width * (double)cr[l]) + wv;
                    if (l == current) w -= wv;
                    if (!(w > epsilon)) w = epsilon;   /* np.maximum(w, eps) */
                    double eta = 1.0 / w;
                    scores[l - lo] = tau_row[l] * pow_small(eta, beta_mode);
                }

                /* First-maximum argmax with NumPy's NaN propagation. */
                int64_t best = 0;
                for (int64_t i = 0; i < k; i++) {
                    if (isnan(scores[i])) { best = i; break; }
                    if (scores[i] > scores[best]) best = i;
                }
                double m = scores[best];

                if (!(m > 0.0) || m == INFINITY) {
                    if (!u_row) {
                        chosen = lo;  /* deterministic pure-argmax fallback */
                    } else {
                        int64_t idx = (int64_t)(u_row[step] * (double)k);
                        if (idx >= k) idx = k - 1;
                        chosen = lo + idx;
                    }
                } else if (q0 >= 1.0 || (q0 > 0.0 && u_row[step] < q0)) {
                    chosen = lo + best;
                } else {
                    /* Roulette: sequential cumulative sum + upper bound. */
                    double acc = 0.0;
                    for (int64_t i = 0; i < k; i++) {
                        acc += scores[i];
                        scores[i] = acc;
                    }
                    double total = scores[k - 1];
                    if (!isfinite(total) || total <= 0.0) {
                        int64_t idx = (int64_t)(u_row[step] * (double)k);
                        if (idx >= k) idx = k - 1;
                        chosen = lo + idx;
                    } else {
                        double t = (u_row[step] - q0) / (1.0 - q0);
                        int64_t idx = upper_bound(scores, k, t * total);
                        if (idx >= k) idx = k - 1;
                        chosen = lo + idx;
                    }
                }
            }

            if (chosen != current) {
                /* Algorithm 5 incremental width update (same op order as
                   LayerWidths.apply_move). */
                double wv = vertex_widths[vbase + v];
                re[current] -= wv;
                re[chosen] += wv;
                oc[current] -= 1;
                oc[chosen] += 1;
                int64_t outdeg = wa->out_degree[vbase + v];
                int64_t indeg = wa->in_degree[vbase + v];
                if (chosen > current) {
                    if (outdeg)
                        for (int64_t l = current; l < chosen; l++) cr[l] += outdeg;
                    if (indeg)
                        for (int64_t l = current + 1; l <= chosen; l++) cr[l] -= indeg;
                } else {
                    if (indeg)
                        for (int64_t l = chosen + 1; l <= current; l++) cr[l] += indeg;
                    if (outdeg)
                        for (int64_t l = chosen; l < current; l++) cr[l] -= outdeg;
                }
                asg[v] = chosen;
            }
        }
    }
}

/* Which threading flavour this build carries: 2 = OpenMP, 1 = pthreads,
   0 = single-threaded fallback. */
int64_t thread_support(void)
{
#if defined(REPRO_THREADS_OPENMP)
    return 2;
#elif defined(REPRO_THREADS_PTHREADS)
    return 1;
#else
    return 0;
#endif
}

#if defined(REPRO_THREADS_PTHREADS)
typedef struct {
    const walk_args *wa;
    int64_t start;
    int64_t end;
    double *scores;
} walk_task;

static void *run_walk_task(void *arg)
{
    walk_task *task = (walk_task *)arg;
    run_walk_range(task->wa, task->start, task->end, task->scores);
    return 0;
}
#endif

void run_walks(
    int64_t n_ants,
    int64_t n_vertices,             /* walk-row stride (max vertices over the batch) */
    int64_t n_cols,                 /* layer-row stride: max n_layers + 1 (column 0 unused) */
    int64_t n_threads,              /* walk-axis workers, clamped to [1, min(n_ants, MAX_THREADS)] */
    const int64_t *orders,          /* n_ants x n_vertices */
    const double *uniforms,         /* n_ants x n_vertices, or NULL */
    const int64_t *succ_indptr,     /* CSR adjacency: the only neighbour representation */
    const int64_t *succ_indices,
    const int64_t *pred_indptr,
    const int64_t *pred_indices,
    const int64_t *out_degree,
    const int64_t *in_degree,
    const double *vertex_widths,
    const double *tau,              /* n_matrices x n_vertices x n_cols, pre-powered by alpha */
    const int64_t *tau_index,       /* n_ants: which tau matrix each walk reads */
    const int64_t *walk_steps,      /* n_ants: construction steps per walk, or NULL (= n_vertices) */
    const int64_t *walk_vbase,      /* n_ants: per-walk offset into degree/width arrays, or NULL */
    const int64_t *walk_ibase,      /* n_ants: per-walk offset into the CSR indptr arrays, or NULL */
    const int64_t *walk_layers,     /* n_ants: per-walk layer count, or NULL (= n_cols - 1) */
    int64_t beta_mode,              /* 0..5: decomposed integer exponent */
    double nd_width,
    double epsilon,
    double q0,
    int64_t *assignment,            /* n_ants x n_vertices, in/out */
    double *real,                   /* n_ants x n_cols, in/out */
    int64_t *crossing,              /* n_ants x n_cols, in/out */
    int64_t *occupancy,             /* n_ants x n_cols, in/out */
    double *scores)                 /* scratch, n_threads x n_cols doubles */
{
    walk_args wa = {
        n_vertices, n_cols, orders, uniforms,
        succ_indptr, succ_indices, pred_indptr, pred_indices,
        out_degree, in_degree, vertex_widths, tau, tau_index,
        walk_steps, walk_vbase, walk_ibase, walk_layers,
        beta_mode, nd_width, epsilon, q0,
        assignment, real, crossing, occupancy,
    };
    if (n_threads < 1) n_threads = 1;
    if (n_threads > n_ants) n_threads = n_ants;
    if (n_threads > MAX_THREADS) n_threads = MAX_THREADS;

#if defined(REPRO_THREADS_OPENMP)
    if (n_threads > 1) {
        /* Static chunking over walk indices; chunk t owns scratch slice t,
           so correctness holds no matter how OpenMP maps chunks to threads. */
        #pragma omp parallel for schedule(static)
        for (int64_t t = 0; t < n_threads; t++) {
            run_walk_range(&wa, t * n_ants / n_threads,
                           (t + 1) * n_ants / n_threads,
                           scores + t * n_cols);
        }
        return;
    }
#elif defined(REPRO_THREADS_PTHREADS)
    if (n_threads > 1) {
        pthread_t handles[MAX_THREADS];
        walk_task tasks[MAX_THREADS];
        int started[MAX_THREADS];
        for (int64_t t = 1; t < n_threads; t++) {
            tasks[t].wa = &wa;
            tasks[t].start = t * n_ants / n_threads;
            tasks[t].end = (t + 1) * n_ants / n_threads;
            tasks[t].scores = scores + t * n_cols;
            started[t] = pthread_create(&handles[t], 0, run_walk_task, &tasks[t]) == 0;
            if (!started[t])  /* spawn failed: run this chunk inline */
                run_walk_range(tasks[t].wa, tasks[t].start, tasks[t].end, tasks[t].scores);
        }
        run_walk_range(&wa, 0, n_ants / n_threads, scores);
        for (int64_t t = 1; t < n_threads; t++)
            if (started[t]) pthread_join(handles[t], 0);
        return;
    }
#endif
    run_walk_range(&wa, 0, n_ants, scores);
}
"""

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

#: Compile-flag variants probed in preference order: OpenMP, then a plain
#: pthread fan-out, then the single-threaded fallback.  The first variant
#: that compiles (or is already cached) wins.
_THREAD_VARIANTS = (
    ["-fopenmp", "-DREPRO_THREADS_OPENMP"],
    ["-pthread", "-DREPRO_THREADS_PTHREADS"],
    [],
)

_lib: ctypes.CDLL | None = None
_load_attempted = False
_status = "not loaded"


def _cache_dir() -> str:
    """Directory for the compiled kernel cache.

    ``REPRO_ACO_NATIVE_CACHE`` (explicit override) wins over
    ``XDG_CACHE_HOME`` wins over ``~/.cache``.
    """
    override = os.environ.get("REPRO_ACO_NATIVE_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-aco-native")


def _compile_variant(compiler: str, flags: list[str]) -> str | None:
    """Compile one flag variant into a content-addressed cached shared object."""
    digest = hashlib.sha256(
        (_C_SOURCE + " ".join(flags) + compiler).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"aco_kernel_{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            src = os.path.join(tmp, "kernel.c")
            out = os.path.join(tmp, "kernel.so")
            with open(src, "w") as fh:
                fh.write(_C_SOURCE)
            subprocess.run(
                [compiler, *flags, src, "-o", out, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(out, lib_path)  # atomic: concurrent builders converge
    except (OSError, subprocess.SubprocessError):
        return None
    return lib_path


def _compile_library() -> str | None:
    """Compile the kernel, preferring OpenMP, then pthreads, then serial."""
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    for variant in _THREAD_VARIANTS:
        path = _compile_variant(compiler, [*_CFLAGS, *variant])
        if path is not None:
            return path
    return None


_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


def load_native() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable/disabled."""
    global _lib, _load_attempted, _status
    if os.environ.get("REPRO_ACO_NATIVE", "1") == "0":
        _status = "disabled via REPRO_ACO_NATIVE=0"
        return None
    if _load_attempted:
        return _lib
    _load_attempted = True
    path = _compile_library()
    if path is None:
        _status = "no C compiler or compilation failed"
        # One warning per process, never a retry: _load_attempted keeps every
        # later call on the cached NumPy fallback without re-running the
        # compiler probe.
        warnings.warn(
            "native ACO kernel unavailable (no C compiler, or compilation "
            "failed); falling back to the NumPy lockstep kernel.  Set "
            "REPRO_ACO_NATIVE=0 to silence this warning.",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        lib = ctypes.CDLL(path)
        lib.run_walks.restype = None
        lib.run_walks.argtypes = [
            ctypes.c_int64,  # n_ants
            ctypes.c_int64,  # n_vertices
            ctypes.c_int64,  # n_cols
            ctypes.c_int64,  # n_threads
            _I64,  # orders
            ctypes.c_void_p,  # uniforms (nullable)
            _I64,  # succ_indptr
            _I64,  # succ_indices
            _I64,  # pred_indptr
            _I64,  # pred_indices
            _I64,  # out_degree
            _I64,  # in_degree
            _F64,  # vertex_widths
            _F64,  # tau (stack of matrices)
            _I64,  # tau_index
            ctypes.c_void_p,  # walk_steps (nullable)
            ctypes.c_void_p,  # walk_vbase (nullable)
            ctypes.c_void_p,  # walk_ibase (nullable)
            ctypes.c_void_p,  # walk_layers (nullable)
            ctypes.c_int64,  # beta_mode
            ctypes.c_double,  # nd_width
            ctypes.c_double,  # epsilon
            ctypes.c_double,  # q0
            _I64,  # assignment
            _F64,  # real
            _I64,  # crossing
            _I64,  # occupancy
            _F64,  # scores scratch (n_threads rows)
        ]
        lib.thread_support.restype = ctypes.c_int64
        lib.thread_support.argtypes = []
    except OSError:
        _status = "failed to load compiled library"
        return None
    _lib = lib
    _status = f"loaded ({path}, threads: {_thread_mode(lib)})"
    return _lib


def _thread_mode(lib: ctypes.CDLL) -> str:
    return {2: "openmp", 1: "pthreads"}.get(int(lib.thread_support()), "none")


def native_status() -> str:
    """Human-readable state of the native backend (for diagnostics)."""
    return _status


def thread_support() -> str:
    """Threading flavour of the loaded kernel.

    ``"openmp"`` or ``"pthreads"`` when the compile probe found thread
    support, ``"none"`` when only the single-threaded kernel compiled, and
    ``"unavailable"`` when there is no native kernel at all (no compiler, or
    ``REPRO_ACO_NATIVE=0``).
    """
    lib = load_native()
    if lib is None:
        return "unavailable"
    return _thread_mode(lib)


def effective_threads(requested: int | None = None, n_tasks: int | None = None) -> int:
    """Resolve the native kernel's walk-axis thread count.

    The same resolution ladder as :func:`repro.utils.pool.effective_workers`
    — an explicit *requested* value wins, then the ``REPRO_ACO_THREADS``
    environment variable, then ``os.cpu_count()`` — with the same canonical
    :class:`~repro.utils.exceptions.ValidationError` for non-integer or
    sub-1 values.  The result is clamped to *n_tasks* (one thread per walk
    at most) and to the kernel's hard thread ceiling.
    """
    workers = effective_workers(requested, n_tasks, env_var=REPRO_ACO_THREADS_ENV)
    return min(workers, _MAX_THREADS)


def native_supports(beta: float) -> bool:
    """Whether the C kernel replicates this ``beta`` exponent bit-exactly."""
    return beta in _SMALL_EXPONENTS


def run_walks_native(
    lib: ctypes.CDLL,
    *,
    n_threads: int,
    orders: np.ndarray,
    uniforms: np.ndarray | None,
    succ_indptr: np.ndarray,
    succ_indices: np.ndarray,
    pred_indptr: np.ndarray,
    pred_indices: np.ndarray,
    out_degree: np.ndarray,
    in_degree: np.ndarray,
    vertex_widths: np.ndarray,
    tau: np.ndarray,
    tau_index: np.ndarray,
    beta: float,
    nd_width: float,
    epsilon: float,
    q0: float,
    assignment: np.ndarray,
    real: np.ndarray,
    crossing: np.ndarray,
    occupancy: np.ndarray,
    walk_steps: np.ndarray | None = None,
    walk_vbase: np.ndarray | None = None,
    walk_ibase: np.ndarray | None = None,
    walk_layers: np.ndarray | None = None,
) -> None:
    """Run all walks of one tour in C, mutating the per-ant state in place.

    *tau* is a contiguous stack of one or more pre-powered pheromone matrices
    (``(n_matrices, n_vertices, n_cols)``); ``tau_index[a]`` names the matrix
    walk *a* reads, which is what lets one call sweep the ants of several
    independent colonies in lockstep.  The optional ``walk_*`` arrays extend
    the same indirection across *graphs*: per-walk step counts, offsets into
    the packed degree/width and CSR ``indptr`` arrays, and per-walk layer
    counts (see :class:`repro.aco.problem.PackedProblems`).  ``None`` means
    the uniform single-graph batch.

    *n_threads* fans the walk loop out over that many OS threads (resolved
    by :func:`effective_threads`); the result is byte-identical at any
    count because walks own their output rows and consume pre-drawn
    randomness.
    """
    n_ants, n_vertices = orders.shape
    n_cols = real.shape[1]
    n_threads = max(1, min(int(n_threads), n_ants, _MAX_THREADS))
    scratch = np.empty((n_threads, n_cols), dtype=np.float64)

    def _opt_i64(arr: np.ndarray | None) -> ctypes.c_void_p | None:
        return None if arr is None else arr.ctypes.data_as(ctypes.c_void_p)

    uniforms_ptr = (
        None
        if uniforms is None
        else uniforms.ctypes.data_as(ctypes.c_void_p)
    )
    lib.run_walks(
        n_ants,
        n_vertices,
        n_cols,
        n_threads,
        orders,
        uniforms_ptr,
        succ_indptr,
        succ_indices,
        pred_indptr,
        pred_indices,
        out_degree,
        in_degree,
        vertex_widths,
        tau.reshape(-1, n_cols),
        tau_index,
        _opt_i64(walk_steps),
        _opt_i64(walk_vbase),
        _opt_i64(walk_ibase),
        _opt_i64(walk_layers),
        int(beta),
        nd_width,
        epsilon,
        q0,
        assignment,
        real,
        crossing,
        occupancy,
        scratch,
    )
